"""Tests for the strengthened lower bounds (:mod:`repro.exact.lower_bounds`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.exact.brute import brute_force
from repro.exact.branch_and_bound import branch_and_bound
from repro.exact.lower_bounds import lb_best, lb_pairing, lb_third, lb_trivial
from repro.model.instance import Instance

from conftest import small_instances


class TestPairing:
    def test_two_big_jobs_one_machine(self):
        # 3 jobs > m=2 machines: two of the top 3 share.
        inst = Instance([10, 9, 8], num_machines=2)
        assert lb_pairing(inst) == 9 + 8

    def test_fewer_jobs_than_machines(self):
        inst = Instance([10, 9], num_machines=5)
        assert lb_pairing(inst) == 10

    def test_beats_trivial_on_sparse_instances(self):
        # Average is low but pairing forces two 10s together.
        inst = Instance([10, 10, 10, 1, 1], num_machines=2)
        assert lb_trivial(inst) == 16  # ceil(32/2)
        assert lb_pairing(inst) == 20

    @given(small_instances())
    @settings(max_examples=60)
    def test_property_sound(self, inst):
        assert lb_pairing(inst) <= brute_force(inst).makespan


class TestThird:
    def test_three_mids_force_two_machines_each(self):
        # Six jobs of 5 on 2 machines, c=12: mids (5 > 4, 10 <= 12)...
        # the bound at least matches the trivial one here.
        inst = Instance([5, 5, 5, 5, 5, 5], num_machines=2)
        assert lb_third(inst) >= lb_trivial(inst)

    def test_counting_regime(self):
        # Big jobs > 2c/3 exclude mid jobs: 2 machines, jobs 9,9,4,4,4.
        inst = Instance([9, 9, 4, 4, 4], num_machines=2)
        opt = brute_force(inst).makespan
        assert lb_third(inst) <= opt

    @given(small_instances())
    @settings(max_examples=60)
    def test_property_sound(self, inst):
        assert lb_third(inst) <= brute_force(inst).makespan


class TestBest:
    @given(small_instances())
    @settings(max_examples=60)
    def test_property_sound_and_dominates_trivial(self, inst):
        best = lb_best(inst)
        assert lb_trivial(inst) <= best <= brute_force(inst).makespan


class TestBnBIntegration:
    def test_strong_bounds_prove_pairing_instances_instantly(self):
        inst = Instance([10, 10, 10, 1, 1], num_machines=2)
        res = branch_and_bound(inst, strong_bounds=True)
        assert res.optimal
        assert res.lower_bound == 20

    def test_weak_bounds_still_correct(self):
        inst = Instance([10, 10, 10, 1, 1], num_machines=2)
        weak = branch_and_bound(inst, strong_bounds=False)
        strong = branch_and_bound(inst, strong_bounds=True)
        assert weak.makespan == strong.makespan == 20
        assert strong.nodes_explored <= weak.nodes_explored

    @given(small_instances())
    @settings(max_examples=40)
    def test_property_strong_bounds_preserve_correctness(self, inst):
        assert (
            branch_and_bound(inst, strong_bounds=True).makespan
            == brute_force(inst).makespan
        )
