"""Shared fixtures, hypothesis profiles and strategies for the suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.model.instance import Instance

# ---------------------------------------------------------------------------
# Hypothesis profiles
# ---------------------------------------------------------------------------
# One shared policy instead of `deadline=None` repeated on every
# @settings: solver tests legitimately have heavy-tailed per-example
# times (a hard instance can cost 100x the median), so per-example
# deadlines only produce flaky timeouts.  CI additionally derandomizes —
# a red CI run must mean a real regression, reproducible locally with
# HYPOTHESIS_PROFILE=repro-ci, never an unlucky draw.

settings.register_profile("repro-dev", deadline=None)
settings.register_profile(
    "repro-ci",
    parent=settings.get_profile("repro-dev"),
    derandomize=True,
    suppress_health_check=(HealthCheck.too_slow,),
)
settings.load_profile(
    os.environ.get(
        "HYPOTHESIS_PROFILE",
        "repro-ci" if os.environ.get("CI") else "repro-dev",
    )
)


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

def small_instances(
    max_jobs: int = 10, max_machines: int = 4, max_time: int = 20
) -> st.SearchStrategy[Instance]:
    """Instances small enough for the brute-force oracle."""
    return st.builds(
        Instance,
        st.lists(
            st.integers(min_value=1, max_value=max_time),
            min_size=1,
            max_size=max_jobs,
        ),
        st.integers(min_value=1, max_value=max_machines),
    )


def medium_instances(
    max_jobs: int = 40, max_machines: int = 8, max_time: int = 60
) -> st.SearchStrategy[Instance]:
    """Instances for invariants that do not need an exact oracle."""
    return st.builds(
        Instance,
        st.lists(
            st.integers(min_value=1, max_value=max_time),
            min_size=1,
            max_size=max_jobs,
        ),
        st.integers(min_value=1, max_value=max_machines),
    )


def dp_problems(
    max_classes: int = 3, max_count: int = 4, max_size: int = 12
) -> st.SearchStrategy:
    """Small rounded packing problems for DP-engine agreement tests.

    The target is drawn at least as large as the largest class size so
    singleton configurations always exist (the invariant the rounding
    stage guarantees in production).
    """
    from repro.core.dp import DPProblem

    @st.composite
    def build(draw: st.DrawFn) -> DPProblem:
        d = draw(st.integers(min_value=1, max_value=max_classes))
        sizes = draw(
            st.lists(
                st.integers(min_value=1, max_value=max_size),
                min_size=d,
                max_size=d,
                unique=True,
            )
        )
        counts = draw(
            st.lists(
                st.integers(min_value=0, max_value=max_count),
                min_size=d,
                max_size=d,
            )
        )
        slack = draw(st.integers(min_value=0, max_value=2 * max_size))
        target = max(sizes) + slack
        return DPProblem(tuple(sorted(sizes)), tuple(counts), target)

    return build()


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------

@pytest.fixture
def paper_example_problem():
    """The worked DP example of §III: sizes (6, 11), N=(2, 3), T=30."""
    from repro.core.dp import DPProblem

    return DPProblem((6, 11), (2, 3), 30)


@pytest.fixture
def small_instance() -> Instance:
    return Instance([9, 8, 7, 6, 5, 5, 4, 3, 2, 1], num_machines=3)


@pytest.fixture
def tight_instance() -> Instance:
    """Perfectly divisible instance: optimal makespan exactly total/m."""
    return Instance([4, 4, 4, 4, 4, 4], num_machines=3)
