"""Meta-tests: documentation coverage and export hygiene.

Production-quality bar: every public module, class, and function in the
library carries a docstring, and every ``__all__`` names something that
exists.  These tests walk the package so the bar is enforced, not
aspirational.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())
MODULE_IDS = [m.__name__ for m in ALL_MODULES]


@pytest.mark.parametrize("module", ALL_MODULES, ids=MODULE_IDS)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module.__name__} lacks a module docstring"
    )


@pytest.mark.parametrize("module", ALL_MODULES, ids=MODULE_IDS)
def test_public_callables_documented(module):
    undocumented: list[str] = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if not inspect.isfunction(meth):
                    continue
                if meth.__doc__ and meth.__doc__.strip():
                    continue
                # Overrides inherit their contract's documentation.
                inherited = any(
                    getattr(getattr(base, meth_name, None), "__doc__", None)
                    for base in obj.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{name}.{meth_name}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {sorted(undocumented)}"
    )


@pytest.mark.parametrize("module", ALL_MODULES, ids=MODULE_IDS)
def test_all_exports_exist(module):
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        assert hasattr(module, name), (
            f"{module.__name__}.__all__ names missing attribute {name!r}"
        )
