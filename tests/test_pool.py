"""Tests for the sharded multi-process solver pool
(:mod:`repro.service.supervisor`, :mod:`repro.service.worker`).

The process-spawning e2e tests are marked ``slow``; the
``aggregate_pool_stats`` unit tests run without any worker processes.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

import pytest

from repro.model.schedule import Schedule
from repro.model.verify import verify_schedule
from repro.service.cache import canonical_key
from repro.service.metrics import aggregate_pool_stats
from repro.service.requests import SolveRequest
from repro.service.sharding import shard_of_request
from repro.service.supervisor import PooledSolveService
from repro.store import ResultStore, recover_all


def run(coro):
    return asyncio.run(coro)


def _req(times, machines=3, engine="ptas", eps=0.3, **kwargs) -> SolveRequest:
    return SolveRequest(
        times=tuple(times), machines=machines, engine=engine, eps=eps, **kwargs
    )


#: An instance whose PTAS solve takes long enough (seconds at eps=0.05)
#: that a test can reliably kill or deadline it mid-flight.
SLOW_TIMES = tuple(((i * 37) % 97) + 3 for i in range(60))


def _slow_req(**kwargs) -> SolveRequest:
    return _req(SLOW_TIMES, machines=5, eps=0.05, **kwargs)


class TestAggregatePoolStats:
    def test_namespaces_and_sums_counters(self):
        own = {"counters": {"requests_total": 5}, "gauges": {}, "histograms": {}}
        workers = {
            0: {"counters": {"solves_total": 2}, "gauges": {}, "histograms": {}},
            1: {"counters": {"solves_total": 3}, "gauges": {}, "histograms": {}},
        }
        merged = aggregate_pool_stats(own, workers)
        assert merged["counters"]["requests_total"] == 5
        assert merged["counters"]["worker.0.solves_total"] == 2
        assert merged["counters"]["worker.1.solves_total"] == 3
        assert merged["counters"]["pool.solves_total"] == 5

    def test_histograms_merge_exactly_and_drop_percentiles(self):
        h0 = {"count": 2, "sum": 3.0, "mean": 1.5, "min": 1.0, "max": 2.0,
              "p50": 1.5, "p99": 2.0}
        h1 = {"count": 1, "sum": 0.5, "mean": 0.5, "min": 0.5, "max": 0.5,
              "p50": 0.5, "p99": 0.5}
        merged = aggregate_pool_stats(
            {"counters": {}, "gauges": {}, "histograms": {}},
            {
                0: {"counters": {}, "gauges": {}, "histograms": {"h": h0}},
                1: {"counters": {}, "gauges": {}, "histograms": {"h": h1}},
            },
        )
        pooled = merged["histograms"]["pool.h"]
        assert pooled["count"] == 3
        assert pooled["sum"] == pytest.approx(3.5)
        assert pooled["mean"] == pytest.approx(3.5 / 3)
        assert pooled["min"] == 0.5
        assert pooled["max"] == 2.0
        # Reservoir percentiles don't compose across processes.
        assert pooled["p50"] is None and pooled["p99"] is None
        # The per-worker views keep theirs.
        assert merged["histograms"]["worker.0.h"]["p50"] == 1.5

    def test_unreachable_worker_is_flagged_not_summed(self):
        merged = aggregate_pool_stats(
            {"counters": {}, "gauges": {}, "histograms": {}},
            {
                0: {"counters": {"solves_total": 4}, "gauges": {}, "histograms": {}},
                1: None,
            },
        )
        assert merged["gauges"]["worker.1.unreachable"] == 1.0
        assert merged["gauges"]["pool.workers_unreachable"] == 1.0
        assert merged["counters"]["pool.solves_total"] == 4

    def test_empty_pool_is_just_own_snapshot(self):
        own = {"counters": {"a": 1}, "gauges": {"b": 2.0}, "histograms": {}}
        merged = aggregate_pool_stats(own, {})
        assert merged["counters"] == {"a": 1}
        assert merged["gauges"] == {"b": 2.0, "pool.workers_unreachable": 0.0}


@pytest.mark.slow
class TestPooledService:
    def test_solves_verify_and_twin_hits_shard_cache(self, tmp_path):
        async def scenario():
            svc = PooledSolveService(2, store_root=str(tmp_path), spawn_grace=120)
            try:
                first = await svc.handle(_req([5, 3, 8, 6, 2, 7], request_id="a"))
                assert first.ok and not first.cached
                inst = _req([5, 3, 8, 6, 2, 7]).instance()
                verify_schedule(
                    Schedule(inst, first.assignment), inst
                ).raise_if_failed()
                # Permuted twin: same canonical key, same shard, warm cache.
                twin = await svc.handle(_req([8, 7, 6, 5, 3, 2], request_id="b"))
                assert twin.ok and twin.cached
                assert twin.makespan == first.makespan
                assert twin.request_id == "b"
                stats = await svc.stats()
                assert stats["counters"]["pool.solves_total"] == 1
                assert stats["counters"]["pool.cache_hits"] == 1
                health = await svc.healthcheck()
                assert health["ok"] and health["workers"] == 2
                assert all(d["alive"] for d in health["details"])
            finally:
                await svc.aclose()

        run(scenario())

    def test_invalid_request_is_clean_error(self):
        async def scenario():
            svc = PooledSolveService(1, spawn_grace=120)
            try:
                bad = await svc.handle(_req([5, 3], engine="no-such-engine"))
                assert bad.status == "error"
                assert "no-such-engine" in (bad.error or "")
            finally:
                await svc.aclose()

        run(scenario())

    def test_sigkilled_worker_is_respawned_and_request_answered(self, tmp_path):
        """The acceptance e2e: SIGKILL a worker mid-solve; the supervisor
        must respawn it and answer the in-flight request — re-solved, or
        degraded to a valid LPT schedule — within the deadline."""

        async def scenario():
            deadline = 6.0
            svc = PooledSolveService(2, store_root=str(tmp_path), spawn_grace=120)
            try:
                await svc.start()
                request = _slow_req(deadline=deadline, request_id="victim")
                shard = shard_of_request(request, 2)
                handle = svc.pool.handles[shard]
                old_pid = handle.proc.pid
                t0 = time.monotonic()
                task = asyncio.create_task(svc.handle(request))
                await asyncio.sleep(0.4)  # let the solve get in flight
                os.kill(old_pid, signal.SIGKILL)
                result = await task
                elapsed = time.monotonic() - t0
                assert result.ok, result.error
                assert elapsed < deadline + 1.0
                inst = request.instance()
                verify_schedule(
                    Schedule(inst, result.assignment), inst
                ).raise_if_failed()
                if result.degraded:
                    assert result.engine == "lpt"
                # The shard has a fresh process serving again.
                health = await svc.healthcheck()
                detail = health["details"][shard]
                assert detail["alive"] and detail["responsive"]
                assert detail["pid"] != old_pid
                assert detail["restarts"] >= 1
                follow_up = await svc.handle(
                    _req([4, 4, 4, 4], machines=2, request_id="after")
                )
                assert follow_up.ok
                stats = await svc.stats()
                assert stats["counters"]["pool.worker_deaths"] >= 1
                assert stats["counters"]["pool.worker_restarts"] >= 1
            finally:
                await svc.aclose()
            return str(tmp_path)

        root = run(scenario())
        # The killed worker left an uncommitted journal entry behind;
        # multi-journal recovery replays it into the shared store.
        store = ResultStore(root)
        try:
            from repro.algorithms.lpt import lpt, lpt_worst_case_ratio
            from repro.service.requests import SolveResult

            def stub(request):
                schedule = lpt(request.instance())
                return SolveResult(
                    request_id=request.request_id,
                    status="ok",
                    engine="lpt",
                    makespan=schedule.makespan,
                    assignment=schedule.assignment,
                    guarantee=lpt_worst_case_ratio(request.machines),
                )

            report = recover_all(store, root, solve=stub)
        finally:
            store.close()
        assert report.ok
        assert report.entries >= 1

    def test_deadline_mid_solve_degrades_to_lpt(self):
        async def scenario():
            svc = PooledSolveService(1, spawn_grace=120)
            try:
                result = await svc.handle(
                    _slow_req(deadline=0.4, request_id="tight")
                )
                assert result.ok
                assert result.degraded
                assert result.engine == "lpt"
                inst = _slow_req().instance()
                verify_schedule(
                    Schedule(inst, result.assignment), inst
                ).raise_if_failed()
                stats = await svc.stats()
                assert stats["counters"]["pool.deadline_degradations"] >= 1
            finally:
                await svc.aclose()

        run(scenario())

    def test_write_through_store_and_clean_journals(self, tmp_path):
        async def scenario():
            svc = PooledSolveService(2, store_root=str(tmp_path), spawn_grace=120)
            try:
                reqs = [
                    _req([5, 3, 8, 6], machines=2, request_id="s0"),
                    _req([9, 1, 7, 2, 4], machines=2, request_id="s1"),
                    _req([11, 13, 2, 6, 6, 6], machines=3, request_id="s2"),
                ]
                results = await asyncio.gather(*(svc.handle(r) for r in reqs))
                assert all(r.ok and not r.degraded for r in results)
                return reqs
            finally:
                await svc.aclose()

        reqs = run(scenario())
        # Per-worker journals exist and checkpointed empty on clean exit.
        journals = sorted(
            p.name for p in tmp_path.iterdir() if p.name.startswith("journal")
        )
        assert journals == ["journal-w0.jsonl", "journal-w1.jsonl"]
        for name in journals:
            assert (tmp_path / name).stat().st_size == 0
        # Every result is durably readable through the shared store.
        store = ResultStore(str(tmp_path))
        try:
            for req in reqs:
                stored = store.get(canonical_key(req))
                assert stored is not None
                assert stored.makespan is not None
            report = recover_all(store, str(tmp_path))
        finally:
            store.close()
        assert report.ok and report.entries == 0

    def test_distinct_keys_spread_and_stats_namespace_workers(self, tmp_path):
        async def scenario():
            svc = PooledSolveService(2, store_root=str(tmp_path), spawn_grace=120)
            try:
                reqs = [
                    _req([i + 2, 2 * i + 3, 7, 5], machines=2, request_id=f"d{i}")
                    for i in range(8)
                ]
                results = await asyncio.gather(*(svc.handle(r) for r in reqs))
                assert all(r.ok for r in results)
                stats = await svc.stats()
                counters = stats["counters"]
                assert counters["pool.solves_total"] == 8
                # Both shards did work for this key spread.
                per_worker = [
                    counters.get(f"worker.{i}.solves_total", 0) for i in (0, 1)
                ]
                assert sum(per_worker) == 8
                assert all(n > 0 for n in per_worker)
                assert stats["gauges"]["pool.workers"] == 2.0
                assert "pool.solve_seconds" in stats["histograms"]
            finally:
                await svc.aclose()

        run(scenario())
