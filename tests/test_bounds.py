"""Unit tests for :mod:`repro.core.bounds` — Eq. (1) and (2) and the
bracketing invariant ``LB <= OPT <= UB`` against the brute-force oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.bounds import (
    MakespanBounds,
    bounds_from_times,
    lower_bound,
    makespan_bounds,
    upper_bound,
)
from repro.exact.brute import brute_force
from repro.model.instance import Instance

from conftest import small_instances


class TestFormulas:
    def test_lower_bound_paper_eq1(self):
        inst = Instance([10, 3, 3], num_machines=2)  # avg 8, max 10
        assert lower_bound(inst) == 10

    def test_upper_bound_paper_eq2(self):
        inst = Instance([10, 3, 3], num_machines=2)
        assert upper_bound(inst) == 8 + 10

    def test_single_machine(self):
        inst = Instance([4, 5], num_machines=1)
        assert lower_bound(inst) == 9
        assert upper_bound(inst) == 9 + 5

    def test_more_machines_than_jobs(self):
        inst = Instance([4, 5], num_machines=10)
        assert lower_bound(inst) == 5

    def test_bounds_from_times(self):
        b = bounds_from_times([10, 3, 3], 2)
        assert (b.lower, b.upper) == (10, 18)


class TestMakespanBounds:
    def test_width_and_midpoint(self):
        b = MakespanBounds(10, 18)
        assert b.width == 8
        assert b.midpoint() == 14
        assert b.contains(10) and b.contains(18) and not b.contains(19)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            MakespanBounds(5, 4)

    def test_degenerate_interval(self):
        b = MakespanBounds(7, 7)
        assert b.width == 0
        assert b.midpoint() == 7


@given(small_instances())
@settings(max_examples=60)
def test_property_bounds_bracket_optimum(inst: Instance):
    """The optimum always lies in [LB, UB] (checked by brute force)."""
    opt = brute_force(inst).makespan
    b = makespan_bounds(inst)
    assert b.lower <= opt <= b.upper


@given(small_instances())
@settings(max_examples=60)
def test_property_interval_width_at_most_max_time(inst: Instance):
    """The paper's termination argument: UB - LB <= max t."""
    b = makespan_bounds(inst)
    assert b.width <= inst.max_time
