"""Tests for the phase profiler (:mod:`repro.experiments.profiling`)."""

from __future__ import annotations

import pytest

from repro.core.ptas import ptas
from repro.experiments.profiling import PHASES, PhaseProfile, profile_ptas
from repro.model.instance import Instance
from repro.workloads.generator import make_instance


@pytest.fixture(scope="module")
def profile():
    inst = make_instance("u_10n", 6, 20, seed=4)
    return profile_ptas(inst, 0.3)


class TestProfilePTAS:
    def test_all_phases_timed(self, profile):
        for phase in PHASES:
            assert profile.seconds[phase] >= 0.0
        assert profile.total > 0.0
        assert profile.dp_iterations >= 1

    def test_shares_sum_to_one(self, profile):
        assert sum(profile.share(p) for p in PHASES) == pytest.approx(1.0)

    def test_unknown_phase_rejected(self, profile):
        with pytest.raises(KeyError):
            profile.share("networking")

    def test_schedule_attached_and_matches_ptas(self):
        inst = make_instance("u_100", 4, 14, seed=9)
        prof = profile_ptas(inst, 0.3)
        plain = ptas(inst, 0.3, engine="table")
        assert prof.schedule is not None
        assert prof.schedule.makespan == plain.makespan
        assert prof.schedule.assignment == plain.schedule.assignment

    def test_render(self, profile):
        out = profile.render()
        assert "PTAS phase profile" in out
        assert "dp" in out
        assert "total" in out

    def test_empty_profile_share(self):
        assert PhaseProfile().share("dp") == 0.0

    def test_dp_dominates_on_dp_heavy_instance(self):
        """The §III claim: the DP is the dominant phase (on an instance
        with a non-trivial table)."""
        inst = make_instance("lpt_adversarial", 10, 21, seed=0)
        prof = profile_ptas(inst, 0.3)
        assert prof.share("dp") > 0.5, dict(prof.seconds)
