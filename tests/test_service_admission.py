"""Tests for admission control (:mod:`repro.service.admission`)."""

from __future__ import annotations

import pytest

from repro.service.admission import AdmissionController, estimate_ops
from repro.service.requests import SolveRequest


def _request(n=10, m=3, engine="ptas", eps=0.3):
    return SolveRequest(times=tuple(range(1, n + 1)), machines=m, engine=engine, eps=eps)


class TestEstimate:
    def test_monotone_in_size(self):
        assert estimate_ops(_request(n=100)) > estimate_ops(_request(n=10))

    def test_monotone_in_accuracy(self):
        assert estimate_ops(_request(eps=0.05)) > estimate_ops(_request(eps=0.5))

    def test_baselines_far_cheaper_than_ptas(self):
        assert estimate_ops(_request(engine="lpt")) * 10 < estimate_ops(
            _request(engine="ptas")
        )

    def test_exact_priced_above_ptas(self):
        assert estimate_ops(_request(engine="ilp")) > estimate_ops(
            _request(engine="ptas")
        )


class TestQueueBound:
    def test_rejects_when_queue_full(self):
        gate = AdmissionController(max_queue_depth=2, max_inflight_ops=1e18)
        d1 = gate.try_admit(_request())
        d2 = gate.try_admit(_request())
        assert d1.admitted and d2.admitted
        d3 = gate.try_admit(_request())
        assert not d3.admitted
        assert "queue full" in d3.reason
        assert d3.retry_after is not None and d3.retry_after > 0
        assert gate.rejected_total == 1

    def test_release_reopens_the_queue(self):
        gate = AdmissionController(max_queue_depth=1, max_inflight_ops=1e18)
        d1 = gate.try_admit(_request())
        assert not gate.try_admit(_request()).admitted
        gate.release(d1)
        assert gate.queue_depth == 0
        assert gate.try_admit(_request()).admitted

    def test_release_of_rejection_is_a_no_op(self):
        gate = AdmissionController(max_queue_depth=1)
        gate.try_admit(_request())
        rejected = gate.try_admit(_request())
        gate.release(rejected)
        assert gate.queue_depth == 1


class TestWorkBound:
    def test_sheds_additional_work_over_budget(self):
        ops = estimate_ops(_request())
        gate = AdmissionController(max_queue_depth=10, max_inflight_ops=ops * 1.5)
        assert gate.try_admit(_request()).admitted
        decision = gate.try_admit(_request())
        assert not decision.admitted
        assert "budget" in decision.reason

    def test_single_huge_request_admitted_when_idle(self):
        # The ops cap sheds *additional* work; an idle service still
        # accepts a request bigger than the whole budget.
        gate = AdmissionController(max_queue_depth=10, max_inflight_ops=1.0)
        assert gate.try_admit(_request(n=200, eps=0.1)).admitted

    def test_inflight_ops_accounting(self):
        gate = AdmissionController(max_queue_depth=10, max_inflight_ops=1e18)
        d = gate.try_admit(_request())
        assert gate.inflight_ops == pytest.approx(d.ops)
        gate.release(d)
        assert gate.inflight_ops == 0.0


def test_stats_shape():
    gate = AdmissionController(max_queue_depth=4)
    gate.try_admit(_request())
    stats = gate.stats()
    assert stats["queue_depth"] == 1
    assert stats["admitted_total"] == 1
    assert stats["rejected_total"] == 0
    assert stats["max_queue_depth"] == 4
