"""Tests for the simulated machine's assignment policies and the
per-state cost fidelity of the parallel DP."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dp import DPProblem
from repro.core.parallel_dp import parallel_dp
from repro.simcore.costmodel import CostModel
from repro.simcore.machine import ASSIGNMENT_POLICIES, SimulatedMachine

ZERO = CostModel(
    state_overhead_ops=0.0,
    config_enumeration_factor=1.0,
    barrier_ops=0.0,
    dispatch_ops_per_chunk=0.0,
)


class TestDynamicPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="assignment policy"):
            SimulatedMachine(2, assignment_policy="random")
        for policy in ASSIGNMENT_POLICIES:
            SimulatedMachine(2, assignment_policy=policy)

    def test_identical_for_uniform_costs(self):
        rr = SimulatedMachine(3, ZERO, assignment_policy="round_robin")
        dyn = SimulatedMachine(3, ZERO, assignment_policy="dynamic")
        costs = [2.0] * 10
        rr.record_level(0, costs)
        dyn.record_level(0, costs)
        assert rr.parallel_ops == pytest.approx(dyn.parallel_ops)

    def test_dynamic_beats_round_robin_on_skewed_costs(self):
        # Round-robin puts both heavy items on processor 0.
        costs = [10.0, 1.0, 10.0, 1.0]
        rr = SimulatedMachine(2, ZERO, assignment_policy="round_robin")
        dyn = SimulatedMachine(2, ZERO, assignment_policy="dynamic")
        rr.record_level(0, costs)
        dyn.record_level(0, costs)
        assert rr.parallel_ops == 20.0
        assert dyn.parallel_ops == pytest.approx(11.0)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=20.0), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60)
    def test_property_both_policies_within_graham_bounds(self, costs, p):
        """Neither policy is universally better (greedy self-scheduling is
        list scheduling, a (2 - 1/p)-approximation — fitting, given the
        library's subject), but both stay within Graham's envelope of the
        level's lower bound, and dynamic meets the LS guarantee relative
        to round-robin (which is itself a feasible schedule)."""
        rr = SimulatedMachine(p, ZERO, assignment_policy="round_robin")
        dyn = SimulatedMachine(p, ZERO, assignment_policy="dynamic")
        rr.record_level(0, costs)
        dyn.record_level(0, costs)
        lower = max(max(costs), sum(costs) / p)
        graham = 2.0 - 1.0 / p
        assert lower - 1e-9 <= dyn.parallel_ops <= graham * lower + 1e-9
        assert lower - 1e-9 <= rr.parallel_ops <= sum(costs) + 1e-9
        # Round-robin is a feasible level schedule, so its makespan bounds
        # the optimum and LS's guarantee applies against it too.
        assert dyn.parallel_ops <= graham * rr.parallel_ops + 1e-9


class TestPerStateFidelity:
    def test_rejects_unknown_fidelity(self, paper_example_problem):
        with pytest.raises(ValueError, match="cost_fidelity"):
            parallel_dp(
                paper_example_problem, 2, "simulated", cost_fidelity="exact"
            )

    def test_results_unchanged(self, paper_example_problem):
        uniform = parallel_dp(paper_example_problem, 2, "simulated")
        per_state = parallel_dp(
            paper_example_problem, 2, "simulated", cost_fidelity="per_state"
        )
        assert per_state.opt == uniform.opt
        assert per_state.machine_configs == uniform.machine_configs

    def test_per_state_serial_ops_not_above_uniform(self, paper_example_problem):
        """|C_v| <= |C| per state, so the measured workload is a lower
        envelope of the worst-case accounting."""
        uni = SimulatedMachine(2, CostModel())
        per = SimulatedMachine(2, CostModel())
        parallel_dp(paper_example_problem, 2, "simulated", machine=uni)
        parallel_dp(
            paper_example_problem,
            2,
            "simulated",
            machine=per,
            cost_fidelity="per_state",
        )
        assert per.serial_ops <= uni.serial_ops + 1e-9

    def test_dynamic_policy_with_per_state_costs(self):
        """End to end: both policies process the same per-state workload
        (equal serial ops) and differ only in level makespans, staying
        within the (2 - 1/P) list-scheduling envelope of each other."""
        problem = DPProblem((4, 9), (6, 4), 22)
        machines = {}
        for policy in ASSIGNMENT_POLICIES:
            machine = SimulatedMachine(4, CostModel(), assignment_policy=policy)
            parallel_dp(
                problem,
                4,
                "simulated",
                machine=machine,
                cost_fidelity="per_state",
            )
            machines[policy] = machine
        rr, dyn = machines["round_robin"], machines["dynamic"]
        assert rr.serial_ops == pytest.approx(dyn.serial_ops)
        graham = 2.0 - 1.0 / 4
        assert dyn.parallel_ops <= graham * rr.parallel_ops + 1e-9
