"""Tests for the verification module (:mod:`repro.model.verify`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.ptas import parallel_ptas, ptas
from repro.model.instance import Instance
from repro.model.schedule import Schedule
from repro.model.verify import verify_ptas_result, verify_schedule

from conftest import medium_instances, small_instances


class TestVerifySchedule:
    def test_clean_schedule(self):
        inst = Instance([5, 4, 3], 2)
        report = verify_schedule(Schedule(inst, [[0], [1, 2]]))
        assert report.ok
        assert bool(report)
        report.raise_if_failed()  # no-op

    def test_mismatched_instance(self):
        inst = Instance([5, 4, 3], 2)
        other = Instance([5, 4, 4], 2)
        sched = Schedule(inst, [[0], [1, 2]])
        report = verify_schedule(sched, other)
        assert not report.ok
        assert "different instance" in report.violations[0]

    def test_raise_if_failed(self):
        inst = Instance([5, 4, 3], 2)
        report = verify_schedule(
            Schedule(inst, [[0], [1, 2]]), Instance([9, 9], 1)
        )
        with pytest.raises(AssertionError, match="verification"):
            report.raise_if_failed()

    @given(medium_instances())
    @settings(max_examples=30)
    def test_property_all_algorithms_verify(self, inst):
        from repro.algorithms.list_scheduling import list_scheduling
        from repro.algorithms.lpt import lpt
        from repro.algorithms.multifit import multifit

        for schedule in (lpt(inst), list_scheduling(inst), multifit(inst)):
            assert verify_schedule(schedule).ok


class TestVerifyPTASResult:
    def test_sequential_result_verifies(self, small_instance):
        report = verify_ptas_result(ptas(small_instance, 0.3))
        assert report.ok, report.violations

    def test_parallel_result_verifies(self, small_instance):
        report = verify_ptas_result(
            parallel_ptas(small_instance, 0.3, num_workers=4)
        )
        assert report.ok, report.violations

    @given(small_instances())
    @settings(max_examples=40)
    def test_property_every_run_verifies(self, inst):
        for eps in (0.3, 0.7):
            report = verify_ptas_result(ptas(inst, eps))
            assert report.ok, (inst, eps, report.violations)

    def test_detects_tampered_target(self, small_instance):
        import dataclasses

        result = ptas(small_instance, 0.3)
        bad = dataclasses.replace(result, final_target=10**9)
        report = verify_ptas_result(bad)
        assert not report.ok
        assert any("outside" in v for v in report.violations)

    def test_detects_inconsistent_k(self, small_instance):
        import dataclasses

        result = ptas(small_instance, 0.3)
        bad = dataclasses.replace(result, eps=0.9)  # k=4 but ceil(1/0.9)=2
        report = verify_ptas_result(bad)
        assert any("inconsistent" in v for v in report.violations)
