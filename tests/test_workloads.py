"""Tests for the workload generators (:mod:`repro.workloads`)."""

from __future__ import annotations

import pytest

from repro.workloads.families import FAMILIES, SPEEDUP_FAMILY_KEYS, family, speedup_families
from repro.workloads.generator import (
    family_of_types,
    generate_batch,
    lpt_adversarial,
    lpt_worst_case_exact,
    make_instance,
    uniform_instance,
)


class TestUniformInstance:
    def test_shape(self):
        inst = uniform_instance(4, 10, 1, 100, seed=0)
        assert inst.num_jobs == 10
        assert inst.num_machines == 4

    def test_bounds_inclusive(self):
        inst = uniform_instance(2, 2000, 3, 5, seed=1)
        values = set(inst.processing_times)
        assert values == {3, 4, 5}

    def test_deterministic_seed(self):
        a = uniform_instance(3, 20, 1, 50, seed=7)
        b = uniform_instance(3, 20, 1, 50, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = uniform_instance(3, 20, 1, 50, seed=7)
        b = uniform_instance(3, 20, 1, 50, seed=8)
        assert a != b

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            uniform_instance(2, 5, 10, 9)
        with pytest.raises(ValueError):
            uniform_instance(2, 5, 0, 9)
        with pytest.raises(ValueError):
            uniform_instance(2, 0, 1, 9)


class TestFamilies:
    def test_all_six_defined(self):
        assert set(FAMILIES) == {
            "u_2m",
            "u_100",
            "u_10",
            "u_10n",
            "lpt_adversarial",
            "u_narrow",
        }

    def test_speedup_order_matches_paper(self):
        assert SPEEDUP_FAMILY_KEYS == ("u_2m", "u_100", "u_10", "u_10n")
        assert [f.key for f in speedup_families()] == list(SPEEDUP_FAMILY_KEYS)

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown family"):
            family("zipf")

    @pytest.mark.parametrize("key", sorted(FAMILIES))
    def test_bounds_valid_at_paper_sizes(self, key):
        fam = family(key)
        for m, n in [(10, 30), (10, 50), (20, 100)]:
            lo, hi = fam.bounds(m, n)
            assert 1 <= lo <= hi

    def test_u_2m_bounds(self):
        assert family("u_2m").bounds(10, 30) == (1, 19)

    def test_u_10n_bounds(self):
        assert family("u_10n").bounds(10, 30) == (1, 300)

    def test_lpt_adversarial_pins_n(self):
        fam = family("lpt_adversarial")
        assert fam.job_count(10, 999) == 21
        assert fam.bounds(10, 21) == (10, 19)

    def test_narrow_bounds(self):
        assert family("u_narrow").bounds(10, 30) == (95, 105)


class TestMakeInstance:
    @pytest.mark.parametrize("key", sorted(FAMILIES))
    def test_every_family_generates(self, key):
        inst = make_instance(key, 10, 30, seed=0)
        fam = family(key)
        lo, hi = fam.bounds(10, 30)
        assert inst.num_jobs == fam.job_count(10, 30)
        assert all(lo <= t <= hi for t in inst.processing_times)

    def test_lpt_adversarial_wrapper(self):
        inst = lpt_adversarial(10, seed=0)
        assert inst.num_jobs == 21
        assert all(10 <= t <= 19 for t in inst.processing_times)

    def test_lpt_worst_case_exact_structure(self):
        inst = lpt_worst_case_exact(4)
        assert inst.num_jobs == 2 * 4 + 1
        assert sorted(inst.processing_times) == [4, 4, 4, 5, 5, 6, 6, 7, 7]

    def test_lpt_worst_case_needs_m2(self):
        with pytest.raises(ValueError):
            lpt_worst_case_exact(1)


class TestBatches:
    def test_batch_count_and_seeds(self):
        batch = list(generate_batch("u_10", 5, 12, count=4, base_seed=100))
        assert len(batch) == 4
        assert len({b.processing_times for b in batch}) == 4  # distinct draws

    def test_batch_reproducible(self):
        a = list(generate_batch("u_100", 5, 12, count=3, base_seed=9))
        b = list(generate_batch("u_100", 5, 12, count=3, base_seed=9))
        assert a == b

    def test_batch_rejects_zero_count(self):
        with pytest.raises(ValueError):
            list(generate_batch("u_10", 2, 5, count=0))

    def test_family_of_types_default_grid(self):
        grid = family_of_types()
        assert len(grid) == 24  # 2 machine counts x 3 job counts x 4 kinds
        assert ("u_10", 10, 30) in grid
        assert ("u_10n", 20, 100) in grid
