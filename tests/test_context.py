"""Tests for :mod:`repro.core.context`: the unified SolveContext API,
the deprecation shims that replace the legacy kwargs, and the service's
context construction."""

from __future__ import annotations

import pytest

from repro.core import DEFAULT_CONTEXT, SolveContext, parallel_ptas, ptas, resolve_context
from repro.core.bisection import bisect_target_makespan
from repro.core.dp import solve
from repro.model.instance import Instance
from repro.obs import NULL_TRACER, Tracer
from repro.service.registry import build_solve_context, get_engine
from repro.service.requests import DeadlineExceeded, SolveRequest

INSTANCE = Instance([7, 7, 6, 6, 5, 4, 4, 3, 9, 2], num_machines=3)


def _standard_solver(problem, m):
    return solve(problem, "dominance", limit=m, track_schedule=True)


class TestSolveContext:
    def test_defaults(self):
        ctx = SolveContext()
        assert ctx.check_deadline is None
        assert ctx.warm_start is True
        assert ctx.tracer is NULL_TRACER
        assert ctx.metrics is None
        assert ctx.executor is None

    def test_check_without_deadline_is_noop(self):
        SolveContext().check()  # must not raise

    def test_check_invokes_hook(self):
        calls = []
        SolveContext(check_deadline=lambda: calls.append(1)).check()
        assert calls == [1]

    def test_check_propagates_exception(self):
        def boom():
            raise DeadlineExceeded("late")

        with pytest.raises(DeadlineExceeded):
            SolveContext(check_deadline=boom).check()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SolveContext().warm_start = False  # type: ignore[misc]

    def test_span_and_count_delegate_to_tracer(self):
        tracer = Tracer()
        ctx = SolveContext(tracer=tracer)
        with ctx.span("probe", target=1):
            ctx.count("probes")
        assert tracer.counters == {"probes": 1}
        assert [s.kind for s in tracer.walk()] == ["probe"]


class TestResolveContext:
    def test_plain_defaults(self):
        assert resolve_context() is DEFAULT_CONTEXT

    def test_explicit_ctx_wins(self):
        ctx = SolveContext(warm_start=False)
        assert resolve_context(ctx) is ctx

    def test_custom_default(self):
        default = SolveContext(warm_start=False)
        assert resolve_context(None, default=default) is default

    def test_legacy_kwargs_warn_and_override(self):
        hook = lambda: None  # noqa: E731
        with pytest.warns(DeprecationWarning, match="warm_start"):
            ctx = resolve_context(warm_start=False, caller="x")
        assert ctx.warm_start is False
        with pytest.warns(DeprecationWarning, match="check_deadline"):
            ctx = resolve_context(check_deadline=hook, caller="x")
        assert ctx.check_deadline is hook


class TestDeprecationShims:
    """Acceptance: the legacy kwargs only work via warning shims."""

    def test_ptas_warm_start_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match=r"ptas\(warm_start"):
            result = ptas(INSTANCE, 0.3, warm_start=False)
        assert result.schedule.makespan >= 1

    def test_ptas_check_deadline_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match=r"ptas\(check_deadline"):
            ptas(INSTANCE, 0.3, check_deadline=lambda: None)

    def test_parallel_ptas_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match=r"parallel_ptas\(warm_start"):
            parallel_ptas(INSTANCE, 0.3, 2, backend="numpy-serial", warm_start=False)

    def test_bisect_kwargs_warn(self):
        with pytest.warns(
            DeprecationWarning, match=r"bisect_target_makespan\(warm_start"
        ):
            bisect_target_makespan(INSTANCE, 4, _standard_solver, warm_start=True)

    def test_ctx_only_calls_do_not_warn(self, recwarn):
        ptas(INSTANCE, 0.3, ctx=SolveContext(warm_start=False))
        parallel_ptas(
            INSTANCE, 0.3, 2, backend="numpy-serial", ctx=SolveContext()
        )
        bisect_target_makespan(INSTANCE, 4, _standard_solver, ctx=SolveContext())
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]

    def test_shim_message_points_at_the_facade(self):
        with pytest.warns(DeprecationWarning, match=r"repro\.solve\(\) facade"):
            ptas(INSTANCE, 0.3, warm_start=False)

    def test_no_internal_path_uses_the_shims(self):
        """Deprecation sweep acceptance: every internal caller passes
        ``ctx=``, so the full spread of entry points — the facade, the
        registry, a deadline-bearing service-style solve — runs clean
        with DeprecationWarning escalated to an error."""
        import warnings

        import repro
        from repro.service.registry import build_solve_context, solve_to_result
        from repro.service.requests import SolveRequest

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.solve(INSTANCE, engine="ptas")
            repro.solve(
                repro.QInstance(INSTANCE.processing_times, speeds=(1,) * INSTANCE.num_machines),
                engine="lpt",
            )
            request = SolveRequest(
                times=INSTANCE.processing_times,
                machines=INSTANCE.num_machines,
                engine="parallel_ptas",
                backend="numpy-serial",
                deadline=30.0,
            )
            ctx = build_solve_context(request, deadline_at=None)
            solve_to_result(request, ctx)


class TestContextEquivalence:
    def test_ctx_matches_legacy_warm_start_results(self):
        with pytest.warns(DeprecationWarning):
            legacy = ptas(INSTANCE, 0.3, warm_start=False)
        via_ctx = ptas(INSTANCE, 0.3, ctx=SolveContext(warm_start=False))
        assert via_ctx.final_target == legacy.final_target
        assert via_ctx.schedule.makespan == legacy.schedule.makespan
        assert (
            via_ctx.outcome.num_iterations == legacy.outcome.num_iterations
        )

    def test_bisect_default_stays_faithful(self):
        """The standalone bisection still defaults to the paper-faithful
        (no warm start) search when no context is given."""
        plain = bisect_target_makespan(INSTANCE, 4, _standard_solver)
        faithful = bisect_target_makespan(
            INSTANCE, 4, _standard_solver, ctx=SolveContext(warm_start=False)
        )
        assert plain.rounding_reuses == 0
        assert [i.target for i in plain.iterations] == [
            i.target for i in faithful.iterations
        ]

    def test_deadline_cancels_via_ctx(self):
        calls = {"n": 0}

        def hook():
            calls["n"] += 1
            raise DeadlineExceeded("over budget")

        with pytest.raises(DeadlineExceeded):
            ptas(INSTANCE, 0.1, ctx=SolveContext(check_deadline=hook))
        assert calls["n"] == 1


class TestBuildSolveContext:
    def _request(self, **kw) -> SolveRequest:
        return SolveRequest(
            times=INSTANCE.processing_times,
            machines=INSTANCE.num_machines,
            engine=kw.pop("engine", "ptas"),
            **kw,
        )

    def test_no_deadline(self):
        ctx = build_solve_context(self._request())
        assert ctx.check_deadline is None
        assert ctx.tracer is NULL_TRACER
        assert ctx.metrics is None

    def test_deadline_checker_fires_on_fake_clock(self):
        now = {"t": 0.0}
        ctx = build_solve_context(
            self._request(), deadline_at=10.0, clock=lambda: now["t"]
        )
        ctx.check()  # before the deadline: fine
        now["t"] = 11.0
        with pytest.raises(DeadlineExceeded):
            ctx.check()

    def test_tracer_and_metrics_are_carried(self):
        tracer = Tracer()
        metrics = object()
        ctx = build_solve_context(self._request(), tracer=tracer, metrics=metrics)
        assert ctx.tracer is tracer
        assert ctx.metrics is metrics


class TestAdapterCoercion:
    def test_adapters_accept_context(self):
        spec = get_engine("ptas")
        request = SolveRequest(
            times=INSTANCE.processing_times,
            machines=INSTANCE.num_machines,
            engine="ptas",
        )
        tracer = Tracer()
        schedule = spec.solve(INSTANCE, request, SolveContext(tracer=tracer))
        assert schedule.makespan >= 1
        assert tracer.find("solve")

    def test_adapters_accept_none(self, recwarn):
        spec = get_engine("parallel_ptas")
        request = SolveRequest(
            times=INSTANCE.processing_times,
            machines=INSTANCE.num_machines,
            engine="parallel_ptas",
            backend="numpy-serial",
            workers=2,
        )
        assert spec.solve(INSTANCE, request, None).makespan >= 1
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]

    def test_bare_callable_coerced_with_warning(self):
        spec = get_engine("ptas")
        request = SolveRequest(
            times=INSTANCE.processing_times,
            machines=INSTANCE.num_machines,
            engine="ptas",
        )
        with pytest.warns(DeprecationWarning, match="bare check_deadline"):
            schedule = spec.solve(INSTANCE, request, lambda: None)
        assert schedule.makespan >= 1
