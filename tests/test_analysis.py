"""Tests for :mod:`repro.analysis` (scaling diagnostics and statistics)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.scaling import (
    amdahl_fit,
    amdahl_speedup,
    karp_flatt,
    parallel_efficiency,
)
from repro.analysis.stats import bootstrap_ci, mean_and_ci


class TestEfficiency:
    def test_linear_scaling(self):
        assert parallel_efficiency(8.0, 8) == 1.0

    def test_half_efficiency(self):
        assert parallel_efficiency(8.0, 16) == 0.5

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            parallel_efficiency(1.0, 0)
        with pytest.raises(ValueError):
            parallel_efficiency(-1.0, 2)


class TestKarpFlatt:
    def test_perfect_speedup_zero_fraction(self):
        assert karp_flatt(8.0, 8) == pytest.approx(0.0)

    def test_paper_value(self):
        assert karp_flatt(6.5, 8) == pytest.approx(0.0330, abs=1e-3)

    def test_pure_serial(self):
        assert karp_flatt(1.0, 16) == pytest.approx(1.0)

    def test_rejects_p1(self):
        with pytest.raises(ValueError):
            karp_flatt(1.0, 1)

    @given(
        st.floats(min_value=0.0, max_value=0.9),
        st.integers(min_value=2, max_value=64),
    )
    def test_property_inverts_amdahl(self, f, p):
        """Karp-Flatt recovers the serial fraction of an Amdahl curve."""
        s = amdahl_speedup(f, p)
        assert karp_flatt(s, p) == pytest.approx(f, abs=1e-9)


class TestAmdahl:
    def test_speedup_limits(self):
        assert amdahl_speedup(0.0, 16) == 16.0
        assert amdahl_speedup(1.0, 16) == 1.0

    def test_monotone_in_p(self):
        speedups = [amdahl_speedup(0.1, p) for p in (1, 2, 4, 8, 16)]
        assert speedups == sorted(speedups)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            amdahl_speedup(1.5, 4)

    def test_fit_recovers_exact_curve(self):
        f = 0.07
        ps = [2, 4, 8, 16]
        fit = amdahl_fit(ps, [amdahl_speedup(f, p) for p in ps])
        assert fit.serial_fraction == pytest.approx(f, abs=1e-9)
        assert fit.max_speedup == pytest.approx(1 / f, rel=1e-6)
        assert fit.residual == pytest.approx(0.0, abs=1e-9)

    def test_fit_predict(self):
        fit = amdahl_fit([2, 4], [amdahl_speedup(0.2, 2), amdahl_speedup(0.2, 4)])
        assert fit.predict(8) == pytest.approx(amdahl_speedup(0.2, 8))

    def test_fit_ignores_p1(self):
        fit = amdahl_fit([1, 2, 4], [1.0, amdahl_speedup(0.1, 2), amdahl_speedup(0.1, 4)])
        assert fit.serial_fraction == pytest.approx(0.1, abs=1e-9)

    def test_fit_rejects_empty_or_mismatched(self):
        with pytest.raises(ValueError):
            amdahl_fit([], [])
        with pytest.raises(ValueError):
            amdahl_fit([2, 4], [3.0])
        with pytest.raises(ValueError):
            amdahl_fit([1], [1.0])  # no P >= 2 measurement

    def test_fit_clamps_to_valid_range(self):
        # Superlinear measurements imply f < 0; the fit clamps to 0.
        fit = amdahl_fit([2, 4], [2.5, 5.0])
        assert fit.serial_fraction == 0.0
        assert fit.max_speedup == float("inf")


class TestBootstrap:
    def test_constant_sample(self):
        lo, hi = bootstrap_ci([5.0] * 10)
        assert lo == hi == 5.0

    def test_interval_brackets_mean(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        result = mean_and_ci(values, seed=1)
        assert result.lower <= result.mean <= result.upper
        assert result.mean == pytest.approx(3.0)
        assert result.samples == 5

    def test_deterministic_given_seed(self):
        values = [1.0, 4.0, 2.0, 8.0]
        assert bootstrap_ci(values, seed=7) == bootstrap_ci(values, seed=7)

    def test_wider_confidence_wider_interval(self):
        values = [1.0, 5.0, 2.0, 9.0, 3.0, 7.0]
        lo90, hi90 = bootstrap_ci(values, confidence=0.90)
        lo99, hi99 = bootstrap_ci(values, confidence=0.99)
        assert lo99 <= lo90 and hi99 >= hi90

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], resamples=0)
