"""`repro.solve` — the facade over the engine registry."""

from __future__ import annotations

import pytest

import repro
from repro.core.context import SolveContext
from repro.service.registry import UnknownEngineError, UnsupportedProblemError
from repro.service.requests import DeadlineExceeded


class TestSolveFacade:
    def test_p_cmax_roundtrip(self):
        inst = repro.Instance([9, 8, 7, 6, 5, 5, 4, 3, 2, 1], 3)
        result = repro.solve(inst, engine="lpt")
        assert result.ok
        assert result.engine == "lpt"
        assert result.makespan == repro.lpt(inst).makespan
        schedule = result.schedule(inst)
        assert repro.verify_schedule(schedule, inst).ok

    def test_ptas_respects_eps(self):
        inst = repro.Instance([9, 8, 7, 6, 5, 5, 4, 3, 2, 1], 3)
        result = repro.solve(inst, engine="ptas", eps=0.2)
        assert result.ok
        assert result.guarantee == pytest.approx(1.2)
        opt = repro.solve_exact(inst, "bnb").makespan
        assert result.makespan <= 1.2 * opt

    def test_q_cmax_inferred_from_instance_type(self):
        q = repro.QInstance([6, 4, 3, 2], speeds=(3, 1))
        result = repro.solve(q, engine="lpt")
        assert result.ok
        assert result.makespan == pytest.approx(4.0)
        assert repro.verify_schedule(result.schedule(q), q).ok

    def test_unsupported_pair_raises_listing_valid_pairs(self):
        q = repro.QInstance([6, 4], speeds=(2, 1))
        with pytest.raises(UnsupportedProblemError, match="q_cmax"):
            repro.solve(q, engine="ptas")

    def test_unknown_engine_raises(self):
        with pytest.raises(UnknownEngineError, match="nosuch"):
            repro.solve(repro.Instance([3, 2], 1), engine="nosuch")

    def test_ctx_deadline_hook_is_honoured(self):
        def hook():
            raise DeadlineExceeded("now")

        inst = repro.Instance([9, 8, 7, 6, 5, 5, 4, 3, 2, 1], 3)
        with pytest.raises(DeadlineExceeded):
            repro.solve(inst, engine="ptas", ctx=SolveContext(check_deadline=hook))

    def test_no_deprecation_warnings(self, recwarn):
        inst = repro.Instance([5, 4, 3], 2)
        repro.solve(inst, engine="ptas")
        q = repro.QInstance([5, 4, 3], speeds=(2, 1))
        repro.solve(q, engine="ls")
        assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]
