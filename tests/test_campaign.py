"""Tests for the campaign runner (:mod:`repro.experiments.campaign`)."""

from __future__ import annotations

import csv

import pytest

from repro.experiments.campaign import (
    CampaignResult,
    TypeAggregate,
    TypeKey,
    run_campaign,
)
from repro.experiments.harness import ExperimentConfig


@pytest.fixture(scope="module")
def small_campaign() -> CampaignResult:
    cfg = ExperimentConfig(cores=(2, 4), ip_time_limit=5.0)
    return run_campaign(
        [("u_10", 3, 8), ("u_100", 3, 8)],
        instances_per_type=2,
        config=cfg,
        base_seed=7,
    )


class TestRunCampaign:
    def test_one_aggregate_per_type(self, small_campaign):
        assert len(small_campaign.aggregates) == 2
        assert all(len(a.records) == 2 for a in small_campaign.aggregates)

    def test_type_key_label(self):
        assert TypeKey("u_10", 3, 8).label() == "U(1, 10) m=3 n=8"

    def test_rejects_zero_instances(self):
        with pytest.raises(ValueError):
            run_campaign([("u_10", 2, 4)], instances_per_type=0)

    def test_speedup_cis_bracket_mean(self, small_campaign):
        for agg in small_campaign.aggregates:
            ci = agg.speedup_ci(2)
            assert ci.lower <= ci.mean <= ci.upper
            ip_ci = agg.speedup_vs_ip_ci(2)
            assert ip_ci.mean > 0

    def test_scaling_diagnostics(self, small_campaign):
        diag = small_campaign.aggregates[0].scaling_diagnostics((2, 4))
        assert 0.0 <= diag["serial_fraction"] <= 1.0
        assert diag["amdahl_max_speedup"] >= 1.0
        assert diag["fit_residual"] >= 0.0

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="parallel_workers"):
            run_campaign([("u_10", 2, 4)], instances_per_type=1, parallel_workers=0)

    @pytest.mark.slow
    def test_process_parallel_campaign(self):
        """Process-pooled runs produce the same makespans as serial runs
        (timings differ, results must not)."""
        cfg = ExperimentConfig(cores=(2,), ip_time_limit=5.0)
        serial = run_campaign(
            [("u_10", 3, 8)], instances_per_type=2, config=cfg, base_seed=3
        )
        pooled = run_campaign(
            [("u_10", 3, 8)],
            instances_per_type=2,
            config=cfg,
            base_seed=3,
            parallel_workers=2,
        )
        for a, b in zip(serial.aggregates[0].records, pooled.aggregates[0].records):
            assert a.sequential.makespan == b.sequential.makespan
            assert a.ip.makespan == b.ip.makespan


class TestRendering:
    def test_render_contains_types(self, small_campaign):
        out = small_campaign.render()
        assert "U(1, 10) m=3 n=8" in out
        assert "speedup@4" in out

    def test_export_csv(self, small_campaign, tmp_path):
        paths = small_campaign.export_csv(tmp_path)
        assert len(paths) == 2
        with paths[0].open() as fh:
            rows = list(csv.DictReader(fh))
        # 2 types x 2 replicates x 2 core counts = 8 run rows.
        assert len(rows) == 8
        assert {r["cores"] for r in rows} == {"2", "4"}
        assert all(float(r["speedup_vs_ptas"]) > 0 for r in rows)
        with paths[1].open() as fh:
            summary = list(csv.DictReader(fh))
        assert len(summary) == 2
