"""Unit tests for :mod:`repro.parallel.executor`."""

from __future__ import annotations

import threading

import pytest

from repro.parallel.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)


def square_chunk(chunk):
    return [x * x for x in chunk]


class TestSerialExecutor:
    def test_maps_in_order(self):
        ex = SerialExecutor()
        out = ex.map_chunks(square_chunk, [[1, 2], [3]])
        assert out == [[1, 4], [9]]

    def test_empty_chunks_yield_none(self):
        ex = SerialExecutor()
        assert ex.map_chunks(square_chunk, [[], [2], []]) == [None, [4], None]

    def test_models_worker_count(self):
        assert SerialExecutor(8).num_workers == 8

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            SerialExecutor(0)

    def test_context_manager(self):
        with SerialExecutor() as ex:
            assert ex.map_chunks(square_chunk, [[2]]) == [[4]]


class TestThreadExecutor:
    def test_maps_all_chunks(self):
        with ThreadExecutor(3) as ex:
            out = ex.map_chunks(square_chunk, [[1], [2], [3]])
        assert out == [[1], [4], [9]]

    def test_shared_memory_visible(self):
        """Workers write into one shared structure — the property the
        thread backend of the parallel DP relies on."""
        table = [0] * 10
        def write_chunk(chunk):
            for i in chunk:
                table[i] = i + 100
        with ThreadExecutor(4) as ex:
            ex.map_chunks(write_chunk, [[0, 4, 8], [1, 5, 9], [2, 6], [3, 7]])
        assert table == [100 + i for i in range(10)]

    def test_runs_concurrently_when_gil_released(self):
        """Barrier-style rendezvous proves two chunks are in flight at
        once (threads block in `wait`, releasing the GIL)."""
        barrier = threading.Barrier(2, timeout=5)
        def rendezvous(chunk):
            barrier.wait()
            return chunk
        with ThreadExecutor(2) as ex:
            out = ex.map_chunks(rendezvous, [[1], [2]])
        assert out == [[1], [2]]

    def test_propagates_exceptions(self):
        def boom(chunk):
            raise RuntimeError("kaput")
        with ThreadExecutor(2) as ex:
            with pytest.raises(RuntimeError, match="kaput"):
                ex.map_chunks(boom, [[1]])

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ThreadExecutor(0)


@pytest.mark.slow
class TestProcessExecutor:
    def test_maps_all_chunks(self):
        with ProcessExecutor(2) as ex:
            out = ex.map_chunks(square_chunk, [[1, 2], [3]])
        assert out == [[1, 4], [9]]

    def test_empty_chunk_skipped(self):
        with ProcessExecutor(2) as ex:
            assert ex.map_chunks(square_chunk, [[], [5]]) == [None, [25]]


class TestFactory:
    def test_serial(self):
        assert isinstance(make_executor("serial", 2), SerialExecutor)

    def test_thread(self):
        ex = make_executor("thread", 2)
        try:
            assert isinstance(ex, ThreadExecutor)
        finally:
            ex.close()

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            make_executor("quantum", 2)
