"""Unit tests for :mod:`repro.parallel.executor`."""

from __future__ import annotations

import threading

import pytest

from repro.core.context import SolveContext
from repro.parallel.executor import (
    ProcessExecutor,
    ReusableExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
    shutdown_pools,
)


def square_chunk(chunk):
    return [x * x for x in chunk]


class TestSerialExecutor:
    def test_maps_in_order(self):
        ex = SerialExecutor()
        out = ex.map_chunks(square_chunk, [[1, 2], [3]])
        assert out == [[1, 4], [9]]

    def test_empty_chunks_yield_none(self):
        ex = SerialExecutor()
        assert ex.map_chunks(square_chunk, [[], [2], []]) == [None, [4], None]

    def test_models_worker_count(self):
        assert SerialExecutor(8).num_workers == 8

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            SerialExecutor(0)

    def test_context_manager(self):
        with SerialExecutor() as ex:
            assert ex.map_chunks(square_chunk, [[2]]) == [[4]]


class TestThreadExecutor:
    def test_maps_all_chunks(self):
        with ThreadExecutor(3) as ex:
            out = ex.map_chunks(square_chunk, [[1], [2], [3]])
        assert out == [[1], [4], [9]]

    def test_shared_memory_visible(self):
        """Workers write into one shared structure — the property the
        thread backend of the parallel DP relies on."""
        table = [0] * 10
        def write_chunk(chunk):
            for i in chunk:
                table[i] = i + 100
        with ThreadExecutor(4) as ex:
            ex.map_chunks(write_chunk, [[0, 4, 8], [1, 5, 9], [2, 6], [3, 7]])
        assert table == [100 + i for i in range(10)]

    def test_runs_concurrently_when_gil_released(self):
        """Barrier-style rendezvous proves two chunks are in flight at
        once (threads block in `wait`, releasing the GIL)."""
        barrier = threading.Barrier(2, timeout=5)
        def rendezvous(chunk):
            barrier.wait()
            return chunk
        with ThreadExecutor(2) as ex:
            out = ex.map_chunks(rendezvous, [[1], [2]])
        assert out == [[1], [2]]

    def test_propagates_exceptions(self):
        def boom(chunk):
            raise RuntimeError("kaput")
        with ThreadExecutor(2) as ex:
            with pytest.raises(RuntimeError, match="kaput"):
                ex.map_chunks(boom, [[1]])

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ThreadExecutor(0)


@pytest.mark.slow
class TestProcessExecutor:
    def test_maps_all_chunks(self):
        with ProcessExecutor(2) as ex:
            out = ex.map_chunks(square_chunk, [[1, 2], [3]])
        assert out == [[1, 4], [9]]

    def test_empty_chunk_skipped(self):
        with ProcessExecutor(2) as ex:
            assert ex.map_chunks(square_chunk, [[], [5]]) == [None, [25]]


class TestFactory:
    def test_serial(self):
        assert isinstance(make_executor("serial", 2), SerialExecutor)

    def test_thread(self):
        ex = make_executor("thread", 2)
        try:
            assert isinstance(ex, ThreadExecutor)
        finally:
            ex.close()

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            make_executor("quantum", 2)


class TestReusablePools:
    """Persistent pools (``make_executor(..., reuse=True)``)."""

    def setup_method(self):
        shutdown_pools()

    def teardown_method(self):
        shutdown_pools()

    def test_reuse_returns_wrapper_over_real_pool(self):
        ex = make_executor("thread", 2, reuse=True)
        try:
            assert isinstance(ex, ReusableExecutor)
            assert isinstance(ex.pool, ThreadExecutor)
            assert ex.num_workers == 2
            assert ex.map_chunks(square_chunk, [[2], [3]]) == [[4], [9]]
        finally:
            ex.close()

    def test_pool_identity_survives_release(self):
        """Closing a reusable executor parks the pool; the next acquire of
        the same shape hands back the *same* pool object."""
        first = make_executor("thread", 2, reuse=True)
        inner = first.pool
        first.close()
        second = make_executor("thread", 2, reuse=True)
        try:
            assert second.pool is inner
        finally:
            second.close()

    def test_distinct_shapes_get_distinct_pools(self):
        two = make_executor("thread", 2, reuse=True)
        three = make_executor("thread", 3, reuse=True)
        try:
            assert two.pool is not three.pool
        finally:
            two.close()
            three.close()

    def test_concurrent_acquires_do_not_share(self):
        """Two live executors of the same shape must not share a pool."""
        a = make_executor("thread", 2, reuse=True)
        b = make_executor("thread", 2, reuse=True)
        try:
            assert a.pool is not b.pool
        finally:
            a.close()
            b.close()

    def test_released_executor_rejects_work(self):
        ex = make_executor("thread", 2, reuse=True)
        ex.close()
        with pytest.raises(RuntimeError, match="released"):
            ex.map_chunks(square_chunk, [[1]])

    def test_close_is_idempotent(self):
        ex = make_executor("thread", 2, reuse=True)
        ex.close()
        ex.close()
        assert make_executor("thread", 2, reuse=True).pool is ex.pool

    def test_reuse_rejects_kwargs(self):
        with pytest.raises(TypeError, match="reusable"):
            make_executor("serial", 2, reuse=True, extra=1)

    def test_shutdown_clears_cache(self):
        ex = make_executor("thread", 2, reuse=True)
        inner = ex.pool
        ex.close()
        shutdown_pools()
        fresh = make_executor("thread", 2, reuse=True)
        try:
            assert fresh.pool is not inner
        finally:
            fresh.close()


class TestPtasPoolLifecycle:
    """parallel_ptas must thread ONE pooled executor through every
    bisection probe (the tentpole's cross-probe persistence)."""

    def setup_method(self):
        shutdown_pools()

    def teardown_method(self):
        shutdown_pools()

    def test_thread_backend_single_pool_across_probes(self, monkeypatch):
        import importlib

        from repro.model.instance import Instance

        # repro.core re-exports the ptas *function* under the same name,
        # shadowing the submodule attribute; resolve the module directly.
        ptas_mod = importlib.import_module("repro.core.ptas")

        seen = []
        real_parallel_dp = ptas_mod.parallel_dp

        def spying(problem, num_workers, backend, **kwargs):
            seen.append(kwargs.get("executor"))
            return real_parallel_dp(problem, num_workers, backend, **kwargs)

        monkeypatch.setattr(ptas_mod, "parallel_dp", spying)
        inst = Instance([9, 8, 7, 6, 5, 5, 4, 3, 2, 1], num_machines=3)
        result = ptas_mod.parallel_ptas(
            inst,
            0.3,
            num_workers=2,
            backend="thread",
            ctx=SolveContext(warm_start=False),
        )
        assert result.num_bisection_iterations == len(seen)
        assert len(seen) >= 2  # needs multiple probes to mean anything
        assert all(ex is seen[0] for ex in seen)
        assert isinstance(seen[0], ReusableExecutor)
        # The driver released the pool back to the cache on completion.
        reacquired = make_executor("thread", 2, reuse=True)
        try:
            assert reacquired.pool is seen[0].pool
        finally:
            reacquired.close()


class TestSubmit:
    """The pipelining primitive: ``submit`` on every executor flavor."""

    def test_serial_resolves_inline(self):
        ran = []

        def fn(x):
            ran.append(x)
            return x + 1

        future = SerialExecutor(1).submit(fn, 41)
        assert ran == [41]  # executed eagerly, before result()
        assert future.result() == 42

    def test_serial_exception_deferred_to_result(self):
        future = SerialExecutor(1).submit(lambda _: 1 // 0, None)
        with pytest.raises(ZeroDivisionError):
            future.result()

    def test_thread_returns_real_future(self):
        gate = threading.Event()

        def fn(x):
            gate.wait(timeout=5)
            return x * 2

        with ThreadExecutor(2) as ex:
            future = ex.submit(fn, 21)
            assert not future.done()  # genuinely asynchronous
            gate.set()
            assert future.result(timeout=5) == 42

    def test_reusable_delegates(self):
        ex = make_executor("thread", 2, reuse=True)
        try:
            assert ex.submit(lambda x: x + 1, 1).result() == 2
        finally:
            ex.close()
            shutdown_pools()

    def test_released_reusable_rejects_submit(self):
        ex = make_executor("thread", 2, reuse=True)
        ex.close()
        try:
            with pytest.raises(RuntimeError, match="released"):
                ex.submit(lambda x: x, 0)
        finally:
            shutdown_pools()
