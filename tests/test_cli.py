"""Tests for the command-line interface (:mod:`repro.cli`)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve", "--times", "1,2,3"])
        assert args.algorithm == "parallel-ptas"
        assert args.eps == 0.3


class TestSolve:
    def test_solve_times(self, capsys):
        assert main(["solve", "--times", "5,4,3,3,3", "-m", "2", "-a", "lpt"]) == 0
        out = capsys.readouterr().out
        assert "makespan : 10" in out  # LPT is suboptimal here (OPT = 9)

    def test_solve_family(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--family",
                    "u_10",
                    "-m",
                    "3",
                    "-n",
                    "8",
                    "--seed",
                    "1",
                    "-a",
                    "ptas",
                ]
            )
            == 0
        )
        assert "makespan" in capsys.readouterr().out

    @pytest.mark.parametrize("algo", ["brute", "bnb", "ilp"])
    def test_exact_algorithms(self, capsys, algo):
        assert main(["solve", "--times", "5,4,3,3,3", "-m", "2", "-a", algo]) == 0
        assert "makespan : 9" in capsys.readouterr().out

    @pytest.mark.parametrize("algo", ["ls", "lpt", "multifit", "ptas"])
    def test_heuristics_run(self, capsys, algo):
        assert main(["solve", "--times", "5,4,3,3,3", "-m", "2", "-a", algo]) == 0
        out = capsys.readouterr().out
        makespan = int(out.split("makespan :")[1].splitlines()[0])
        assert 9 <= makespan <= 12  # within the 4/3 envelope of OPT=9

    def test_show_schedule(self, capsys):
        main(["solve", "--times", "2,2", "-m", "2", "-a", "lpt", "--show-schedule"])
        out = capsys.readouterr().out
        assert "machine   0" in out

    def test_missing_instance(self):
        with pytest.raises(SystemExit):
            main(["solve", "-a", "lpt"])

    def test_parallel_ptas_workers(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--times",
                    "9,8,7,6,5",
                    "-m",
                    "2",
                    "-a",
                    "parallel-ptas",
                    "--workers",
                    "3",
                ]
            )
            == 0
        )
        assert "makespan" in capsys.readouterr().out


class TestProblemOption:
    def test_q_solve_with_times_and_speeds(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--problem",
                    "q_cmax",
                    "--engine",
                    "lpt",
                    "--times",
                    "6,4,3,2",
                    "--speeds",
                    "3,1",
                    "--show-schedule",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "problem  : q_cmax" in out
        assert "makespan : 4.0" in out
        assert "verified : ok" in out
        assert "speed   3" in out

    def test_engine_flag_sniffs_registry_names(self, capsys):
        # `--engine lpt` names a registry engine, not a DP engine: the
        # CLI accepts it as the algorithm (the name sets are disjoint).
        assert main(["solve", "--times", "5,4,3,3,3", "-m", "2", "--engine", "lpt"]) == 0
        out = capsys.readouterr().out
        assert "algorithm: lpt" in out

    def test_problem_alias_accepted(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--problem",
                    "uniform",
                    "-a",
                    "ls",
                    "--times",
                    "6,4",
                    "--speeds",
                    "2,1",
                ]
            )
            == 0
        )
        assert "problem  : q_cmax" in capsys.readouterr().out

    def test_q_speed_family_generation(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--problem",
                    "q_cmax",
                    "-a",
                    "lpt",
                    "--family",
                    "u_100",
                    "-m",
                    "4",
                    "-n",
                    "16",
                    "--speed-family",
                    "one_fast",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "speeds=(4, 1, 1, 1)" in out
        assert "verified : ok" in out

    def test_unsupported_pair_exits_2_listing_pairs(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--problem",
                    "q_cmax",
                    "-a",
                    "ptas",
                    "--times",
                    "6,4",
                    "--speeds",
                    "2,1",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "does not support problem 'q_cmax'" in err
        assert "lpt" in err and "ls" in err

    def test_q_without_speeds_exits_with_message(self):
        with pytest.raises(SystemExit, match="--speeds"):
            main(
                [
                    "solve",
                    "--problem",
                    "q_cmax",
                    "-a",
                    "lpt",
                    "--times",
                    "6,4",
                ]
            )

    def test_unknown_problem_rejected(self):
        with pytest.raises(ValueError, match="r_cmax"):
            main(
                [
                    "solve",
                    "--problem",
                    "r_cmax",
                    "-a",
                    "lpt",
                    "--times",
                    "6,4",
                ]
            )


class TestGenerate:
    def test_generate(self, capsys):
        assert main(["generate", "--family", "u_10", "-m", "2", "-n", "5"]) == 0
        out = capsys.readouterr().out.strip()
        times = [int(x) for x in out.split(",")]
        assert len(times) == 5
        assert all(1 <= t <= 10 for t in times)

    def test_generate_deterministic(self, capsys):
        main(["generate", "--family", "u_100", "-n", "6", "--seed", "3"])
        first = capsys.readouterr().out
        main(["generate", "--family", "u_100", "-n", "6", "--seed", "3"])
        assert capsys.readouterr().out == first


class TestTable:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "Table I" in capsys.readouterr().out


class TestFigure1:
    def test_renders_dependency_graph(self, capsys):
        assert main(["figure", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "OPT(2, 3)" in out


class TestIORoundtrips:
    def test_generate_convert_solve_verify(self, capsys, tmp_path):
        txt = tmp_path / "i.txt"
        js = tmp_path / "i.json"
        sched = tmp_path / "s.json"
        assert main(
            ["generate", "--family", "u_10", "-m", "2", "-n", "6",
             "--seed", "3", "--output", str(txt)]
        ) == 0
        assert main(["convert", str(txt), str(js)]) == 0
        assert main(
            ["solve", "--input", str(js), "-a", "lpt", "--gantt",
             "--output", str(sched)]
        ) == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "| load" in out
        assert main(["verify", str(sched)]) == 0
        assert "OK: valid schedule" in capsys.readouterr().out

    def test_verify_rejects_tampered_file(self, capsys, tmp_path):
        import json

        from repro.io.schedules import schedule_to_json
        from repro.model.instance import Instance
        from repro.model.schedule import Schedule

        inst = Instance([3, 2], 2)
        doc = json.loads(schedule_to_json(Schedule(inst, [[0], [1]])))
        doc.pop("makespan")
        doc["assignment"] = [[0, 1], []]
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        # Structural corruption surfaces as a load error here (the
        # Schedule constructor re-validates), which is the right failure.
        assert main(["verify", str(path)]) == 0  # still a *valid* partition
        # Truly broken partition:
        doc["assignment"] = [[0], []]
        path.write_text(json.dumps(doc))
        import pytest as _pytest

        with _pytest.raises(ValueError):
            main(["verify", str(path)])


class TestBenchDP:
    def test_bench_dp(self, capsys):
        assert (
            main(["bench-dp", "--family", "u_10", "-m", "3", "-n", "10"]) == 0
        )
        out = capsys.readouterr().out
        assert "table" in out and "dominance" in out


class TestUnknownEngine:
    def test_solve_unknown_algorithm_exits_nonzero(self, capsys):
        assert main(["solve", "--times", "5,4,3", "-m", "2", "-a", "nosuch"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "nosuch" in err
        assert "ptas" in err  # the message lists the valid names

    def test_solve_unknown_dp_engine_exits_nonzero(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--times",
                    "5,4,3",
                    "-m",
                    "2",
                    "-a",
                    "ptas",
                    "--engine",
                    "bogus",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "bogus" in err
        # The message lists every valid sequential engine name.
        from repro.core.dp import SEQUENTIAL_ENGINES

        for name in SEQUENTIAL_ENGINES:
            assert name in err

    def test_unknown_dp_engine_alias_exits_nonzero(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--times",
                    "5,4,3",
                    "-m",
                    "2",
                    "-a",
                    "ptas",
                    "--dp-engine",
                    "bogus",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "bogus" in err and "dominance" in err

    def test_valid_dp_engine_alias_accepted(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--times",
                    "5,4,3,3,3",
                    "-m",
                    "2",
                    "-a",
                    "ptas",
                    "--dp-engine",
                    "table",
                ]
            )
            == 0
        )
        assert "makespan" in capsys.readouterr().out

    def test_dash_alias_accepted(self, capsys):
        assert (
            main(
                ["solve", "--times", "5,4,3,3,3", "-m", "2", "-a", "parallel-ptas"]
            )
            == 0
        )
        assert "makespan" in capsys.readouterr().out


class TestTraceOption:
    def test_solve_trace_writes_valid_file(self, capsys, tmp_path):
        from repro.obs import load_trace, validate_trace_file

        path = tmp_path / "trace.json"
        assert (
            main(
                [
                    "solve",
                    "--times",
                    "9,8,7,6,5,4,3,3",
                    "-m",
                    "3",
                    "-a",
                    "parallel-ptas",
                    "--backend",
                    "numpy-serial",
                    "--trace",
                    str(path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"trace    : {path}" in out
        # The per-phase summary is printed alongside the result.
        assert "solve" in out and "probe" in out
        # ... and the file round-trips through the schema validator.
        validate_trace_file(path)
        loaded = load_trace(path)
        assert loaded.spans and loaded.spans[0].kind == "solve"
        assert loaded.counters["probes"] >= 1

    def test_untraced_solve_prints_no_trace_line(self, capsys):
        assert main(["solve", "--times", "5,4,3", "-m", "2", "-a", "ptas"]) == 0
        assert "trace    :" not in capsys.readouterr().out


class TestBenchDPCacheLine:
    def test_bench_dp_reports_config_cache(self, capsys):
        assert (
            main(["bench-dp", "--family", "u_10", "-m", "3", "-n", "10"]) == 0
        )
        out = capsys.readouterr().out
        assert "config-cache:" in out
        assert "hits=" in out and "misses=" in out and "currsize=" in out


class TestServeSubmit:
    def test_serve_submit_round_trip(self, capsys):
        import re
        import threading
        import time as _time

        thread = threading.Thread(
            target=main,
            args=(
                [
                    "serve",
                    "--host",
                    "127.0.0.1",
                    "--port",
                    "0",
                    "--workers",
                    "2",
                    "--log-interval",
                    "0",
                ],
            ),
            daemon=True,
        )
        thread.start()
        # The serve thread prints the bound port through the captured
        # stdout; poll until the ready line appears.
        port = None
        buffered = ""
        deadline = _time.monotonic() + 20
        while port is None and _time.monotonic() < deadline:
            buffered += capsys.readouterr().out
            found = re.search(r"listening on 127\.0\.0\.1:(\d+)", buffered)
            if found:
                port = int(found.group(1))
            else:
                _time.sleep(0.05)
        assert port is not None, f"server never became ready: {buffered!r}"
        try:
            assert (
                main(
                    [
                        "submit",
                        "--port",
                        str(port),
                        "--times",
                        "5,4,3,3,3",
                        "-m",
                        "2",
                        "-a",
                        "ptas",
                    ]
                )
                == 0
            )
            out = capsys.readouterr().out
            assert "makespan : " in out
            assert "engine   : ptas" in out

            assert main(["submit", "--port", str(port), "--op", "ping"]) == 0
            assert '"pong"' in capsys.readouterr().out

            # --repeat replays N copies and reports the seed used, so a
            # run over a generated family can be reproduced exactly.
            assert (
                main(
                    [
                        "submit",
                        "--port",
                        str(port),
                        "--times",
                        "5,4,3,3,3",
                        "-m",
                        "2",
                        "-a",
                        "lpt",
                        "--seed",
                        "7",
                        "--repeat",
                        "3",
                    ]
                )
                == 0
            )
            out = capsys.readouterr().out
            assert "requests   : 3/3" in out
            assert "seed       : 7" in out

            assert (
                main(
                    [
                        "submit",
                        "--port",
                        str(port),
                        "--times",
                        "5,4,3",
                        "-m",
                        "2",
                        "-a",
                        "nosuch",
                    ]
                )
                == 2
            )
            assert "nosuch" in capsys.readouterr().err
        finally:
            main(["submit", "--port", str(port), "--op", "shutdown"])
            capsys.readouterr()
            thread.join(timeout=20)
        assert not thread.is_alive()


class TestWorkersAndMode:
    def test_workers_default_is_auto(self):
        args = build_parser().parse_args(["solve", "--times", "1,2,3"])
        assert args.workers == "auto"

    def test_workers_auto_accepted(self):
        args = build_parser().parse_args(
            ["solve", "--times", "1,2,3", "--workers", "auto"]
        )
        assert args.workers == "auto"

    def test_workers_integer_parsed(self):
        args = build_parser().parse_args(
            ["solve", "--times", "1,2,3", "--workers", "4"]
        )
        assert args.workers == 4

    def test_workers_rejects_garbage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["solve", "--times", "1,2,3", "--workers", "lots"]
            )

    def test_mode_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["solve", "--times", "1,2,3", "--mode", "bogus"]
            )

    def test_solve_with_auto_workers_and_speculative_mode(self, capsys):
        assert (
            main(
                [
                    "solve",
                    "--times",
                    "9,8,7,6,5,5,4,3,2,1",
                    "-m",
                    "3",
                    "-a",
                    "parallel-ptas",
                    "--backend",
                    "serial",
                    "--workers",
                    "auto",
                    "--mode",
                    "speculative",
                ]
            )
            == 0
        )
        assert "makespan" in capsys.readouterr().out
