"""The reference transcription of Algorithm 1 versus the modular pipeline.

If these tests fail, either the modular code drifted from the paper or
the transcription has a bug — both worth knowing immediately.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.ptas import ptas
from repro.core.reference import algorithm1
from repro.exact.brute import brute_force
from repro.model.instance import Instance

from conftest import small_instances


class TestReferenceAlgorithm:
    def test_runs_on_fixture(self, small_instance):
        schedule = algorithm1(small_instance, 0.3)
        assert schedule.is_valid()

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            algorithm1(Instance([1], 1), 0.0)

    def test_guarantee(self, small_instance):
        opt = brute_force(small_instance).makespan
        assert algorithm1(small_instance, 0.3).makespan <= 1.3 * opt + 1e-9

    def test_single_machine(self):
        inst = Instance([4, 7, 2], 1)
        assert algorithm1(inst, 0.3).makespan == 13

    def test_k1_degenerates_to_lpt(self):
        from repro.algorithms.lpt import lpt

        inst = Instance([8, 7, 6, 5, 4, 3], 2)
        assert algorithm1(inst, 1.5).makespan == lpt(inst).makespan


class TestAgreementWithModularPipeline:
    @pytest.mark.parametrize(
        "times,m",
        [
            ([9, 8, 7, 6, 5, 5, 4, 3, 2, 1], 3),
            ([10, 10, 9, 9, 8, 8], 2),
            ([13, 11, 7, 5, 3, 2, 2], 4),
            ([20, 1, 1, 1, 1, 1, 1], 2),
            ([6, 6, 6, 6, 6], 5),
            ([17, 13, 11, 9, 8, 7, 5, 4, 3, 2, 2, 1], 3),
        ],
    )
    def test_same_makespan_on_fixed_instances(self, times, m):
        inst = Instance(times, m)
        modular = ptas(inst, 0.3, engine="table", guarantee_fix=False)
        reference = algorithm1(inst, 0.3)
        assert reference.makespan == modular.makespan

    @given(small_instances())
    @settings(max_examples=60)
    def test_property_same_makespan(self, inst):
        """The modular pipeline and the literal transcription agree on
        every randomized small instance (both use first-fit backtracking
        and LPT short fill, so even the schedules coincide)."""
        modular = ptas(inst, 0.3, engine="table", guarantee_fix=False)
        reference = algorithm1(inst, 0.3)
        assert reference.makespan == modular.makespan
        assert reference.canonical() == modular.schedule.canonical()

    @given(small_instances())
    @settings(max_examples=30)
    def test_property_reference_loose_guarantee(self, inst):
        """The printed algorithm's honest bound: per-machine un-rounding
        error is below k * unit <= T/k + k, so the makespan stays within
        (1 + 2/k) T* + k (loose).  The tight (1+eps) bound needs the
        job-cap fix and is tested on the fixed pipeline in test_ptas."""
        opt = brute_force(inst).makespan
        k = 2  # eps = 0.5
        assert algorithm1(inst, 0.5).makespan <= (1 + 2 / k) * opt + k + 1e-9
