"""Tests for the CP-style exact engine (``repro.exact.cp``).

The engine exists to give the :mod:`repro.qa` differential fuzzer an
exact reference that shares no search order, bound library, or incumbent
with ``bnb``/``ilp``/``brute`` — so the tests here pin exactly that:
agreement with the other exact engines on the golden grid, registry
capabilities, and graceful budget exhaustion.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.exact import brute_force, cp_solve, solve_exact
from repro.exact.cp import CPResult, cp_feasible
from repro.experiments.golden import GOLDEN_GRID
from repro.model.instance import Instance
from repro.model.problem import P_CMAX
from repro.model.verify import verify_schedule
from repro.service.registry import get_engine
from repro.workloads.generator import make_instance

from conftest import small_instances


class TestCPSolve:
    def test_single_machine(self):
        res = cp_solve(Instance([3, 1, 4], 1))
        assert res.makespan == 8
        assert res.optimal

    def test_single_job(self):
        res = cp_solve(Instance([7], 3))
        assert res.makespan == 7
        assert res.optimal

    def test_perfect_split(self):
        res = cp_solve(Instance([4, 4, 4, 4, 4, 4], 3))
        assert res.makespan == 8
        assert res.optimal

    def test_classic_lpt_trap(self):
        # LPT gives 7 on this instance; the optimum is 6 — the shape the
        # qa acceptance test's off-by-one scratch engine gets wrong.
        res = cp_solve(Instance([3, 3, 2, 2, 2], 2))
        assert res.makespan == 6
        assert res.optimal

    def test_schedule_verifies(self):
        inst = Instance([9, 8, 7, 6, 5, 5, 4, 3, 2, 1], 3)
        res = cp_solve(inst)
        report = verify_schedule(res.schedule, inst)
        assert report.ok, report.violations

    @given(small_instances())
    @settings(max_examples=80)
    def test_matches_brute_force(self, inst):
        assert cp_solve(inst).makespan == brute_force(inst).makespan

    def test_golden_grid_agreement(self):
        # The acceptance bar: cp matches every other exact engine on the
        # golden probe grid.
        for kind, m, n, seed in GOLDEN_GRID:
            inst = make_instance(kind, m, n, seed)
            cp = cp_solve(inst)
            assert cp.optimal
            for method in ("ilp", "bnb", "brute"):
                other = solve_exact(inst, method=method)
                assert cp.makespan == other.schedule.makespan, (
                    kind, m, n, seed, method,
                )

    def test_budget_exhaustion_returns_incumbent(self):
        inst = make_instance("u_100", 4, 14, 9)
        res = cp_solve(inst, node_budget=3)
        assert isinstance(res, CPResult)
        assert not res.optimal
        assert verify_schedule(res.schedule, inst).ok
        # The incumbent is a real schedule, so it is at least the LB.
        assert res.makespan >= inst.trivial_lower_bound()


class TestCPFeasible:
    def test_infeasible_below_lb(self):
        inst = Instance([5, 5], 2)
        assert cp_feasible(inst, 4) is None
        assert cp_feasible(inst, 5) is not None

    def test_feasible_at_total_work(self):
        inst = Instance([2, 3, 4], 1)
        assert cp_feasible(inst, 9) is not None
        assert cp_feasible(inst, 8) is None


class TestRegistration:
    def test_cp_is_registered_exact_p_only(self):
        spec = get_engine("cp")
        assert spec.exact
        assert spec.problems == (P_CMAX,)
        assert spec.guarantee is not None

    def test_solve_exact_dispatch(self):
        inst = Instance([3, 3, 2, 2, 2], 2)
        res = solve_exact(inst, method="cp")
        assert res.method == "cp"
        assert res.schedule.makespan == 6

    def test_unknown_method_lists_sorted_names(self):
        with pytest.raises(ValueError, match=r"\['bnb', 'brute', 'cp', 'ilp'\]"):
            solve_exact(Instance([1], 1), method="nope")
