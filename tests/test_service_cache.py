"""Tests for the canonical-form result cache (:mod:`repro.service.cache`)."""

from __future__ import annotations

import random

from repro.model.verify import verify_schedule
from repro.service.cache import ResultCache, canonical_key
from repro.service.requests import SolveRequest, SolveResult


def _request(times, machines=3, engine="ptas", eps=0.3, request_id=""):
    return SolveRequest(
        times=tuple(times),
        machines=machines,
        engine=engine,
        eps=eps,
        request_id=request_id,
    )


def _ok_result(request: SolveRequest, assignment) -> SolveResult:
    from repro.model.schedule import Schedule

    sched = Schedule(request.instance(), assignment)
    return SolveResult(
        request_id=request.request_id,
        status="ok",
        engine=request.engine,
        makespan=sched.makespan,
        assignment=sched.assignment,
        guarantee=1.3,
    )


class TestCanonicalKey:
    def test_permutation_invariant(self):
        a = _request([5, 9, 2, 2, 7])
        b = _request([2, 7, 9, 2, 5])
        assert canonical_key(a) == canonical_key(b)

    def test_engine_and_eps_and_m_distinguish(self):
        base = _request([5, 9, 2])
        assert canonical_key(base) != canonical_key(_request([5, 9, 2], machines=4))
        assert canonical_key(base) != canonical_key(_request([5, 9, 2], engine="lpt"))
        assert canonical_key(base) != canonical_key(_request([5, 9, 2], eps=0.1))

    def test_dash_engine_aliases_share_key(self):
        assert canonical_key(_request([1, 2], engine="parallel-ptas")) == canonical_key(
            _request([1, 2], engine="parallel_ptas")
        )


class TestPermutedHits:
    def test_permuted_instance_hits_and_remaps(self):
        cache = ResultCache()
        req = _request([7, 3, 5, 5, 2, 8], machines=2, request_id="orig")
        # loads: 7+3+5 = 15 and 5+2+8 = 15 — makespan 15.
        assert cache.put(req, _ok_result(req, [(0, 1, 2), (3, 4, 5)]))

        rng = random.Random(0)
        times = list(req.times)
        for trial in range(10):
            rng.shuffle(times)
            permuted = _request(times, machines=2, request_id=f"p{trial}")
            hit = cache.get(permuted)
            assert hit is not None
            assert hit.cached
            assert hit.request_id == f"p{trial}"
            # The remapped assignment must be a valid schedule of the
            # *permuted* instance with the original makespan.
            sched = hit.schedule(permuted.instance())
            assert verify_schedule(sched, permuted.instance()).ok
            assert sched.makespan == hit.makespan == 15
        assert cache.hits == 10
        assert cache.misses == 0

    def test_duplicate_times_remap_is_a_bijection(self):
        cache = ResultCache()
        req = _request([4, 4, 4, 1, 1], machines=2, request_id="a")
        cache.put(req, _ok_result(req, [(0, 3), (1, 2, 4)]))
        hit = cache.get(_request([1, 4, 1, 4, 4], machines=2, request_id="b"))
        assert hit is not None
        sched = hit.schedule(_request([1, 4, 1, 4, 4], machines=2).instance())
        assert sorted(j for grp in sched.assignment for j in grp) == [0, 1, 2, 3, 4]
        assert sched.makespan == hit.makespan

    def test_miss_on_different_multiset(self):
        cache = ResultCache()
        req = _request([5, 5, 5])
        cache.put(req, _ok_result(req, [(0,), (1,), (2,)]))
        assert cache.get(_request([5, 5, 6])) is None
        assert cache.misses == 1


def _q_request(times, speeds, engine="lpt", eps=0.3, request_id=""):
    return SolveRequest(
        times=tuple(times),
        machines=len(speeds),
        problem="q_cmax",
        speeds=tuple(speeds),
        engine=engine,
        eps=eps,
        request_id=request_id,
    )


def _q_ok_result(request: SolveRequest, assignment) -> SolveResult:
    from repro.model.qinstance import QSchedule

    sched = QSchedule(request.instance(), assignment)
    return SolveResult(
        request_id=request.request_id,
        status="ok",
        engine=request.engine,
        makespan=sched.makespan,
        assignment=sched.assignment,
        guarantee=1.75,
    )


class TestQProblemKeys:
    def test_speed_multiset_joins_the_key(self):
        a = _q_request([5, 4], (2, 1))
        assert canonical_key(a) == canonical_key(_q_request([4, 5], (1, 2)))
        assert canonical_key(a) != canonical_key(_q_request([5, 4], (3, 1)))
        assert canonical_key(a) != canonical_key(_q_request([5, 4], (2, 2)))

    def test_unit_speeds_normalize_into_p_namespace(self):
        q = _q_request([5, 4, 3], (1, 1, 1), engine="lpt")
        p = _request([5, 4, 3], machines=3, engine="lpt")
        assert canonical_key(q) == canonical_key(p)

    def test_unit_speed_q_hits_a_p_entry_and_back(self):
        cache = ResultCache()
        p = _request([7, 3, 5], machines=2, engine="lpt", request_id="p")
        assert cache.put(p, _ok_result(p, [(0,), (1, 2)]))
        hit = cache.get(_q_request([7, 3, 5], (1, 1), request_id="q"))
        assert hit is not None and hit.cached
        sched = hit.schedule(_q_request([7, 3, 5], (1, 1)).instance())
        assert verify_schedule(sched).ok
        assert sched.makespan == 8.0

    def test_permuted_q_instance_hits_and_remaps(self):
        cache = ResultCache()
        req = _q_request([6, 4, 3, 2], (3, 1), request_id="orig")
        assert cache.put(req, _q_ok_result(req, [(0, 1, 3), (2,)]))
        # Permute times AND machine order (speeds travel with machines).
        permuted = _q_request([2, 3, 4, 6], (1, 3), request_id="twin")
        hit = cache.get(permuted)
        assert hit is not None and hit.cached
        inst = permuted.instance()
        sched = hit.schedule(inst)
        assert verify_schedule(sched, inst).ok
        assert sched.makespan == hit.makespan == 4.0

    def test_miss_on_different_speed_multiset(self):
        cache = ResultCache()
        req = _q_request([6, 4], (2, 1))
        cache.put(req, _q_ok_result(req, [(0,), (1,)]))
        assert cache.get(_q_request([6, 4], (4, 1))) is None


class TestBoundsAndPolicies:
    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        reqs = [_request([i + 1], machines=1) for i in range(3)]
        for r in reqs:
            cache.put(r, _ok_result(r, [(0,)]))
        assert cache.get(reqs[0]) is None  # oldest evicted
        assert cache.get(reqs[1]) is not None
        assert cache.get(reqs[2]) is not None
        assert cache.evictions == 1

    def test_get_refreshes_lru_order(self):
        cache = ResultCache(max_entries=2)
        a, b, c = (_request([i + 1], machines=1) for i in range(3))
        cache.put(a, _ok_result(a, [(0,)]))
        cache.put(b, _ok_result(b, [(0,)]))
        cache.get(a)  # a becomes most-recent
        cache.put(c, _ok_result(c, [(0,)]))
        assert cache.get(b) is None
        assert cache.get(a) is not None

    def test_ttl_expiry_with_frozen_clock(self):
        now = [0.0]
        cache = ResultCache(ttl=10.0, clock=lambda: now[0])
        req = _request([3, 2, 1])
        cache.put(req, _ok_result(req, [(0,), (1,), (2,)]))
        now[0] = 9.0
        assert cache.get(req) is not None
        now[0] = 10.5
        assert cache.get(req) is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_degraded_and_failed_results_not_cached(self):
        cache = ResultCache()
        req = _request([3, 2, 1])
        ok = _ok_result(req, [(0,), (1,), (2,)])
        from dataclasses import replace

        assert not cache.put(req, replace(ok, degraded=True))
        assert not cache.put(req, SolveResult(status="rejected"))
        assert not cache.put(req, SolveResult(status="error", error="x"))
        assert len(cache) == 0

    def test_zero_capacity_disables(self):
        cache = ResultCache(max_entries=0)
        req = _request([1, 2])
        assert not cache.put(req, _ok_result(req, [(0, 1), (), ()]))
        assert cache.get(req) is None

    def test_stats_shape(self):
        cache = ResultCache(max_entries=8)
        stats = cache.stats()
        assert stats == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "expirations": 0,
            "currsize": 0,
            "maxsize": 8,
        }


class TestCanonicalProblemKey:
    """Direct pins on the unit-speed normalization rule: exactly the
    all-speeds-1 vector folds into the ``p_cmax`` namespace; any other
    vector — including uniform speeds > 1, which rescale completion
    times — keeps its own ``q_cmax`` namespace."""

    def test_unit_speeds_fold_to_p(self):
        from repro.service.cache import canonical_problem_key

        problem, speeds = canonical_problem_key(
            _q_request([5, 4, 3], (1, 1, 1))
        )
        assert problem == "p_cmax"
        assert speeds == ()

    def test_p_request_is_already_canonical(self):
        from repro.service.cache import canonical_problem_key

        assert canonical_problem_key(_request([5, 4, 3])) == ("p_cmax", ())

    def test_uniform_fast_speeds_do_not_fold(self):
        from repro.service.cache import canonical_problem_key

        problem, speeds = canonical_problem_key(
            _q_request([5, 4, 3], (2, 2, 2))
        )
        assert problem == "q_cmax"
        assert speeds == (2, 2, 2)

    def test_speed_vector_is_sorted_in_key(self):
        from repro.service.cache import canonical_problem_key

        _, speeds = canonical_problem_key(_q_request([5, 4], (3, 1)))
        assert speeds == (1, 3)

    def test_unit_fold_matches_lifted_instance_key(self):
        # The fold is exactly QInstance.from_identical's inverse at the
        # key level: P request and its unit-speed lift share identity.
        p = _request([7, 3, 5], machines=2, engine="lpt")
        q = _q_request([7, 3, 5], (1, 1))
        assert canonical_key(p) == canonical_key(q)
