"""Tests for Sahni's fixed-m algorithms (:mod:`repro.exact.sahni`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.exact.brute import brute_force
from repro.exact.sahni import exact_dp, sahni_fptas
from repro.model.instance import Instance

from conftest import small_instances


class TestExactDP:
    def test_matches_brute(self):
        inst = Instance([9, 7, 6, 5, 4, 3, 2], 3)
        res = exact_dp(inst)
        assert res.exact
        assert res.makespan == brute_force(inst).makespan
        assert res.schedule.is_valid()
        assert res.schedule.makespan == res.makespan

    def test_single_machine(self):
        inst = Instance([3, 4, 5], 1)
        assert exact_dp(inst).makespan == 12

    def test_two_machines_perfect_split(self):
        inst = Instance([5, 4, 3, 3, 3], 2)
        assert exact_dp(inst).makespan == 9

    def test_state_cap(self):
        inst = Instance([1000] * 10, 5)
        with pytest.raises(ValueError, match="state space"):
            exact_dp(inst, max_states=100)

    def test_handles_more_jobs_than_brute(self):
        """The DP scales to job counts brute force cannot touch when
        processing times are small."""
        inst = Instance([3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4, 6, 2, 6, 4], 3)
        res = exact_dp(inst)
        from repro.exact.branch_and_bound import branch_and_bound

        reference = branch_and_bound(inst)
        assert reference.optimal
        assert res.makespan == reference.makespan
        assert res.schedule.is_valid()

    @given(small_instances(max_jobs=8, max_machines=3, max_time=12))
    @settings(max_examples=40)
    def test_property_matches_brute(self, inst: Instance):
        assert exact_dp(inst).makespan == brute_force(inst).makespan


class TestFPTAS:
    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            sahni_fptas(Instance([1], 1), 0.0)

    def test_guarantee_on_fixed_instances(self):
        for times, m in [
            ([9, 8, 7, 6, 5, 5, 4, 3, 2, 1], 3),
            ([13, 11, 7, 5, 3, 2, 2], 4),
            ([20, 1, 1, 1, 1, 1, 1], 2),
        ]:
            inst = Instance(times, m)
            opt = brute_force(inst).makespan
            for eps in (0.1, 0.3):
                res = sahni_fptas(inst, eps)
                assert res.schedule.is_valid()
                assert res.makespan <= (1 + eps) * opt + 1e-9

    @given(small_instances(max_jobs=8, max_machines=3, max_time=15))
    @settings(max_examples=30)
    def test_property_guarantee(self, inst: Instance):
        opt = brute_force(inst).makespan
        res = sahni_fptas(inst, 0.25)
        assert res.makespan <= 1.25 * opt + 1e-9

    def test_smaller_eps_not_worse_typically(self):
        inst = Instance([17, 13, 11, 9, 8, 7, 5, 4], 3)
        opt = brute_force(inst).makespan
        coarse = sahni_fptas(inst, 0.5).makespan
        fine = sahni_fptas(inst, 0.05).makespan
        assert fine <= coarse
        assert fine <= 1.05 * opt + 1e-9
