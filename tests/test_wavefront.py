"""Unit tests for the generic wavefront driver."""

from __future__ import annotations

from repro.parallel.executor import SerialExecutor, ThreadExecutor
from repro.parallel.wavefront import run_wavefront


def test_runs_levels_in_order():
    seen: list[int] = []

    def worker(chunk):
        seen.extend(chunk)

    levels = [[1], [2, 3], [4, 5, 6]]
    run = run_wavefront(levels, worker)
    assert seen == [1, 2, 3, 4, 5, 6]
    assert run.num_levels == 3
    assert run.total_items == 6
    assert run.level_sizes == [1, 2, 3]
    assert run.max_level_size == 3


def test_barrier_between_levels():
    """A toy triangular recurrence: every level-l value depends on all
    level-(l-1) values.  Any barrier violation corrupts the sums."""
    table = {0: {0: 1}}

    def worker(chunk):
        for level, i in chunk:
            table.setdefault(level, {})[i] = sum(table[level - 1].values())

    levels = [[(l, i) for i in range(l + 1)] for l in range(1, 6)]
    with ThreadExecutor(4) as ex:
        run_wavefront(levels, worker, ex)
    # Level l has l+1 entries, each equal to the sum of level l-1:
    # sums follow s_l = (l) * s_{l-1} ... check explicitly.
    expected_value = 1
    for l in range(1, 6):
        expected_value = expected_value * l  # l entries of previous level
        assert all(v == expected_value for v in table[l].values())


def test_observer_called_per_level():
    calls: list[tuple[int, int]] = []

    def observer(level, items, results):
        calls.append((level, len(items)))

    run_wavefront([[1], [], [2, 3]], lambda c: None, observer=observer)
    assert calls == [(0, 1), (1, 0), (2, 2)]


def test_empty_levels_ok():
    run = run_wavefront([[], [], []], lambda c: None)
    assert run.num_levels == 3
    assert run.total_items == 0


def test_default_executor_is_serial():
    out: list[int] = []
    run_wavefront([[1, 2]], lambda c: out.extend(c))
    assert out == [1, 2]


def test_respects_executor_worker_count():
    """With P modelled workers, each level is split into P chunks."""
    chunk_sizes: list[int] = []

    def worker(chunk):
        chunk_sizes.append(len(chunk))

    run_wavefront([[1, 2, 3, 4, 5]], worker, SerialExecutor(2))
    # Round-robin of 5 items over 2 workers: chunks of 3 and 2.
    assert sorted(chunk_sizes) == [2, 3]
