"""Tests for the DP dependency graph (:mod:`repro.core.depgraph`) —
the computable version of the paper's Figure 1."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.depgraph import (
    build_dependency_graph,
    critical_path_length,
    is_valid_wavefront,
    render_figure1,
    topological_levels,
)
from repro.core.dp import DPProblem
from repro.core.parallel_dp import build_level_index

from conftest import dp_problems


class TestPaperExample:
    def test_graph_size(self, paper_example_problem):
        graph = build_dependency_graph(paper_example_problem)
        assert graph.number_of_nodes() == 12

    def test_paper_dependency_lists(self, paper_example_problem):
        """Eq. 11 of the paper: the dependencies of the level-2 states."""
        graph = build_dependency_graph(paper_example_problem)
        assert set(graph.successors((2, 0))) == {(1, 0), (0, 0)}
        assert set(graph.successors((1, 1))) == {(1, 0), (0, 1), (0, 0)}
        assert set(graph.successors((0, 2))) == {(0, 1), (0, 0)}

    def test_valid_wavefront(self, paper_example_problem):
        assert is_valid_wavefront(build_dependency_graph(paper_example_problem))

    def test_levels_match_anti_diagonals(self, paper_example_problem):
        graph = build_dependency_graph(paper_example_problem)
        levels = topological_levels(graph)
        assert [len(lv) for lv in levels] == [1, 2, 3, 3, 2, 1]
        for l, states in enumerate(levels):
            assert all(sum(v) == l for v in states)

    def test_critical_path(self, paper_example_problem):
        graph = build_dependency_graph(paper_example_problem)
        assert critical_path_length(graph) == 6  # n' + 1

    def test_render(self, paper_example_problem):
        out = render_figure1(paper_example_problem)
        assert "Level 0" in out and "Level 5" in out
        assert "OPT(2, 3)" in out
        assert "q_2 = 3" in out

    def test_render_caps_size(self):
        big = DPProblem((2,), (200,), 10)
        with pytest.raises(ValueError, match="capped"):
            render_figure1(big, max_states=64)


@given(dp_problems(max_classes=2, max_count=3, max_size=8))
@settings(max_examples=30)
def test_property_generations_equal_level_index(problem: DPProblem):
    """networkx's topological generations coincide with the anti-diagonal
    grouping the parallel DP computes arithmetically."""
    if not problem.counts or problem.table_size > 200:
        return
    graph = build_dependency_graph(problem)
    assert is_valid_wavefront(graph)
    generations = topological_levels(graph)
    index = build_level_index(problem)
    from repro.core.dp import unrank

    strides = problem.strides()
    expected = [
        {unrank(flat, problem.dims, strides) for flat in level}
        for level in index.levels
    ]
    assert generations == expected
    assert critical_path_length(graph) == problem.num_long_jobs + 1
