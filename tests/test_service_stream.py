"""Tests for the ``op=stream`` wire protocol and per-tenant sessions.

Covers the wire types (:class:`StreamRequest` / :class:`StreamResult`),
the :class:`repro.online.session.SessionManager` both services embed,
tenant-to-shard routing, the single-process server end to end over real
sockets, and the sharded pool end to end (slow-marked, like the other
pool tests).
"""

from __future__ import annotations

import asyncio
import math

import pytest

from repro.model.verify import verify_schedule
from repro.online import LiveSchedule, StreamEvent
from repro.online.session import SessionManager, snapshot_name
from repro.service.requests import StreamRequest, StreamResult
from repro.service.server import SolveService, start_server, stream_events
from repro.service.sharding import tenant_shard
from repro.service.supervisor import PooledSolveService
from repro.store import ResultStore


def run(coro):
    return asyncio.run(coro)


def _open(tenant, machines=2, **kwargs) -> StreamRequest:
    return StreamRequest(
        action="open_session", tenant=tenant, machines=machines, **kwargs
    )


def _add(tenant, jobs, **kwargs) -> StreamRequest:
    return StreamRequest(
        action="add_jobs", tenant=tenant, jobs=tuple(jobs), **kwargs
    )


class TestStreamWire:
    def test_request_round_trips_through_json(self):
        req = StreamRequest(
            action="add_jobs",
            tenant="acme",
            jobs=(("a", 3), ("b", 7)),
            request_id="r1",
        )
        decoded = StreamRequest.from_json(req.to_json())
        assert decoded == req
        assert req.to_dict()["op"] == "stream"

    def test_request_validation(self):
        with pytest.raises(ValueError, match="action"):
            StreamRequest(action="explode", tenant="t")
        with pytest.raises(ValueError, match="tenant"):
            StreamRequest(action="close", tenant="")
        with pytest.raises(ValueError, match=">= 1"):
            _add("t", [("a", 0)])
        with pytest.raises(ValueError, match="machines"):
            StreamRequest(action="open_session", tenant="t", machines=0)
        with pytest.raises(ValueError, match="drift_threshold"):
            _open("t", drift_threshold=0.5)

    def test_numeric_fields_are_coerced_not_trusted(self):
        # JSON clients send floats/strings; they must become real ints
        # (or clean ValueErrors) at the wire boundary, never TypeErrors
        # deep inside LiveSchedule.
        assert _open("t", machines=4.0).machines == 4
        assert _open("t", machines="4").machines == 4
        assert isinstance(_open("t", machines=4.0).machines, int)
        with pytest.raises(ValueError, match="machines"):
            _open("t", machines=4.5)
        with pytest.raises(ValueError, match="machines"):
            _open("t", machines="four")
        with pytest.raises(ValueError, match="machines"):
            _open("t", machines=None)
        assert _open("t", eps="0.25").eps == pytest.approx(0.25)
        with pytest.raises(ValueError, match="eps"):
            _open("t", eps="tiny")
        assert _open("t", drift_threshold="1.5").drift_threshold == 1.5
        with pytest.raises(ValueError, match="drift_threshold"):
            _open("t", drift_threshold="lots")
        with pytest.raises(ValueError, match="jobs"):
            _add("t", [("a", ["not", "a", "time"])])

    def test_from_dict_is_strict(self):
        with pytest.raises(ValueError, match="missing"):
            StreamRequest.from_dict({"op": "stream", "action": "close"})
        with pytest.raises(ValueError, match="unknown stream request field"):
            StreamRequest.from_dict(
                {"op": "stream", "action": "close", "tenant": "t", "wat": 1}
            )
        with pytest.raises(ValueError, match="op="):
            StreamRequest.from_dict(
                {"op": "solve", "action": "close", "tenant": "t"}
            )

    def test_result_round_trips_through_json(self):
        res = StreamResult(
            request_id="r1",
            tenant="acme",
            action="snapshot",
            makespan=12,
            ratio=1.05,
            resolves=2,
            repairs=9,
            num_jobs=4,
            snapshot={"version": 1},
        )
        decoded = StreamResult.from_json(res.to_json())
        assert decoded == res and decoded.ok

    def test_stream_event_converts_to_requests(self):
        add = StreamEvent(kind="add", jobs=(("a", 4),))
        req = add.to_stream_request("t7")
        assert req.action == "add_jobs" and req.jobs == (("a", 4),)
        rem = StreamEvent(kind="remove", job_ids=("a",))
        assert rem.to_stream_request("t7").action == "remove_jobs"


class TestTenantShard:
    def test_deterministic_and_in_range(self):
        for tenant in ("acme", "zebra", "tenant-42", "日本語"):
            shard = tenant_shard(tenant, 4)
            assert shard == tenant_shard(tenant, 4)
            assert 0 <= shard < 4
        assert tenant_shard("anything", 1) == 0

    def test_spreads_tenants(self):
        shards = {tenant_shard(f"tenant-{i}", 8) for i in range(64)}
        assert len(shards) > 4  # sha256 spreads well past half the shards

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            tenant_shard("t", 0)
        with pytest.raises(ValueError):
            tenant_shard("", 4)


class TestSessionManager:
    def test_session_lifecycle(self):
        mgr = SessionManager()
        opened = mgr.apply(_open("t", machines=2))
        assert opened.ok and not opened.restored and mgr.num_sessions == 1
        added = mgr.apply(_add("t", [("a", 5), ("b", 9), ("c", 7)]))
        assert added.ok and added.num_jobs == 3 and added.makespan == 12
        removed = mgr.apply(
            StreamRequest(action="remove_jobs", tenant="t", job_ids=("a",))
        )
        assert removed.ok and removed.num_jobs == 2
        snap = mgr.apply(StreamRequest(action="snapshot", tenant="t"))
        assert snap.ok and snap.snapshot is not None
        restored = LiveSchedule.restore(snap.snapshot)
        assert verify_schedule(restored.schedule()).ok
        closed = mgr.apply(StreamRequest(action="close", tenant="t"))
        assert closed.ok and mgr.num_sessions == 0

    def test_event_errors_do_not_kill_the_session(self):
        mgr = SessionManager()
        mgr.apply(_open("t"))
        mgr.apply(_add("t", [("a", 5)]))
        dup = mgr.apply(_add("t", [("a", 5)]))
        assert not dup.ok and "already" in (dup.error or "")
        ghost = mgr.apply(
            StreamRequest(action="remove_jobs", tenant="t", job_ids=("zz",))
        )
        assert not ghost.ok
        orphan = mgr.apply(_add("other", [("x", 1)]))
        assert not orphan.ok and "no open session" in (orphan.error or "")
        batch_dup = mgr.apply(_add("t", [("b", 5), ("b", 3)]))
        assert not batch_dup.ok and "duplicated" in (batch_dup.error or "")
        remove_dup = mgr.apply(
            StreamRequest(action="remove_jobs", tenant="t", job_ids=("a", "a"))
        )
        assert not remove_dup.ok and "duplicated" in (remove_dup.error or "")
        still = mgr.apply(StreamRequest(action="snapshot", tenant="t"))
        assert still.ok and still.num_jobs == 1

    def test_apply_contains_arbitrary_event_exceptions(self, monkeypatch):
        # apply is the wire boundary both services and every pool worker
        # stand behind: nothing an event provokes may escape it, or one
        # malformed line kills a worker and every session on its shard.
        mgr = SessionManager()
        mgr.apply(_open("t"))
        mgr.apply(_add("t", [("a", 5)]))
        monkeypatch.setattr(
            LiveSchedule,
            "add_jobs",
            lambda self, jobs: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        hurt = mgr.apply(_add("t", [("b", 3)]))
        assert not hurt.ok and "RuntimeError: boom" in (hurt.error or "")
        monkeypatch.undo()
        still = mgr.apply(StreamRequest(action="snapshot", tenant="t"))
        assert still.ok and still.num_jobs == 1

    def test_independent_tenants_do_not_serialize_behind_one_lock(self):
        # One tenant's slow event (think: drift-triggered re-solve) must
        # not block another tenant's stream — only the session table
        # lock is shared, and it is never held across an event.
        import threading
        import time as time_mod

        mgr = SessionManager()
        mgr.apply(_open("slow"))
        mgr.apply(_open("fast"))
        slow_live = mgr.get("slow")
        started = threading.Event()
        original = LiveSchedule.add_jobs

        def stalled_add(self, jobs):
            if self is slow_live:
                started.set()
                time_mod.sleep(0.5)
            return original(self, jobs)

        LiveSchedule.add_jobs = stalled_add
        try:
            slow_thread = threading.Thread(
                target=mgr.apply, args=(_add("slow", [("s", 5)]),)
            )
            slow_thread.start()
            assert started.wait(5.0)
            t0 = time_mod.monotonic()
            fast = mgr.apply(_add("fast", [("f", 3)]))
            elapsed = time_mod.monotonic() - t0
            slow_thread.join(5.0)
        finally:
            LiveSchedule.add_jobs = original
        assert fast.ok and fast.num_jobs == 1
        assert elapsed < 0.4  # did not wait out the slow tenant's event
        assert mgr.get("slow").num_jobs == 1

    def test_close_retires_tenant_gauges(self):
        from repro.service.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        mgr = SessionManager(metrics=metrics)
        mgr.apply(_open("t"))
        mgr.apply(_add("t", [("a", 5)]))
        assert any(
            name.startswith("tenant.t.")
            for name in metrics.snapshot()["gauges"]
        )
        mgr.apply(StreamRequest(action="close", tenant="t"))
        assert not any(
            name.startswith("tenant.t.")
            for name in metrics.snapshot()["gauges"]
        )

    def test_open_is_idempotent(self):
        mgr = SessionManager()
        mgr.apply(_open("t"))
        mgr.apply(_add("t", [("a", 5)]))
        again = mgr.apply(_open("t"))
        assert again.ok and again.num_jobs == 1

    def test_durable_snapshot_restores_across_managers(self, tmp_path):
        with ResultStore(tmp_path) as store:
            first = SessionManager(store=store)
            first.apply(_open("t", machines=3))
            first.apply(_add("t", [(f"j{i}", 2 + i) for i in range(6)]))
            closed = first.apply(StreamRequest(action="close", tenant="t"))
            assert closed.ok
            assert snapshot_name("t") in store.trace_names()
            # A fresh manager (fresh process, same store) restores it.
            second = SessionManager(store=store)
            reopened = second.apply(_open("t", machines=3))
            assert reopened.ok and reopened.restored
            assert reopened.num_jobs == 6
            assert reopened.makespan == closed.makespan
            live = second.get("t")
            assert verify_schedule(live.schedule()).ok

    def test_close_without_persist_leaves_no_snapshot(self, tmp_path):
        with ResultStore(tmp_path) as store:
            mgr = SessionManager(store=store)
            mgr.apply(_open("t", persist=False))
            mgr.apply(_add("t", [("a", 5)], persist=False))
            mgr.apply(
                StreamRequest(action="close", tenant="t", persist=False)
            )
            assert snapshot_name("t") not in store.trace_names()


class TestServerStream:
    def test_streamed_session_over_sockets(self):
        async def scenario():
            svc = SolveService(batch_window=0.0)
            server = await start_server(svc, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                requests = [
                    _open("acme", machines=2, eps=0.2),
                    _add("acme", [("a", 5)], request_id="e1"),
                    _add("acme", [("b", 5)], request_id="e2"),
                    _add("acme", [("c", 5)], request_id="e3"),
                    _add("acme", [("a", 1)], request_id="dup"),
                    StreamRequest(action="snapshot", tenant="acme"),
                    StreamRequest(action="close", tenant="acme"),
                ]
                results = await stream_events("127.0.0.1", port, requests)
                stats = svc.stats()
            finally:
                server.close()
                await server.wait_closed()
                await svc.aclose()
            return results, stats

        results, stats = run(scenario())
        opened, e1, e2, e3, dup, snap, closed = results
        assert opened.ok and e1.ok and e2.ok and e3.ok
        # Three equal jobs on two machines drift past 1.2 → a re-solve
        # fired inside the third event, so the session stays certified.
        assert e3.resolves >= 1 and e3.ratio <= 1.2 + 1e-6
        assert not dup.ok and "already" in (dup.error or "")
        assert snap.ok and snap.snapshot is not None
        restored = LiveSchedule.restore(snap.snapshot)
        assert verify_schedule(restored.schedule()).ok
        assert closed.ok
        assert stats["counters"]["stream_events_total"] == 7
        assert stats["counters"]["stream_errors"] == 1
        assert stats["gauges"]["stream_sessions"] == 0.0

    def test_malformed_stream_request_is_clean_error(self):
        async def scenario():
            svc = SolveService(batch_window=0.0)
            server = await start_server(svc, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(b'{"op":"stream","action":"warp"}\n')
                await writer.drain()
                line = await reader.readline()
                writer.close()
                await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()
                await svc.aclose()
            return StreamResult.from_json(line.decode())

        result = run(scenario())
        assert not result.ok and result.error

    def test_unparseable_stream_payloads_keep_connection_alive(self):
        # Payload shapes that used to raise TypeError past the old
        # ValueError-only guard (e.g. jobs=42 makes from_dict iterate an
        # int) must come back as error results on a live connection.
        async def scenario():
            svc = SolveService(batch_window=0.0)
            server = await start_server(svc, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                bad_lines = [
                    b'{"op":"stream","action":"add_jobs","tenant":"t","jobs":42}\n',
                    b'{"op":"stream","action":"open_session","tenant":"t","machines":"four"}\n',
                    b'{"op":"stream","action":"open_session","tenant":"t","machines":4.5}\n',
                ]
                errors = []
                for line in bad_lines:
                    writer.write(line)
                    await writer.drain()
                    errors.append(
                        StreamResult.from_json((await reader.readline()).decode())
                    )
                # The same connection still serves a well-formed session.
                writer.write(_open("t", machines=2).to_json().encode() + b"\n")
                await writer.drain()
                opened = StreamResult.from_json(
                    (await reader.readline()).decode()
                )
                writer.close()
                await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()
                await svc.aclose()
            return errors, opened

        errors, opened = run(scenario())
        assert all(not e.ok and e.error for e in errors)
        assert opened.ok

    def test_handle_stream_crash_becomes_error_result(self, monkeypatch):
        # A failure inside handle_stream itself (past parsing) must be
        # reported on the open connection, not tear it down.
        async def scenario():
            svc = SolveService(batch_window=0.0)

            async def explode(request):
                raise RuntimeError("kaboom")

            server = await start_server(svc, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                monkeypatch.setattr(svc, "handle_stream", explode)
                writer.write(_open("t", machines=2).to_json().encode() + b"\n")
                await writer.drain()
                crashed = StreamResult.from_json(
                    (await reader.readline()).decode()
                )
                monkeypatch.undo()
                writer.write(_open("t", machines=2).to_json().encode() + b"\n")
                await writer.drain()
                opened = StreamResult.from_json(
                    (await reader.readline()).decode()
                )
                writer.close()
                await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()
                await svc.aclose()
            return crashed, opened

        crashed, opened = run(scenario())
        assert not crashed.ok and "RuntimeError: kaboom" in (crashed.error or "")
        assert crashed.tenant == "t" and crashed.action == "open_session"
        assert opened.ok


@pytest.mark.slow
class TestPooledStream:
    def test_pinned_session_with_durable_reopen(self, tmp_path):
        async def scenario():
            svc = PooledSolveService(
                2, store_root=str(tmp_path), spawn_grace=120
            )
            try:
                opened = await svc.handle_stream(_open("acme", machines=2))
                assert opened.ok and not opened.restored
                for i, t in enumerate((5, 5, 5)):
                    last = await svc.handle_stream(
                        _add("acme", [(f"j{i}", t)])
                    )
                assert last.ok and last.num_jobs == 3
                assert last.resolves >= 1  # drift fired on the worker
                closed = await svc.handle_stream(
                    StreamRequest(action="close", tenant="acme")
                )
                assert closed.ok
                reopened = await svc.handle_stream(_open("acme", machines=2))
                assert reopened.ok and reopened.restored
                assert reopened.num_jobs == 3
                assert reopened.makespan == closed.makespan
                stats = await svc.stats()
            finally:
                await svc.aclose()
            return stats

        stats = run(scenario())
        assert stats["counters"]["pool.stream_dispatched"] == 6.0
        shard = tenant_shard("acme", 2)
        assert (
            stats["counters"][f"pool.shard.{shard}.stream_dispatched"] == 6.0
        )
        # Tenant gauges are lifted to the top level un-prefixed (a tenant
        # lives on exactly one worker).
        assert stats["gauges"]["tenant.acme.jobs"] == 3.0

    def test_inf_threshold_session_never_resolves(self, tmp_path):
        async def scenario():
            svc = PooledSolveService(
                1, store_root=str(tmp_path), spawn_grace=120
            )
            try:
                await svc.handle_stream(
                    _open("lazy", machines=2, drift_threshold=math.inf)
                )
                for i in range(6):
                    last = await svc.handle_stream(
                        _add("lazy", [(f"j{i}", 5)])
                    )
                await svc.handle_stream(
                    StreamRequest(action="close", tenant="lazy")
                )
            finally:
                await svc.aclose()
            return last

        last = run(scenario())
        assert last.ok and last.resolves == 0 and last.num_jobs == 6
