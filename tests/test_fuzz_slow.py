"""Heavier randomized cross-validation (marked slow).

These go beyond the per-module property tests: larger instances, more
engines compared at once, full-pipeline equivalences.  They run in the
default suite (a few seconds total) but are marked so ultra-fast CI
loops can deselect them with ``-m 'not slow'``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.local_search import lpt_with_local_search
from repro.algorithms.lpt import lpt
from repro.algorithms.multifit import multifit
from repro.core.bounds import makespan_bounds
from repro.core.context import SolveContext
from repro.core.dp import DPProblem, SEQUENTIAL_ENGINES, solve
from repro.core.parallel_dp import parallel_dp
from repro.core.ptas import parallel_ptas, ptas
from repro.core.reference import algorithm1
from repro.exact.branch_and_bound import branch_and_bound
from repro.exact.ilp import ilp_solve
from repro.exact.sahni import exact_dp
from repro.core.rounding import round_instance
from repro.model.instance import Instance
from repro.model.verify import verify_ptas_result, verify_schedule

pytestmark = pytest.mark.slow


def medium_instance_strategy():
    return st.builds(
        Instance,
        st.lists(st.integers(min_value=1, max_value=120), min_size=5, max_size=35),
        st.integers(min_value=2, max_value=6),
    )


@given(medium_instance_strategy())
@settings(max_examples=25)
def test_fuzz_full_stack_consistency(inst: Instance):
    """One instance through the whole library: exact solvers agree,
    heuristics respect their guarantees against the exact optimum, the
    PTAS verifies, and the parallel PTAS matches the sequential one."""
    bnb = branch_and_bound(inst, node_budget=500_000)
    if not bnb.optimal:
        return  # adversarial draw; exactness checked elsewhere
    opt = bnb.makespan
    assert makespan_bounds(inst).lower <= opt <= makespan_bounds(inst).upper

    assert lpt(inst).makespan <= (4 / 3) * opt + 1e-9
    assert multifit(inst).makespan <= 1.23 * opt + 1.0
    assert opt <= lpt_with_local_search(inst).makespan <= lpt(inst).makespan

    seq = ptas(inst, 0.3, engine="table")
    assert seq.makespan <= 1.3 * opt + 1e-9
    assert verify_ptas_result(seq).ok

    par = parallel_ptas(inst, 0.3, num_workers=4, backend="serial")
    assert par.schedule.assignment == seq.schedule.assignment

    # The literal transcription implements the *printed* algorithm
    # (no job-cap guarantee fix, faithful bisection), so compare against
    # the uncapped run with warm-start disabled: rounded-DP feasibility
    # is non-monotone below OPT, so the warm search may certify a
    # different (equally valid) target than the literal one.
    ref = algorithm1(inst, 0.3)
    unfixed = ptas(
        inst,
        0.3,
        engine="table",
        guarantee_fix=False,
        ctx=SolveContext(warm_start=False),
    )
    assert ref.makespan == unfixed.makespan


@given(medium_instance_strategy())
@settings(max_examples=15)
def test_fuzz_rounded_dp_engines_on_real_instances(inst: Instance):
    """All sequential engines + the wavefront agree on rounded problems
    arising from real instances (bigger than the synthetic strategy's)."""
    target = makespan_bounds(inst).midpoint()
    r = round_instance(inst, target, 4)
    problem = DPProblem(r.class_sizes, r.class_counts, target)
    if problem.table_size > 20_000:
        return
    reference = solve(problem, "table", track_schedule=False)
    for engine in SEQUENTIAL_ENGINES:
        assert solve(problem, engine, track_schedule=False).opt == reference.opt
    assert parallel_dp(problem, 4, "serial", track_schedule=False).opt == reference.opt
    assert parallel_dp(problem, 3, "thread", track_schedule=False).opt == reference.opt


@given(
    st.lists(st.integers(min_value=1, max_value=40), min_size=4, max_size=14),
    st.integers(min_value=2, max_value=3),
)
@settings(max_examples=15)
def test_fuzz_ilp_vs_sahni_vs_bnb(times, m):
    inst = Instance(times, m)
    a = ilp_solve(inst).makespan
    b = branch_and_bound(inst).makespan
    c = exact_dp(inst).makespan
    assert a == b == c


@given(medium_instance_strategy(), st.sampled_from([0.25, 0.4, 0.6]))
@settings(max_examples=15)
def test_fuzz_ptas_schedule_always_verifies(inst: Instance, eps: float):
    result = ptas(inst, eps)
    assert verify_schedule(result.schedule).ok
    assert verify_ptas_result(result).ok
