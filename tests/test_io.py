"""Tests for instance/schedule serialization (:mod:`repro.io`)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings

from repro.io.instances import (
    instance_from_json,
    instance_to_json,
    read_instance,
    write_instance,
)
from repro.io.schedules import (
    read_schedule,
    schedule_from_json,
    schedule_to_json,
    write_schedule,
)
from repro.model.instance import Instance
from repro.model.schedule import Schedule

from conftest import medium_instances


@pytest.fixture
def inst() -> Instance:
    return Instance([7, 3, 5, 5, 2], num_machines=2)


class TestInstanceJSON:
    def test_roundtrip(self, inst):
        assert instance_from_json(instance_to_json(inst)) == inst

    def test_metadata_embedded(self, inst):
        doc = json.loads(instance_to_json(inst, metadata={"family": "u_10"}))
        assert doc["metadata"]["family"] == "u_10"
        assert doc["format"] == "repro-pcmax-instance"

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            instance_from_json("{nope")

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="must be an object"):
            instance_from_json("[1, 2]")

    def test_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing key"):
            instance_from_json('{"num_machines": 2}')

    def test_rejects_non_list_times(self):
        with pytest.raises(ValueError, match="must be a list"):
            instance_from_json('{"num_machines": 2, "processing_times": 5}')


class TestInstanceFiles:
    @pytest.mark.parametrize("suffix", [".json", ".csv", ".txt"])
    def test_roundtrip_all_formats(self, tmp_path, inst, suffix):
        path = write_instance(inst, tmp_path / f"inst{suffix}")
        assert read_instance(path) == inst

    def test_txt_format_layout(self, tmp_path, inst):
        path = write_instance(inst, tmp_path / "i.txt")
        lines = path.read_text().splitlines()
        assert lines[0] == "5 2"
        assert lines[1:] == ["7", "3", "5", "5", "2"]

    def test_txt_accepts_comments_and_blank_lines(self, tmp_path):
        p = tmp_path / "i.txt"
        p.write_text("# benchmark foo\n3 2\n\n4\n5\n6\n")
        assert read_instance(p) == Instance([4, 5, 6], 2)

    def test_txt_rejects_count_mismatch(self, tmp_path):
        p = tmp_path / "i.txt"
        p.write_text("3 2\n4\n5\n")
        with pytest.raises(ValueError, match="promises 3 jobs"):
            read_instance(p)

    def test_csv_requires_machine_comment(self, tmp_path):
        p = tmp_path / "i.csv"
        p.write_text("job,processing_time\n0,5\n")
        with pytest.raises(ValueError, match="machines"):
            read_instance(p)

    def test_csv_requires_column(self, tmp_path):
        p = tmp_path / "i.csv"
        p.write_text("# machines=2\njob,duration\n0,5\n")
        with pytest.raises(ValueError, match="processing_time"):
            read_instance(p)

    def test_unknown_suffix(self, tmp_path, inst):
        with pytest.raises(ValueError, match="unsupported suffix"):
            write_instance(inst, tmp_path / "i.yaml")
        with pytest.raises(ValueError, match="unsupported suffix"):
            read_instance(tmp_path / "i.yaml")

    @given(medium_instances())
    @settings(max_examples=25)
    def test_property_json_roundtrip(self, inst):
        assert instance_from_json(instance_to_json(inst)) == inst


class TestScheduleJSON:
    def make(self, inst) -> Schedule:
        return Schedule(inst, [[0, 1], [2, 3, 4]])

    def test_roundtrip(self, inst):
        sched = self.make(inst)
        back = schedule_from_json(schedule_to_json(sched))
        assert back.assignment == sched.assignment
        assert back.instance == inst
        assert back.makespan == sched.makespan

    def test_file_roundtrip(self, tmp_path, inst):
        sched = self.make(inst)
        path = write_schedule(sched, tmp_path / "s.json", metadata={"alg": "lpt"})
        back = read_schedule(path)
        assert back.assignment == sched.assignment

    def test_rejects_tampered_makespan(self, inst):
        doc = json.loads(schedule_to_json(self.make(inst)))
        doc["makespan"] = 1
        with pytest.raises(ValueError, match="disagrees"):
            schedule_from_json(json.dumps(doc))

    def test_rejects_invalid_assignment(self, inst):
        doc = json.loads(schedule_to_json(self.make(inst)))
        doc["assignment"] = [[0], [1, 2, 3]]  # job 4 missing
        doc.pop("makespan")
        with pytest.raises(ValueError, match="not assigned"):
            schedule_from_json(json.dumps(doc))

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            schedule_from_json("]")
        with pytest.raises(ValueError, match="must be an object"):
            schedule_from_json("3")
        with pytest.raises(ValueError, match="missing key"):
            schedule_from_json("{}")
