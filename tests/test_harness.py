"""Tests for the experiment harness (:mod:`repro.experiments.harness`)."""

from __future__ import annotations

import pytest

from repro.experiments.harness import (
    ExperimentConfig,
    InstanceRecord,
    run_instance,
)
from repro.model.instance import Instance


@pytest.fixture(scope="module")
def record() -> InstanceRecord:
    inst = Instance([9, 8, 7, 6, 5, 5, 4, 3, 2, 1], num_machines=3)
    cfg = ExperimentConfig(cores=(2, 4), ip_time_limit=10.0)
    return run_instance(inst, cfg)


class TestConfig:
    def test_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.eps == 0.3
        assert cfg.cores == (2, 4, 8, 16)

    def test_rejects_empty_cores(self):
        with pytest.raises(ValueError):
            ExperimentConfig(cores=())

    def test_rejects_bad_core_count(self):
        with pytest.raises(ValueError):
            ExperimentConfig(cores=(0,))


class TestRunInstance:
    def test_all_algorithms_measured(self, record: InstanceRecord):
        assert record.sequential.seconds >= 0
        assert record.ip.seconds >= 0
        assert record.lpt_run.seconds >= 0
        assert record.ls_run.seconds >= 0
        assert len(record.parallel) == 2

    def test_parallel_at(self, record: InstanceRecord):
        assert record.parallel_at(2).cores == 2
        assert record.parallel_at(4).cores == 4
        with pytest.raises(KeyError):
            record.parallel_at(64)

    def test_parallel_makespan_matches_sequential(self, record: InstanceRecord):
        for run in record.parallel:
            assert run.makespan == record.sequential.makespan

    def test_ip_is_optimal_on_tiny_instance(self, record: InstanceRecord):
        assert record.ip.optimal
        assert record.ip.makespan == 17  # brute-force verified elsewhere

    def test_ratios_ordered(self, record: InstanceRecord):
        """PTAS within guarantee; LS at least as bad as optimal."""
        assert record.ratio(record.sequential.makespan) <= 1.3 + 1e-9
        assert record.ratio(record.ls_run.makespan) >= 1.0 - 1e-9

    def test_speedup_vs_ip_consistent(self, record: InstanceRecord):
        s = record.speedup_vs_ip(2)
        par = record.parallel_at(2)
        assert s == pytest.approx(record.ip.seconds / par.seconds)

    def test_simulated_flag(self, record: InstanceRecord):
        assert all(run.simulated for run in record.parallel)


class TestRealBackend:
    def test_serial_backend_measures_wall_time(self):
        inst = Instance([5, 4, 3, 2, 1], num_machines=2)
        cfg = ExperimentConfig(
            cores=(2,), parallel_backend="serial", ip_time_limit=5.0
        )
        rec = run_instance(inst, cfg)
        run = rec.parallel_at(2)
        assert not run.simulated
        assert run.seconds > 0
