"""Tests for the sequential and parallel PTAS (:mod:`repro.core.ptas`).

The headline invariants of the paper:

* the PTAS respects its ``(1 + eps)`` guarantee (checked against the
  brute-force optimum);
* the parallel algorithm produces *the same schedule* as the sequential
  PTAS — parallelization never changes results;
* in practice the actual approximation ratio is far below ``1 + eps``
  (§V-B: under 1.1 in the best cases).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.lpt import lpt
from repro.core.context import SolveContext
from repro.core.ptas import parallel_ptas, ptas
from repro.exact.brute import brute_force
from repro.model.instance import Instance

from conftest import small_instances


class TestSequentialPTAS:
    def test_basic_run(self, small_instance):
        result = ptas(small_instance, eps=0.3)
        assert result.schedule.is_valid()
        assert result.k == 4
        assert result.guarantee_factor == pytest.approx(1.3)
        assert result.num_bisection_iterations >= 1

    def test_perfectly_divisible(self, tight_instance):
        result = ptas(tight_instance, eps=0.3)
        assert result.makespan == 8  # OPT: two 4s per machine

    def test_single_machine(self):
        inst = Instance([3, 5, 2], num_machines=1)
        result = ptas(inst, eps=0.3)
        assert result.makespan == 10

    def test_single_job(self):
        inst = Instance([7], num_machines=3)
        result = ptas(inst, eps=0.3)
        assert result.makespan == 7

    def test_more_machines_than_jobs(self):
        inst = Instance([4, 9, 2], num_machines=10)
        result = ptas(inst, eps=0.3)
        assert result.makespan == 9  # one job per machine is optimal

    def test_large_eps_degenerates_to_lpt(self):
        inst = Instance([8, 7, 6, 5, 4, 3], num_machines=2)
        result = ptas(inst, eps=1.5)  # k = 1: no long jobs at all
        assert result.k == 1
        assert result.makespan == lpt(inst).makespan

    def test_rejects_nonpositive_eps(self):
        with pytest.raises(ValueError):
            ptas(Instance([1], 1), eps=0.0)

    @pytest.mark.parametrize("engine", ["table", "memo", "frontier", "numpy"])
    def test_engines_equal_makespan(self, small_instance, engine):
        reference = ptas(small_instance, 0.3, engine="table")
        other = ptas(small_instance, 0.3, engine=engine)
        assert other.makespan == reference.makespan
        assert other.final_target == reference.final_target

    def test_dominance_engine_same_target_and_guarantee(self, small_instance):
        """The dominance engine may pick a different witness (hence a
        slightly different schedule) but must certify the same target and
        stay within the guarantee."""
        reference = ptas(small_instance, 0.3, engine="table")
        dom = ptas(small_instance, 0.3, engine="dominance")
        assert dom.final_target == reference.final_target
        opt = brute_force(small_instance).makespan
        assert dom.makespan <= 1.3 * opt


class TestParallelPTAS:
    @pytest.mark.parametrize("backend", ["serial", "thread", "simulated"])
    @pytest.mark.parametrize("workers", [1, 3])
    def test_identical_to_sequential(self, small_instance, backend, workers):
        """The paper's core property: the parallel algorithm returns the
        very same schedule as the sequential PTAS."""
        seq = ptas(small_instance, 0.3, engine="table")
        par = parallel_ptas(
            small_instance, 0.3, num_workers=workers, backend=backend
        )
        assert par.makespan == seq.makespan
        assert par.final_target == seq.final_target
        assert par.schedule.assignment == seq.schedule.assignment

    def test_simulated_machine_attached(self, small_instance):
        par = parallel_ptas(small_instance, 0.3, num_workers=4)
        assert par.machine is not None
        assert par.simulated_speedup is not None
        assert par.machine.num_processors == 4

    def test_non_simulated_has_no_machine(self, small_instance):
        par = parallel_ptas(small_instance, 0.3, num_workers=2, backend="serial")
        assert par.machine is None
        assert par.simulated_speedup is None

    def test_rejects_unknown_backend(self, small_instance):
        with pytest.raises(ValueError, match="unknown backend"):
            parallel_ptas(small_instance, 0.3, num_workers=2, backend="mpi")

    @pytest.mark.slow
    def test_process_backend_identical(self, small_instance):
        seq = ptas(small_instance, 0.3, engine="table")
        par = parallel_ptas(small_instance, 0.3, num_workers=2, backend="process")
        assert par.schedule.assignment == seq.schedule.assignment


class TestGuarantee:
    @pytest.mark.parametrize("eps", [0.2, 0.3, 0.5, 1.0])
    def test_guarantee_on_fixed_instances(self, eps):
        instances = [
            Instance([9, 8, 7, 6, 5, 5, 4, 3, 2, 1], 3),
            Instance([10, 10, 9, 9, 8, 8], 2),
            Instance([13, 11, 7, 5, 3, 2, 2], 4),
            Instance([6, 6, 6, 6, 6], 5),
            Instance([20, 1, 1, 1, 1, 1, 1], 2),
        ]
        for inst in instances:
            opt = brute_force(inst).makespan
            result = ptas(inst, eps)
            assert result.makespan <= (1 + eps) * opt + 1e-9, (
                f"PTAS violated its guarantee on {inst} at eps={eps}"
            )

    @given(small_instances(), st.sampled_from([0.3, 0.5, 1.0]))
    @settings(max_examples=60)
    def test_property_guarantee(self, inst: Instance, eps: float):
        opt = brute_force(inst).makespan
        result = ptas(inst, eps)
        assert result.schedule.is_valid()
        assert result.makespan <= (1 + eps) * opt + 1e-9

    @given(small_instances())
    @settings(max_examples=30)
    def test_property_parallel_equals_sequential(self, inst: Instance):
        seq = ptas(inst, 0.3, engine="table")
        par = parallel_ptas(inst, 0.3, num_workers=3, backend="serial")
        assert par.schedule.assignment == seq.schedule.assignment

    @given(small_instances())
    @settings(max_examples=30)
    def test_property_never_worse_than_guarantee_vs_lpt_baseline(self, inst):
        """Sanity floor: the PTAS with eps=0.3 must not exceed LPT's
        makespan by more than the guarantee gap allows (both are within
        their factors of OPT)."""
        opt = brute_force(inst).makespan
        result = ptas(inst, 0.3)
        assert result.makespan <= 1.3 * opt + 1e-9
        assert lpt(inst).makespan <= (4 / 3) * opt + 1e-9


class TestEpsilonTradeoff:
    def test_smaller_eps_not_worse(self):
        """Shrinking eps can only improve (or keep) the certified target."""
        inst = Instance([17, 13, 11, 9, 8, 7, 5, 4, 3, 2, 2, 1], 3)
        targets = [
            ptas(inst, eps).final_target for eps in (1.0, 0.5, 0.34, 0.25)
        ]
        assert targets == sorted(targets, reverse=True)


class TestCheckDeadline:
    """``check_deadline`` threads from the public PTAS entry points into
    the bisection loop (used by repro.service for graceful degradation)."""

    def test_sequential_noop_hook_same_schedule(self, small_instance):
        plain = ptas(small_instance, eps=0.3)
        hooked = ptas(
            small_instance, eps=0.3, ctx=SolveContext(check_deadline=lambda: None)
        )
        assert hooked.schedule.makespan == plain.schedule.makespan

    def test_sequential_raising_hook_propagates(self, small_instance):
        class Expired(Exception):
            pass

        def check() -> None:
            raise Expired

        with pytest.raises(Expired):
            ptas(small_instance, eps=0.3, ctx=SolveContext(check_deadline=check))

    def test_parallel_raising_hook_propagates(self, small_instance):
        class Expired(Exception):
            pass

        def check() -> None:
            raise Expired

        with pytest.raises(Expired):
            parallel_ptas(
                small_instance,
                eps=0.05,
                num_workers=2,
                backend="serial",
                ctx=SolveContext(check_deadline=check),
            )


class TestBisectionModes:
    """``parallel_ptas`` mode selection: wavefront / speculative / auto."""

    def test_speculative_same_target_as_sequential(self, small_instance):
        seq = ptas(small_instance, 0.3, engine="table")
        spec = parallel_ptas(
            small_instance, 0.3, num_workers=3, backend="serial",
            mode="speculative",
        )
        assert spec.mode == "speculative"
        assert spec.final_target == seq.final_target
        assert spec.makespan <= spec.final_target

    def test_thread_backend_speculative(self, small_instance):
        seq = ptas(small_instance, 0.3, engine="table")
        spec = parallel_ptas(
            small_instance, 0.3, num_workers=2, backend="thread",
            mode="speculative",
        )
        assert spec.final_target == seq.final_target

    def test_wavefront_is_default_mode(self, small_instance):
        result = parallel_ptas(small_instance, 0.3, num_workers=2, backend="serial")
        assert result.mode == "wavefront"

    def test_auto_resolves_to_a_concrete_mode(self, small_instance):
        seq = ptas(small_instance, 0.3, engine="table")
        result = parallel_ptas(
            small_instance, 0.3, num_workers=2, backend="serial", mode="auto"
        )
        assert result.mode in ("wavefront", "speculative")
        assert result.final_target == seq.final_target

    def test_auto_on_single_worker_stays_wavefront(self, small_instance):
        result = parallel_ptas(
            small_instance, 0.3, num_workers=1, backend="serial", mode="auto"
        )
        assert result.mode == "wavefront"

    def test_speculative_guarantee_holds(self, small_instance):
        spec = parallel_ptas(
            small_instance, 0.5, num_workers=3, backend="serial",
            mode="speculative",
        )
        opt = brute_force(small_instance).makespan
        assert spec.makespan <= (1 + 0.5) * opt

    def test_branching_defaults_to_workers(self):
        from repro.obs import Tracer

        # Wide interval (no warm start) so several rounds actually run.
        inst = Instance([97, 83, 51, 42, 38, 21, 13, 8, 5, 3], num_machines=3)
        tracer = Tracer()
        parallel_ptas(
            inst, 0.3, num_workers=3, backend="serial", mode="speculative",
            ctx=SolveContext(tracer=tracer, warm_start=False),
        )
        rounds = tracer.find("spec_round")
        assert rounds
        assert all(s.attrs["probes"] <= 3 for s in rounds)

    def test_rejects_unknown_mode(self, small_instance):
        with pytest.raises(ValueError, match="mode"):
            parallel_ptas(
                small_instance, 0.3, num_workers=2, backend="serial",
                mode="pessimistic",
            )

    def test_speculative_rejects_non_executor_backend(self, small_instance):
        with pytest.raises(ValueError, match="simulate_speculative_ptas"):
            parallel_ptas(
                small_instance, 0.3, num_workers=2, backend="simulated",
                mode="speculative",
            )
