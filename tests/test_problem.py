"""The problem-variant registry and the Q||Cmax model types."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.instance import Instance
from repro.model.problem import (
    P_CMAX,
    Q_CMAX,
    UnknownProblemError,
    available_problems,
    canonical_problem_name,
    get_problem,
    problem_of_instance,
)
from repro.model.qinstance import QInstance, QSchedule
from repro.model.verify import verify_qschedule, verify_schedule

from conftest import small_instances


class TestProblemRegistry:
    def test_available_problems(self):
        assert available_problems() == [P_CMAX, Q_CMAX]

    @pytest.mark.parametrize(
        "alias, expected",
        [
            ("p_cmax", P_CMAX),
            ("P", P_CMAX),
            ("  p||cmax ", P_CMAX),
            ("identical", P_CMAX),
            ("q_cmax", Q_CMAX),
            ("Q-CMAX", Q_CMAX),
            ("Q||Cmax", Q_CMAX),
            ("uniform", Q_CMAX),
            ("related", Q_CMAX),
        ],
    )
    def test_aliases(self, alias, expected):
        assert canonical_problem_name(alias) == expected

    def test_unknown_problem_lists_valid_names(self):
        with pytest.raises(UnknownProblemError, match="p_cmax") as exc:
            canonical_problem_name("r_cmax")
        assert "q_cmax" in str(exc.value)

    def test_problem_of_instance(self):
        assert problem_of_instance(Instance([3, 2], 1)) == P_CMAX
        assert problem_of_instance(QInstance([3, 2], speeds=(2,))) == Q_CMAX
        with pytest.raises(TypeError):
            problem_of_instance([3, 2])

    def test_build_instance_p_rejects_speeds(self):
        model = get_problem(P_CMAX)
        inst = model.build_instance((4, 3), machines=2)
        assert isinstance(inst, Instance)
        with pytest.raises(ValueError, match="speeds"):
            model.build_instance((4, 3), machines=2, speeds=(1, 1))

    def test_build_instance_q_requires_matching_speeds(self):
        model = get_problem(Q_CMAX)
        inst = model.build_instance((4, 3), machines=2, speeds=(2, 1))
        assert isinstance(inst, QInstance)
        with pytest.raises(ValueError):
            model.build_instance((4, 3), machines=3, speeds=(2, 1))
        with pytest.raises(ValueError):
            model.build_instance((4, 3), machines=2, speeds=())

    def test_baselines_return_verified_schedules(self):
        p_sched, p_guarantee = get_problem(P_CMAX).baseline(Instance([4, 3, 3], 2))
        assert verify_schedule(p_sched).ok
        assert p_guarantee > 1.0
        q_inst = QInstance([4, 3, 3], speeds=(2, 1))
        q_sched, q_guarantee = get_problem(Q_CMAX).baseline(q_inst)
        assert verify_qschedule(q_sched, q_inst).ok
        assert q_guarantee > 1.0


class TestQInstance:
    def test_basic_aggregates(self):
        inst = QInstance([6, 4, 3, 2], speeds=(3, 1))
        assert inst.num_jobs == 4
        assert inst.num_machines == 2
        assert inst.total_work == 15
        assert inst.max_time == 6
        assert inst.total_speed == 4
        assert inst.max_speed == 3
        assert not inst.is_identical
        assert QInstance([5], speeds=(2, 2)).is_identical

    def test_validation(self):
        with pytest.raises(ValueError):
            QInstance([], speeds=(1,))
        with pytest.raises(ValueError):
            QInstance([3], speeds=())
        with pytest.raises(ValueError):
            QInstance([0], speeds=(1,))
        with pytest.raises(ValueError):
            QInstance([3], speeds=(0,))
        with pytest.raises(TypeError):
            QInstance([3.5], speeds=(1,))

    def test_trivial_bounds(self):
        inst = QInstance([6, 4, 3, 2], speeds=(3, 1))
        # max(W/S, t_max/s_max) = max(15/4, 6/3) = 3.75
        assert inst.trivial_lower_bound() == pytest.approx(3.75)
        # all work on the fastest machine
        assert inst.trivial_upper_bound() == pytest.approx(5.0)

    def test_identity_round_trip(self):
        p = Instance([5, 4, 3], 2)
        q = QInstance.from_identical(p)
        assert q.speeds == (1, 1)
        assert q.to_identical() == p
        with pytest.raises(ValueError):
            QInstance([5, 4], speeds=(2, 1)).to_identical()

    def test_sorted_jobs_desc_breaks_ties_by_index(self):
        inst = QInstance([3, 5, 3, 5], speeds=(1, 1))
        assert tuple(inst.sorted_jobs_desc()) == (1, 3, 0, 2)


class TestQSchedule:
    def test_completion_times_are_exact(self):
        inst = QInstance([6, 4, 3, 2], speeds=(3, 1))
        sched = QSchedule(inst, [(0, 1, 3), (2,)])
        assert sched.machine_loads == (12, 3)
        assert sched.exact_completion_times() == (Fraction(4), Fraction(3))
        assert sched.completion_times == (4.0, 3.0)
        assert sched.makespan == 4.0
        assert sched.is_valid()
        assert sched.job_machine() == {0: 0, 1: 0, 2: 1, 3: 0}

    def test_partition_validation(self):
        inst = QInstance([6, 4], speeds=(1, 1))
        with pytest.raises(ValueError):
            QSchedule(inst, [(0,), (0, 1)])  # duplicate job
        with pytest.raises(ValueError):
            QSchedule(inst, [(0,), ()])  # missing job 1
        with pytest.raises(ValueError):
            QSchedule(inst, [(0, 1)])  # wrong machine count

    def test_canonical_sorts_jobs_but_keeps_machine_order(self):
        inst = QInstance([6, 4, 3], speeds=(2, 1))
        sched = QSchedule(inst, [(2, 0), (1,)])
        # Machines are distinguishable by speed: rows must not be
        # re-ordered, only the job lists normalized.
        assert sched.canonical() == ((0, 2), (1,))


class TestVerifyQSchedule:
    def test_ok_schedule(self):
        inst = QInstance([6, 4, 3, 2], speeds=(3, 1))
        report = verify_qschedule(QSchedule(inst, [(0, 1, 3), (2,)]), inst)
        assert report.ok, report.violations

    def test_dispatch_through_verify_schedule(self):
        inst = QInstance([6, 4], speeds=(2, 1))
        sched = QSchedule(inst, [(0,), (1,)])
        assert verify_schedule(sched).ok
        assert verify_schedule(sched, inst).ok

    def test_mismatched_instance_fails(self):
        inst = QInstance([6, 4], speeds=(2, 1))
        sched = QSchedule(inst, [(0,), (1,)])
        report = verify_schedule(sched, Instance([6, 4], 2))
        assert not report.ok


class TestIdenticalRoundTrips:
    """Satellite coverage: the P <-> Q identity embedding is lossless in
    both directions, at any uniform speed, and the unit-speed special
    case is exactly what the cache key folds into the P namespace."""

    @given(small_instances())
    @settings(max_examples=60)
    def test_from_identical_round_trips(self, inst):
        q = QInstance.from_identical(inst)
        assert q.is_identical
        assert q.to_identical() == inst
        assert q.processing_times == inst.processing_times
        assert q.num_machines == inst.num_machines

    @given(small_instances(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=60)
    def test_round_trip_at_any_uniform_speed(self, inst, speed):
        q = QInstance.from_identical(inst, speed=speed)
        assert q.speeds == (speed,) * inst.num_machines
        assert q.is_identical
        # to_identical drops the speed (it only encodes a time unit), so
        # the projection returns the original times verbatim.
        assert q.to_identical() == inst

    @given(small_instances())
    @settings(max_examples=60)
    def test_unit_speed_lift_relaxes_bounds(self, inst):
        # The Q bound is the fractional load (no ceil), so the lift's
        # bound never exceeds — and stays within one unit of — the
        # integral identical-machine bound.
        q = QInstance.from_identical(inst)
        assert (
            inst.trivial_lower_bound() - 1
            < q.trivial_lower_bound()
            <= inst.trivial_lower_bound()
        )

    def test_non_uniform_projection_rejected(self):
        with pytest.raises(ValueError, match="no identical-machine"):
            QInstance([5, 4], speeds=(2, 1)).to_identical()
