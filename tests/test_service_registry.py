"""Tests for the solver registry (:mod:`repro.service.registry`)."""

from __future__ import annotations

import pytest

from repro.model.verify import verify_schedule
from repro.service.registry import (
    UnknownEngineError,
    available_engines,
    canonical_engine_name,
    get_engine,
    solve_to_result,
)
from repro.service.requests import SolveRequest


def _request(engine: str, **kwargs) -> SolveRequest:
    return SolveRequest(
        times=(7, 7, 6, 6, 5, 4, 4, 3), machines=3, engine=engine, **kwargs
    )


class TestLookup:
    def test_required_engines_registered(self):
        names = available_engines()
        for required in ("ptas", "parallel_ptas", "lpt", "ls", "ilp"):
            assert required in names

    def test_dash_and_underscore_equivalent(self):
        assert get_engine("parallel-ptas") is get_engine("parallel_ptas")
        assert canonical_engine_name("Parallel-PTAS") == "parallel_ptas"

    def test_unknown_engine_message_lists_choices(self):
        with pytest.raises(UnknownEngineError, match="ptas"):
            get_engine("nope")

    def test_unknown_is_value_error(self):
        # The CLI and server both catch ValueError-compatible failures.
        with pytest.raises(ValueError):
            get_engine("nope")


class TestCapabilities:
    def test_ptas_family_supports_deadline(self):
        assert get_engine("ptas").supports_deadline
        assert get_engine("parallel_ptas").supports_deadline
        assert get_engine("parallel_ptas").parallelizable

    def test_baselines_do_not_need_deadline(self):
        for name in ("lpt", "ls", "multifit"):
            assert not get_engine(name).supports_deadline

    def test_guarantees(self):
        req = _request("ptas", eps=0.3)
        assert get_engine("ptas").guarantee(req) == pytest.approx(1.3)
        assert get_engine("lpt").guarantee(req) == pytest.approx(4 / 3 - 1 / 9)
        assert get_engine("ls").guarantee(req) == pytest.approx(2 - 1 / 3)
        assert get_engine("ilp").guarantee(req) == 1.0
        assert get_engine("ilp").exact


class TestSolveAdapters:
    @pytest.mark.parametrize(
        "engine", ["ptas", "parallel_ptas", "lpt", "ls", "multifit", "bnb"]
    )
    def test_produces_valid_schedule(self, engine):
        req = _request(engine, workers=2, backend="serial")
        inst = req.instance()
        schedule = get_engine(engine).solve(inst, req, None)
        assert verify_schedule(schedule, inst).ok
        assert schedule.makespan <= get_engine(engine).guarantee(req) * 14 + 1e-9

    def test_ptas_rejects_unknown_dp_engine(self):
        req = _request("ptas", dp_engine="bogus")
        with pytest.raises(UnknownEngineError, match="bogus"):
            get_engine("ptas").solve(req.instance(), req, None)

    def test_parallel_ptas_rejects_unknown_backend(self):
        req = _request("parallel_ptas", backend="bogus")
        with pytest.raises(UnknownEngineError, match="bogus"):
            get_engine("parallel_ptas").solve(req.instance(), req, None)


class TestBisectionModes:
    def request(self, **kwargs) -> SolveRequest:
        kwargs.setdefault("workers", 3)
        return SolveRequest(
            times=(9, 8, 7, 6, 5, 5, 4, 3, 2, 1),
            machines=3,
            engine="parallel_ptas",
            backend="serial",
            **kwargs,
        )

    def test_speculative_mode_solves(self):
        request = self.request(mode="speculative")
        result = solve_to_result(request)
        assert result.ok
        report = verify_schedule(result.schedule(request.instance()))
        assert report.ok, report.violations

    def test_speculative_matches_wavefront_guarantee(self):
        wavefront = solve_to_result(self.request(mode="wavefront"))
        speculative = solve_to_result(self.request(mode="speculative"))
        assert wavefront.guarantee == speculative.guarantee
        # Both certify a (1 + eps)-feasible schedule for the same target
        # family; makespans may differ only within the guarantee.
        assert speculative.makespan <= wavefront.guarantee * wavefront.makespan

    def test_auto_mode_solves(self):
        result = solve_to_result(self.request(mode="auto"))
        assert result.ok

    def test_auto_workers_resolve_server_side(self):
        result = solve_to_result(self.request(mode="wavefront", workers="auto"))
        assert result.ok

    def test_unknown_mode_rejected(self):
        with pytest.raises(UnknownEngineError, match="mode"):
            solve_to_result(self.request(mode="bogus"))


class TestProblemVariants:
    def _q_request(self, engine="lpt", **kwargs) -> SolveRequest:
        return SolveRequest(
            times=(37, 21, 18, 95, 42, 7),
            machines=3,
            problem="q_cmax",
            speeds=(4, 2, 1),
            engine=engine,
            **kwargs,
        )

    @pytest.mark.parametrize("engine", ["lpt", "ls"])
    def test_q_solve_to_result(self, engine):
        request = self._q_request(engine)
        result = solve_to_result(request)
        assert result.ok
        inst = request.instance()
        sched = result.schedule(inst)
        assert verify_schedule(sched, inst).ok
        assert isinstance(result.makespan, float)
        spec = get_engine(engine)
        assert result.guarantee == pytest.approx(spec.guarantee(request))
        # Speed-aware trivial lower bound sandwiches the result.
        assert result.makespan <= result.guarantee * inst.trivial_lower_bound() + 1e-9

    def test_q_guarantees_are_speed_aware(self):
        request = self._q_request("lpt")
        # max speed 4, total 7, m=3: list ratio = 1 + 2*4/7; LPT uses
        # the tighter min(2 - 2/(m+1), list ratio) = 1.5 here.
        assert get_engine("ls").guarantee(request) == pytest.approx(1 + 8 / 7)
        assert get_engine("lpt").guarantee(request) == pytest.approx(1.5)

    @pytest.mark.parametrize("problem", ["p_cmax", "q_cmax"])
    def test_fallback_result_is_problem_correct(self, problem):
        if problem == "q_cmax":
            request = self._q_request("ptas")  # engine irrelevant for fallback
        else:
            request = _request("ptas")
        from repro.service.registry import fallback_result

        result = fallback_result(request)
        assert result.ok and result.degraded
        assert result.engine == "lpt"
        inst = request.instance()
        assert verify_schedule(result.schedule(inst), inst).ok

    def test_engine_problem_pairs_matrix(self):
        from repro.service.registry import engine_problem_pairs

        pairs = engine_problem_pairs()
        assert ("lpt", "p_cmax") in pairs
        assert ("lpt", "q_cmax") in pairs
        assert ("ls", "q_cmax") in pairs
        assert ("ptas", "p_cmax") in pairs
        assert ("ptas", "q_cmax") not in pairs
        # Every registered engine appears, sorted by engine name.
        assert [p[0] for p in pairs] == sorted(p[0] for p in pairs)
        assert set(p[0] for p in pairs) == set(available_engines())

    def test_solve_to_result_rejects_unsupported_pair(self):
        # solve_to_result propagates; the server maps this to a typed
        # error response (UnsupportedProblemError is a ValueError).
        with pytest.raises(
            UnknownEngineError, match="does not support problem 'q_cmax'"
        ):
            solve_to_result(self._q_request("ptas"))


class TestSortedErrorMessages:
    """Engine-listing error messages enumerate names in sorted order, so
    the text is stable as engines are added (and diffable in logs)."""

    def test_unknown_engine_lists_sorted_names(self):
        with pytest.raises(UnknownEngineError) as err:
            get_engine("definitely-not-an-engine")
        listed = str(err.value).split("available: ")[1].split(", ")
        assert listed == sorted(listed)
        assert "cp" in listed

    def test_unsupported_problem_lists_sorted_problems(self):
        from repro.service.registry import UnsupportedProblemError

        with pytest.raises(UnsupportedProblemError) as err:
            get_engine("ptas", problem="q_cmax")
        message = str(err.value)
        solves = message.split("it solves: ")[1].split(")")[0].split(", ")
        assert solves == sorted(solves)
        supporting = message.split("supporting 'q_cmax': ")[1].split(", ")
        assert supporting == sorted(supporting)

    def test_exact_api_lists_sorted_methods(self):
        from repro.exact import solve_exact
        from repro.model.instance import Instance

        with pytest.raises(ValueError, match=r"\['bnb', 'brute', 'cp', 'ilp'\]"):
            solve_exact(Instance([1], 1), method="nope")

    def test_ptas_backend_error_lists_sorted_backends(self):
        from repro.core.ptas import BACKENDS, parallel_ptas
        from repro.model.instance import Instance

        with pytest.raises(ValueError) as err:
            parallel_ptas(Instance([1, 2], 1), 0.3, 2, backend="warp")
        assert str(sorted(BACKENDS)) in str(err.value)

    def test_cli_algorithms_listing_is_sorted(self):
        from repro.cli import ALGORITHMS

        assert list(ALGORITHMS) == sorted(ALGORITHMS)
