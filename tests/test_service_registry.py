"""Tests for the solver registry (:mod:`repro.service.registry`)."""

from __future__ import annotations

import pytest

from repro.model.verify import verify_schedule
from repro.service.registry import (
    UnknownEngineError,
    available_engines,
    canonical_engine_name,
    get_engine,
    solve_to_result,
)
from repro.service.requests import SolveRequest


def _request(engine: str, **kwargs) -> SolveRequest:
    return SolveRequest(
        times=(7, 7, 6, 6, 5, 4, 4, 3), machines=3, engine=engine, **kwargs
    )


class TestLookup:
    def test_required_engines_registered(self):
        names = available_engines()
        for required in ("ptas", "parallel_ptas", "lpt", "ls", "ilp"):
            assert required in names

    def test_dash_and_underscore_equivalent(self):
        assert get_engine("parallel-ptas") is get_engine("parallel_ptas")
        assert canonical_engine_name("Parallel-PTAS") == "parallel_ptas"

    def test_unknown_engine_message_lists_choices(self):
        with pytest.raises(UnknownEngineError, match="ptas"):
            get_engine("nope")

    def test_unknown_is_value_error(self):
        # The CLI and server both catch ValueError-compatible failures.
        with pytest.raises(ValueError):
            get_engine("nope")


class TestCapabilities:
    def test_ptas_family_supports_deadline(self):
        assert get_engine("ptas").supports_deadline
        assert get_engine("parallel_ptas").supports_deadline
        assert get_engine("parallel_ptas").parallelizable

    def test_baselines_do_not_need_deadline(self):
        for name in ("lpt", "ls", "multifit"):
            assert not get_engine(name).supports_deadline

    def test_guarantees(self):
        req = _request("ptas", eps=0.3)
        assert get_engine("ptas").guarantee(req) == pytest.approx(1.3)
        assert get_engine("lpt").guarantee(req) == pytest.approx(4 / 3 - 1 / 9)
        assert get_engine("ls").guarantee(req) == pytest.approx(2 - 1 / 3)
        assert get_engine("ilp").guarantee(req) == 1.0
        assert get_engine("ilp").exact


class TestSolveAdapters:
    @pytest.mark.parametrize(
        "engine", ["ptas", "parallel_ptas", "lpt", "ls", "multifit", "bnb"]
    )
    def test_produces_valid_schedule(self, engine):
        req = _request(engine, workers=2, backend="serial")
        inst = req.instance()
        schedule = get_engine(engine).solve(inst, req, None)
        assert verify_schedule(schedule, inst).ok
        assert schedule.makespan <= get_engine(engine).guarantee(req) * 14 + 1e-9

    def test_ptas_rejects_unknown_dp_engine(self):
        req = _request("ptas", dp_engine="bogus")
        with pytest.raises(UnknownEngineError, match="bogus"):
            get_engine("ptas").solve(req.instance(), req, None)

    def test_parallel_ptas_rejects_unknown_backend(self):
        req = _request("parallel_ptas", backend="bogus")
        with pytest.raises(UnknownEngineError, match="bogus"):
            get_engine("parallel_ptas").solve(req.instance(), req, None)


class TestBisectionModes:
    def request(self, **kwargs) -> SolveRequest:
        kwargs.setdefault("workers", 3)
        return SolveRequest(
            times=(9, 8, 7, 6, 5, 5, 4, 3, 2, 1),
            machines=3,
            engine="parallel_ptas",
            backend="serial",
            **kwargs,
        )

    def test_speculative_mode_solves(self):
        request = self.request(mode="speculative")
        result = solve_to_result(request)
        assert result.ok
        report = verify_schedule(result.schedule(request.instance()))
        assert report.ok, report.violations

    def test_speculative_matches_wavefront_guarantee(self):
        wavefront = solve_to_result(self.request(mode="wavefront"))
        speculative = solve_to_result(self.request(mode="speculative"))
        assert wavefront.guarantee == speculative.guarantee
        # Both certify a (1 + eps)-feasible schedule for the same target
        # family; makespans may differ only within the guarantee.
        assert speculative.makespan <= wavefront.guarantee * wavefront.makespan

    def test_auto_mode_solves(self):
        result = solve_to_result(self.request(mode="auto"))
        assert result.ok

    def test_auto_workers_resolve_server_side(self):
        result = solve_to_result(self.request(mode="wavefront", workers="auto"))
        assert result.ok

    def test_unknown_mode_rejected(self):
        with pytest.raises(UnknownEngineError, match="mode"):
            solve_to_result(self.request(mode="bogus"))
