"""Smoke tests for the figure experiments (:mod:`repro.experiments.figures`).

The full figures take minutes; these tests run tiny custom variants that
exercise every code path (aggregation, rendering, panel selection) in
seconds.  The actual paper-scale runs live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    FamilySeries,
    FigureResult,
    _num_instances,
    _run_speedup_figure,
)
from repro.experiments.harness import ExperimentConfig, run_instance
from repro.workloads.generator import make_instance


@pytest.fixture(scope="module")
def tiny_figure() -> FigureResult:
    """A miniature figure run: m=3, n=8, 1 instance per family, 2 cores."""
    return _run_speedup_figure(
        "Tiny", "test figure", m=3, n=8, scale="smoke", cores=(2, 4)
    )


class TestScales:
    def test_paper_is_twenty(self):
        assert _num_instances("paper") == 20

    def test_smoke_is_two(self):
        assert _num_instances("smoke") == 2

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            _num_instances("galactic")


class TestFigureStructure:
    def test_four_families(self, tiny_figure: FigureResult):
        assert len(tiny_figure.families) == 4
        labels = [f.label for f in tiny_figure.families]
        assert "U(1, 10)" in labels

    def test_series_shapes(self, tiny_figure: FigureResult):
        vs_ptas = tiny_figure.speedup_vs_ptas_series()
        assert len(vs_ptas) == 4
        for values in vs_ptas.values():
            assert len(values) == 2  # one per core count

    def test_speedups_positive(self, tiny_figure: FigureResult):
        for values in tiny_figure.speedup_vs_ip_series().values():
            assert all(v > 0 for v in values)

    def test_runtime_rows(self, tiny_figure: FigureResult):
        rows = tiny_figure.runtime_rows()
        assert len(rows) == 4
        for row in rows:
            assert len(row) == 6
            assert all(isinstance(x, float) for x in row[1:])

    def test_render_contains_panels(self, tiny_figure: FigureResult):
        out = tiny_figure.render()
        assert "(a) average speedup vs sequential PTAS" in out
        assert "(b) average speedup vs IP" in out
        assert "(c) average running times" in out

    def test_render_without_runtime_panel(self, tiny_figure: FigureResult):
        tiny_figure_no_c = FigureResult(
            name=tiny_figure.name,
            description=tiny_figure.description,
            m=tiny_figure.m,
            n=tiny_figure.n,
            cores=tiny_figure.cores,
            families=tiny_figure.families,
            include_runtime_panel=False,
        )
        assert "(c)" not in tiny_figure_no_c.render()


class TestFamilySeries:
    def test_mean_accessors(self):
        inst = make_instance("u_10", 3, 8, seed=0)
        cfg = ExperimentConfig(cores=(2,), ip_time_limit=5.0)
        series = FamilySeries("u_10", "U(1, 10)", [run_instance(inst, cfg)])
        assert series.mean_speedup_vs_ptas(2) > 0
        assert series.mean_speedup_vs_ip(2) > 0
        assert series.mean_seconds("ptas") >= 0
        assert series.mean_seconds("parallel", 2) >= 0
        assert series.mean_seconds("ip") >= 0
        assert series.mean_seconds("lpt") >= 0
        assert series.mean_seconds("ls") >= 0
        with pytest.raises(ValueError):
            series.mean_seconds("quantum")
