"""Unit tests for :mod:`repro.model.instance`."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.instance import Instance

from conftest import medium_instances


class TestConstruction:
    def test_basic_fields(self):
        inst = Instance([7, 3, 5, 5], num_machines=2)
        assert inst.processing_times == (7, 3, 5, 5)
        assert inst.num_machines == 2
        assert inst.num_jobs == 4
        assert inst.total_work == 20
        assert inst.max_time == 7

    def test_accepts_any_iterable(self):
        inst = Instance(iter([1, 2, 3]), num_machines=1)
        assert inst.processing_times == (1, 2, 3)

    def test_accepts_numpy_integers(self):
        import numpy as np

        inst = Instance(np.array([3, 4], dtype=np.int32), num_machines=2)
        assert inst.processing_times == (3, 4)
        assert all(isinstance(t, int) for t in inst.processing_times)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one job"):
            Instance([], num_machines=2)

    def test_rejects_zero_time(self):
        with pytest.raises(ValueError, match="positive"):
            Instance([3, 0], num_machines=1)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match="positive"):
            Instance([-1], num_machines=1)

    def test_rejects_fractional_time(self):
        with pytest.raises(TypeError):
            Instance([1.5], num_machines=1)

    def test_accepts_integral_float(self):
        assert Instance([2.0, 3.0], num_machines=1).processing_times == (2, 3)

    def test_rejects_bool_time(self):
        with pytest.raises(TypeError):
            Instance([True], num_machines=1)

    def test_rejects_zero_machines(self):
        with pytest.raises(ValueError, match="num_machines"):
            Instance([1], num_machines=0)

    def test_rejects_string_times(self):
        with pytest.raises(TypeError):
            Instance(["a"], num_machines=1)

    def test_immutable(self):
        inst = Instance([1, 2], num_machines=1)
        with pytest.raises(AttributeError):
            inst.num_machines = 5  # type: ignore[misc]

    def test_equality_and_hash(self):
        a = Instance([1, 2, 3], 2)
        b = Instance((1, 2, 3), 2)
        c = Instance([1, 2, 3], 3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestBounds:
    def test_trivial_lower_bound_average_dominates(self):
        inst = Instance([5, 5, 5, 5], num_machines=2)
        assert inst.trivial_lower_bound() == 10

    def test_trivial_lower_bound_max_dominates(self):
        inst = Instance([100, 1, 1], num_machines=3)
        assert inst.trivial_lower_bound() == 100

    def test_lower_bound_ceils_average(self):
        inst = Instance([5, 5, 5], num_machines=2)  # 15/2 = 7.5 -> 8
        assert inst.trivial_lower_bound() == 8

    def test_upper_bound(self):
        inst = Instance([5, 5, 5], num_machines=2)
        assert inst.trivial_upper_bound() == 8 + 5

    @given(medium_instances())
    def test_bounds_order(self, inst: Instance):
        assert inst.trivial_lower_bound() <= inst.trivial_upper_bound()

    @given(medium_instances())
    def test_lower_bound_formula(self, inst: Instance):
        expected = max(
            math.ceil(inst.total_work / inst.num_machines), inst.max_time
        )
        assert inst.trivial_lower_bound() == expected


class TestHelpers:
    def test_from_multiset(self):
        inst = Instance.from_multiset({5: 2, 9: 1}, num_machines=2)
        assert sorted(inst.processing_times) == [5, 5, 9]

    def test_from_multiset_pairs(self):
        inst = Instance.from_multiset([(3, 1), (2, 2)], num_machines=1)
        assert sorted(inst.processing_times) == [2, 2, 3]

    def test_from_multiset_rejects_negative_count(self):
        with pytest.raises(ValueError, match="non-negative"):
            Instance.from_multiset({5: -1}, num_machines=1)

    def test_with_machines(self):
        inst = Instance([1, 2], num_machines=1)
        other = inst.with_machines(3)
        assert other.num_machines == 3
        assert other.processing_times == inst.processing_times

    def test_sorted_jobs_desc_ties_by_index(self):
        inst = Instance([3, 5, 3, 5], num_machines=2)
        assert inst.sorted_jobs_desc() == [1, 3, 0, 2]

    @given(medium_instances())
    def test_sorted_jobs_desc_is_permutation(self, inst: Instance):
        order = inst.sorted_jobs_desc()
        assert sorted(order) == list(range(inst.num_jobs))
        times = [inst.processing_times[j] for j in order]
        assert times == sorted(times, reverse=True)

    def test_average_load(self):
        inst = Instance([3, 4, 5], num_machines=2)
        assert inst.average_load == 6.0
