"""Tests for :mod:`repro.experiments.reporting`."""

from __future__ import annotations

import csv

from repro.experiments.reporting import (
    ascii_table,
    format_value,
    render_series,
    write_csv,
)


class TestFormatValue:
    def test_int(self):
        assert format_value(42) == "42"

    def test_float_fixed(self):
        assert format_value(1.23456, precision=3) == "1.235"

    def test_large_float_scientific(self):
        assert "e" in format_value(1.5e7)

    def test_tiny_float_scientific(self):
        assert "e" in format_value(1.5e-5)

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_nan(self):
        assert format_value(float("nan")) == "nan"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"


class TestAsciiTable:
    def test_alignment(self):
        out = ascii_table(["col", "x"], [["a", 1], ["long", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("col")
        assert "|" in lines[0]
        assert set(lines[1]) <= {"-", "+"}
        # All rows share the same separator positions.
        assert len({line.index("|") for line in [lines[0], *lines[2:]]}) == 1

    def test_title(self):
        out = ascii_table(["a"], [[1]], title="My table")
        assert out.splitlines()[0] == "My table"

    def test_empty_rows(self):
        out = ascii_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_precision(self):
        out = ascii_table(["v"], [[1.23456]], precision=1)
        assert "1.2" in out and "1.23" not in out


class TestRenderSeries:
    def test_one_row_per_x(self):
        out = render_series("cores", [2, 4], {"fam": [1.5, 2.5]})
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "fam" in lines[0]

    def test_multiple_series_columns(self):
        out = render_series("x", [1], {"a": [0.1], "b": [0.2]})
        assert "a" in out and "b" in out


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ["a", "b"], [[1, 2], [3, 4]])
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_creates_parent_dirs(self, tmp_path):
        path = write_csv(tmp_path / "deep" / "dir" / "f.csv", ["x"], [[1]])
        assert path.exists()
