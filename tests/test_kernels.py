"""Tests for the shared vectorized wavefront kernel (:mod:`repro.core.kernels`).

The contract under test: every backend — serial, numpy-serial, thread,
process — fills a *bit-identical* ``int64`` table (one sentinel
convention, one recurrence implementation), and the results agree with
:func:`repro.core.dp.solve_table` including ``limit``-triggered
infeasible probes and degenerate instances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.dp import DPProblem, solve_table
from repro.core.kernels import (
    KERNEL_INFEASIBLE,
    LevelKernel,
    build_level_arrays,
    row_major_strides,
    table_opt,
    table_to_optional,
)
from repro.core.parallel_dp import compute_table, parallel_dp
from repro.parallel.executor import make_executor, shutdown_pools

from conftest import dp_problems

FAST_BACKENDS = ("serial", "numpy-serial", "thread")


def reference_optional_table(problem: DPProblem) -> list[int | None]:
    """Independent row-major sweep oracle (the seed's pure-Python loop)."""
    dims = problem.dims
    strides = problem.strides()
    sigma = problem.table_size
    configs = problem.configurations().configs
    offsets = [sum(s * st for s, st in zip(cfg, strides)) for cfg in configs]
    table: list[int | None] = [None] * sigma
    table[0] = 0
    v = [0] * len(dims)
    for flat in range(1, sigma):
        for c in range(len(dims) - 1, -1, -1):
            if v[c] + 1 < dims[c]:
                v[c] += 1
                break
            v[c] = 0
        best: int | None = None
        for cfg, offset in zip(configs, offsets):
            if all(cfg[c] <= v[c] for c in range(len(cfg))):
                prev = table[flat - offset]
                if prev is not None and (best is None or prev < best):
                    best = prev
        table[flat] = None if best is None else best + 1
    return table


class TestKernelPrimitives:
    def test_strides_match_problem(self, paper_example_problem):
        p = paper_example_problem
        assert row_major_strides(p.dims) == p.strides()

    def test_level_arrays_partition_the_table(self, paper_example_problem):
        p = paper_example_problem
        levels = build_level_arrays(p.dims)
        assert all(lv.dtype == np.int64 for lv in levels)
        seen = np.sort(np.concatenate(levels))
        assert np.array_equal(seen, np.arange(p.table_size))
        assert tuple(len(lv) for lv in levels) == (1, 2, 3, 3, 2, 1)

    def test_empty_dims_single_state(self):
        levels = build_level_arrays(())
        assert len(levels) == 1
        assert levels[0].tolist() == [0]

    def test_allocate_table_sentinel(self, paper_example_problem):
        kernel = LevelKernel.for_problem(paper_example_problem)
        table = kernel.allocate_table(5)
        assert table[0] == 0
        assert (table[1:] == KERNEL_INFEASIBLE).all()
        assert table_opt(table, 0) == 0
        assert table_opt(table, 1) is None

    def test_sweep_matches_reference_on_paper_example(
        self, paper_example_problem
    ):
        p = paper_example_problem
        kernel = LevelKernel.for_problem(p)
        table = kernel.allocate_table(p.table_size)
        kernel.sweep(table, build_level_arrays(p.dims))
        assert table_to_optional(table) == reference_optional_table(p)

    def test_update_counts_applicable_configs(self, paper_example_problem):
        p = paper_example_problem
        kernel = LevelKernel.for_problem(p)
        table = kernel.allocate_table(p.table_size)
        levels = build_level_arrays(p.dims)
        counted = {}
        for flats in levels[1:]:
            counts = kernel.update(table, flats, count_applicable=True)
            counted.update(zip(flats.tolist(), counts.tolist()))
        # |C_v| at the full vector N equals the whole configuration set
        # bounded by N — every configuration is applicable there.
        assert counted[p.table_size - 1] == len(p.configurations())
        # A level-1 state admits exactly its singleton configuration.
        one_hot_flat = int(levels[1][0])
        assert counted[one_hot_flat] == 1

    def test_kernel_is_picklable(self, paper_example_problem):
        import pickle

        kernel = LevelKernel.for_problem(paper_example_problem)
        clone = pickle.loads(pickle.dumps(kernel))
        p = paper_example_problem
        table = clone.allocate_table(p.table_size)
        clone.sweep(table, build_level_arrays(p.dims))
        assert table_to_optional(table) == reference_optional_table(p)


class TestBackendsBitIdentical:
    @given(dp_problems())
    @settings(max_examples=30)
    def test_property_tables_bit_identical(self, problem: DPProblem):
        if not problem.counts:
            return
        expected = reference_optional_table(problem)
        tables = {
            backend: compute_table(problem, workers, backend)
            for backend, workers in (
                ("numpy-serial", 1),
                ("serial", 3),
                ("thread", 4),
            )
        }
        for backend, table in tables.items():
            assert table.dtype == np.int64, backend
            assert table_to_optional(table) == expected, backend
            assert np.array_equal(table, tables["numpy-serial"]), backend

    @given(dp_problems())
    @settings(max_examples=20)
    def test_property_results_match_solve_table_with_limits(
        self, problem: DPProblem
    ):
        seq = solve_table(problem)
        assert seq.opt is not None
        # None, a passing limit, and a limit that triggers infeasibility.
        for limit in (None, seq.opt, seq.opt - 1):
            ref = solve_table(problem, limit=limit)
            for backend in FAST_BACKENDS:
                par = parallel_dp(problem, 3, backend, limit=limit)
                assert par.opt == ref.opt, (backend, limit)
                assert par.machine_configs == ref.machine_configs, (
                    backend,
                    limit,
                )

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_empty_counts_instance(self, backend):
        res = parallel_dp(DPProblem((), (), 7), 3, backend)
        assert res.opt == 0
        assert res.machine_configs == ()

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_all_zero_counts_instance(self, backend):
        res = parallel_dp(DPProblem((5, 9), (0, 0), 11), 3, backend)
        assert res.opt == 0
        assert res.machine_configs == ()

    def test_numpy_serial_registered_backend(self, paper_example_problem):
        res = parallel_dp(paper_example_problem, 1, "numpy-serial")
        assert res.engine == "parallel-numpy-serial"
        assert res.opt == 2


@pytest.mark.slow
class TestProcessBackendKernel:
    """Shared-memory process workers running the same kernel."""

    def test_table_bit_identical(self, paper_example_problem):
        p = paper_example_problem
        ref = compute_table(p, 1, "numpy-serial")
        table = compute_table(p, 2, "process")
        assert np.array_equal(table, ref)

    def test_persistent_pool_across_probes(self):
        """One reusable pool serves consecutive probes (different tables);
        the pool object is identical across probes and the workers'
        cached attachment from the first probe does not leak into the
        second — the lifecycle the bisection driver relies on."""
        shutdown_pools()
        try:
            probes = [
                DPProblem((4, 9), (3, 2), 13),
                DPProblem((6, 11), (2, 3), 30),
                DPProblem((3, 5, 7), (2, 1, 2), 15),
            ]
            ex = make_executor("process", 2, reuse=True)
            pool = ex.pool
            try:
                for problem in probes:
                    par = parallel_dp(problem, 2, "process", executor=ex)
                    seq = solve_table(problem)
                    assert par.opt == seq.opt
                    assert par.machine_configs == seq.machine_configs
            finally:
                ex.close()
            # Reopening with the same shape hands back the same pool.
            again = make_executor("process", 2, reuse=True)
            try:
                assert again.pool is pool
                res = parallel_dp(probes[0], 2, "process", executor=again)
                assert res.opt == solve_table(probes[0]).opt
            finally:
                again.close()
        finally:
            shutdown_pools()
