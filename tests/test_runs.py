"""Tests for tile planning (:mod:`repro.parallel.runs`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.kernels import build_level_arrays
from repro.parallel.runs import (
    KernelCostModel,
    TilePlan,
    build_tiles,
    level_sizes_from_dims,
    plan_tiles,
)


class TestCostModel:
    def test_zero_states_cost_nothing(self):
        assert KernelCostModel().level_seconds(0, 90) == 0.0

    def test_affine_in_states(self):
        model = KernelCostModel(alpha_seconds=1.0, beta_seconds=0.5)
        assert model.level_seconds(10, 2) == pytest.approx(2 * (1.0 + 5.0))

    def test_at_least_one_pass(self):
        model = KernelCostModel(alpha_seconds=1.0, beta_seconds=0.0)
        assert model.level_seconds(5, 0) == pytest.approx(1.0)


class TestLevelSizes:
    def test_matches_materialized_levels(self):
        dims = (3, 4, 2)
        sizes = level_sizes_from_dims(dims)
        levels = build_level_arrays(dims)
        assert sizes.tolist() == [len(lv) for lv in levels]

    def test_empty_dims(self):
        assert level_sizes_from_dims([]).tolist() == [1]

    def test_total_is_table_size(self):
        dims = (5, 3, 3, 2)
        assert int(level_sizes_from_dims(dims).sum()) == 5 * 3 * 3 * 2

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError):
            level_sizes_from_dims([2, 0])

    @given(st.lists(st.integers(min_value=1, max_value=5), max_size=5))
    def test_property_symmetric_and_positive(self, dims):
        sizes = level_sizes_from_dims(dims)
        assert (sizes > 0).all()
        assert sizes.tolist() == sizes.tolist()[::-1]  # palindromic widths


class TestTilePlan:
    def test_diagonal_enumeration(self):
        plan = TilePlan(block_bounds=(0, 5, 10), runs=((1, 3), (3, 5), (5, 6)))
        assert plan.num_blocks == 2
        assert plan.num_runs == 3
        assert plan.num_diagonals == 4
        assert plan.tiles_on_diagonal(0) == [(0, 0)]
        assert plan.tiles_on_diagonal(1) == [(0, 1), (1, 0)]
        assert plan.tiles_on_diagonal(3) == [(1, 2)]

    def test_every_tile_appears_exactly_once(self):
        plan = TilePlan(
            block_bounds=(0, 3, 6, 9), runs=((1, 2), (2, 4), (4, 5), (5, 7))
        )
        seen = [
            tile
            for t in range(plan.num_diagonals)
            for tile in plan.tiles_on_diagonal(t)
        ]
        assert sorted(seen) == [
            (b, r) for b in range(3) for r in range(4)
        ]

    def test_empty_plan_has_no_diagonals(self):
        assert TilePlan(block_bounds=(0, 1), runs=()).num_diagonals == 0


class TestPlanTiles:
    # A cost model heavy enough that multi-block plans never collapse.
    HEAVY = KernelCostModel(alpha_seconds=1e-3, beta_seconds=1e-4)

    def test_runs_cover_all_levels_contiguously(self):
        sizes = level_sizes_from_dims((4, 4, 3)).tolist()
        plan = plan_tiles(sizes, 48, 4, num_configs=8, cost=self.HEAVY)
        assert plan.runs[0][0] == 1
        assert plan.runs[-1][1] == len(sizes)
        for (_, end), (start, _) in zip(plan.runs, plan.runs[1:]):
            assert end == start

    def test_blocks_capped_by_widest_level(self):
        # Single-state levels everywhere: no parallelism to be had.
        sizes = [1, 1, 1, 1]
        plan = plan_tiles(sizes, 4, 8, cost=self.HEAVY)
        assert plan.num_blocks == 1

    def test_blocks_capped_by_table_size(self):
        plan = plan_tiles([1, 2], 3, 8, cost=self.HEAVY)
        assert plan.num_blocks <= 3

    def test_no_levels_yields_empty_plan(self):
        plan = plan_tiles([1], 1, 4)
        assert plan.runs == ()
        assert plan.num_diagonals == 0

    def test_light_probe_collapses_to_serial_tile(self):
        # Tiny table + default (cheap) cost model: barriers cost more
        # than they save, so the plan is one block × one run.
        sizes = level_sizes_from_dims((2, 2)).tolist()
        plan = plan_tiles(sizes, 4, 4)
        assert plan.num_blocks == 1
        assert plan.num_runs == 1

    def test_heavy_probe_gets_full_width(self):
        sizes = level_sizes_from_dims((6, 6, 5)).tolist()
        plan = plan_tiles(sizes, 180, 4, num_configs=64, cost=self.HEAVY)
        assert plan.num_blocks == 4
        assert plan.num_runs >= plan.num_blocks

    def test_single_worker_is_one_tile(self):
        sizes = level_sizes_from_dims((6, 6, 5)).tolist()
        plan = plan_tiles(sizes, 180, 1, num_configs=64, cost=self.HEAVY)
        assert (plan.num_blocks, plan.num_runs) == (1, 1)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            plan_tiles([1, 2], 2, 0)

    @given(
        st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=4),
        st.integers(min_value=1, max_value=8),
    )
    def test_property_plan_is_well_formed(self, dims, workers):
        sizes = level_sizes_from_dims(dims).tolist()
        table_size = int(np.prod(dims))
        plan = plan_tiles(sizes, table_size, workers, num_configs=4)
        assert plan.block_bounds[0] == 0
        assert plan.block_bounds[-1] == table_size
        assert list(plan.block_bounds) == sorted(plan.block_bounds)
        if table_size > 1:
            assert plan.runs[0][0] == 1
            assert plan.runs[-1][1] == len(sizes)


class TestBuildTiles:
    def test_tiles_partition_every_level(self):
        dims = (4, 3, 3)
        levels = build_level_arrays(dims)
        sizes = [len(lv) for lv in levels]
        plan = plan_tiles(
            sizes, 36, 3, num_configs=16, cost=TestPlanTiles.HEAVY
        )
        # Union of all tile chunks == union of levels 1..n', exactly once.
        seen = np.concatenate(
            [
                chunk
                for per_block in build_tiles(levels, plan)
                for chunks in per_block
                for chunk in chunks
            ]
        )
        expected = np.concatenate(levels[1:])
        assert sorted(seen.tolist()) == sorted(expected.tolist())

    def test_chunks_stay_level_aligned(self):
        dims = (4, 3, 3)
        levels = build_level_arrays(dims)
        sizes = [len(lv) for lv in levels]
        plan = plan_tiles(
            sizes, 36, 3, num_configs=16, cost=TestPlanTiles.HEAVY
        )
        tiles = build_tiles(levels, plan)
        for r, (lo, hi) in enumerate(plan.runs):
            for b in range(plan.num_blocks):
                chunks = tiles[r][b]
                assert len(chunks) == hi - lo  # empty chunks preserved
                lo_flat, hi_flat = (
                    plan.block_bounds[b],
                    plan.block_bounds[b + 1],
                )
                for i, chunk in enumerate(chunks):
                    level_states = set(levels[lo + i].tolist())
                    for flat in chunk.tolist():
                        assert flat in level_states
                        assert lo_flat <= flat < hi_flat

    def test_empty_levels_yield_empty_chunks(self):
        levels = [np.array([0]), np.array([1]), np.array([], dtype=np.int64)]
        plan = TilePlan(block_bounds=(0, 2), runs=((1, 3),))
        tiles = build_tiles(levels, plan)
        assert len(tiles[0][0]) == 2
        assert tiles[0][0][1].size == 0
