"""Tests for benchmark-file bookkeeping (:mod:`repro.io.benchjson`)."""

from __future__ import annotations

import json

from repro.io.benchjson import (
    canonical_json,
    instance_fingerprint,
    load_bench,
    merge_runs,
    stamp_runs,
    update_section,
)


class TestFingerprint:
    def test_key_order_does_not_matter(self):
        a = instance_fingerprint({"family": "u_10n", "m": 10, "n": 50})
        b = instance_fingerprint({"n": 50, "m": 10, "family": "u_10n"})
        assert a == b

    def test_any_field_change_changes_it(self):
        base = {"family": "u_10n", "m": 10, "n": 50, "k": 5}
        fp = instance_fingerprint(base)
        for field, value in [("m", 11), ("n", 51), ("k", 6), ("family", "exp")]:
            assert instance_fingerprint({**base, field: value}) != fp

    def test_short_and_hex(self):
        fp = instance_fingerprint({"x": 1})
        assert len(fp) == 12
        int(fp, 16)  # raises if not hex

    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'


class TestMergeRuns:
    def test_stamps_new_runs(self):
        merged = merge_runs(None, [{"backend": "thread", "workers": 2}], "abc")
        assert merged == [
            {"backend": "thread", "workers": 2, "fingerprint": "abc"}
        ]

    def test_new_replaces_same_key(self):
        old = stamp_runs(
            [{"backend": "thread", "workers": 2, "seconds": 9.0}], "abc"
        )
        new = [{"backend": "thread", "workers": 2, "seconds": 1.0}]
        merged = merge_runs(old, new, "abc")
        assert len(merged) == 1
        assert merged[0]["seconds"] == 1.0

    def test_distinct_keys_coexist(self):
        old = stamp_runs([{"backend": "thread", "workers": 2}], "abc")
        new = [{"backend": "thread", "workers": 4}]
        merged = merge_runs(old, new, "abc")
        assert [(r["backend"], r["workers"]) for r in merged] == [
            ("thread", 2),
            ("thread", 4),
        ]

    def test_stale_fingerprints_dropped(self):
        old = stamp_runs([{"backend": "serial", "workers": 1}], "old-instance")
        merged = merge_runs(old, [{"backend": "thread", "workers": 2}], "new")
        assert [r["backend"] for r in merged] == ["thread"]

    def test_unstamped_existing_runs_dropped(self):
        # Pre-fingerprint entries have no stamp at all — stale by definition.
        merged = merge_runs(
            [{"backend": "serial", "workers": 1}],
            [{"backend": "thread", "workers": 2}],
            "abc",
        )
        assert [r["backend"] for r in merged] == ["thread"]

    def test_custom_key_fields(self):
        old = stamp_runs(
            [{"backend": "thread", "workers": 2, "schedule": "levels"}], "abc"
        )
        new = [{"backend": "thread", "workers": 2, "schedule": "runs"}]
        merged = merge_runs(
            old, new, "abc", key_fields=("backend", "workers", "schedule")
        )
        assert sorted(r["schedule"] for r in merged) == ["levels", "runs"]

    def test_existing_order_preserved(self):
        old = stamp_runs(
            [
                {"backend": "a", "workers": 1},
                {"backend": "b", "workers": 1},
            ],
            "abc",
        )
        merged = merge_runs(old, [{"backend": "c", "workers": 1}], "abc")
        assert [r["backend"] for r in merged] == ["a", "b", "c"]


class TestBenchFile:
    def test_load_missing_is_empty(self, tmp_path):
        assert load_bench(tmp_path / "absent.json") == {}

    def test_update_section_preserves_others(self, tmp_path):
        path = tmp_path / "BENCH.json"
        update_section(path, "wavefront", {"runs": []})
        update_section(path, "store_latency", {"cold_ms": 3.0})
        doc = json.loads(path.read_text())
        assert set(doc) == {"wavefront", "store_latency"}
        # Rewriting one section leaves the other untouched.
        update_section(path, "wavefront", {"runs": [1]})
        doc = json.loads(path.read_text())
        assert doc["store_latency"] == {"cold_ms": 3.0}
        assert doc["wavefront"] == {"runs": [1]}

    def test_update_section_returns_document(self, tmp_path):
        path = tmp_path / "BENCH.json"
        doc = update_section(path, "s", {"x": 1})
        assert doc == {"s": {"x": 1}}
