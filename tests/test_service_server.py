"""Tests for the asyncio scheduling service (:mod:`repro.service.server`).

The unit tests drive :meth:`SolveService.handle` in-process; the
end-to-end test boots the JSON-lines TCP server and pushes 50+
concurrent mixed requests through real sockets — the acceptance
criterion of the subsystem.
"""

from __future__ import annotations

import asyncio
import json
import random

import pytest

from repro.model.instance import Instance
from repro.model.verify import verify_schedule
from repro.service.admission import AdmissionController
from repro.service.cache import ResultCache
from repro.service.requests import SolveRequest, SolveResult
from repro.service.server import (
    SolveService,
    send_op,
    start_server,
    submit,
)


def run(coro):
    return asyncio.run(coro)


async def _closed(service: SolveService, server=None):
    if server is not None:
        server.close()
        await server.wait_closed()
    await service.aclose()


def _req(times, machines=3, engine="lpt", **kwargs) -> SolveRequest:
    return SolveRequest(times=tuple(times), machines=machines, engine=engine, **kwargs)


class TestHandle:
    def test_solves_and_reports_guarantee(self):
        async def scenario():
            svc = SolveService(max_workers=2, batch_window=0.0)
            try:
                res = await svc.handle(
                    _req([7, 7, 6, 6, 5, 4, 4, 3], engine="ptas", request_id="x")
                )
            finally:
                await _closed(svc)
            return res

        res = run(scenario())
        assert res.ok and not res.degraded
        assert res.request_id == "x"
        assert res.guarantee == pytest.approx(1.3)
        inst = Instance((7, 7, 6, 6, 5, 4, 4, 3), 3)
        assert verify_schedule(res.schedule(inst), inst).ok

    def test_unknown_engine_is_clean_error(self):
        async def scenario():
            svc = SolveService(batch_window=0.0)
            try:
                return await svc.handle(_req([1, 2, 3], engine="nope"))
            finally:
                await _closed(svc)

        res = run(scenario())
        assert res.status == "error"
        assert "unknown engine" in res.error

    def test_invalid_instance_is_clean_error(self):
        async def scenario():
            svc = SolveService(batch_window=0.0)
            try:
                return await svc.handle(
                    SolveRequest(times=(), machines=2, engine="lpt")
                )
            finally:
                await _closed(svc)

        res = run(scenario())
        assert res.status == "error"

    def test_repeat_request_served_from_cache(self):
        async def scenario():
            svc = SolveService(batch_window=0.0)
            try:
                first = await svc.handle(_req([5, 4, 3, 2, 1], engine="ptas"))
                second = await svc.handle(_req([5, 4, 3, 2, 1], engine="ptas"))
                permuted = await svc.handle(_req([1, 2, 3, 4, 5], engine="ptas"))
            finally:
                await _closed(svc)
            return first, second, permuted, svc.cache.stats()

        first, second, permuted, stats = run(scenario())
        assert not first.cached and second.cached and permuted.cached
        assert first.makespan == second.makespan == permuted.makespan
        assert stats["hits"] == 2

    def test_q_cmax_request_end_to_end(self):
        async def scenario():
            svc = SolveService(batch_window=0.0)
            try:
                res = await svc.handle(
                    SolveRequest(
                        times=(37, 21, 18, 95, 42, 7),
                        machines=3,
                        problem="q_cmax",
                        speeds=(4, 2, 1),
                        engine="lpt",
                        request_id="q1",
                    )
                )
                counted = svc.metrics.counter("requests.problem.q_cmax").value
            finally:
                await _closed(svc)
            return res, counted

        res, counted = run(scenario())
        assert res.ok and not res.degraded
        assert counted == 1
        from repro.model.qinstance import QInstance

        inst = QInstance((37, 21, 18, 95, 42, 7), speeds=(4, 2, 1))
        sched = res.schedule(inst)
        assert verify_schedule(sched, inst).ok
        assert res.makespan == sched.makespan
        assert res.makespan <= res.guarantee * inst.trivial_lower_bound() + 1e-9

    def test_q_unsupported_engine_pair_is_clean_error(self):
        async def scenario():
            svc = SolveService(batch_window=0.0)
            try:
                return await svc.handle(
                    SolveRequest(
                        times=(5, 4),
                        machines=2,
                        problem="q_cmax",
                        speeds=(2, 1),
                        engine="ptas",
                    )
                )
            finally:
                await _closed(svc)

        res = run(scenario())
        assert res.status == "error"
        assert "does not support problem 'q_cmax'" in res.error
        assert "lpt" in res.error

    def test_deadline_degrades_to_lpt(self):
        async def scenario():
            svc = SolveService(batch_window=0.0)
            try:
                return await svc.handle(
                    _req(
                        range(1, 120),
                        machines=5,
                        engine="ptas",
                        eps=0.05,
                        deadline=0.0,
                    )
                )
            finally:
                await _closed(svc)

        res = run(scenario())
        assert res.ok and res.degraded
        assert res.engine == "lpt"
        m = 5
        assert res.guarantee == pytest.approx(4 / 3 - 1 / (3 * m))
        inst = Instance(tuple(range(1, 120)), m)
        assert verify_schedule(res.schedule(inst), inst).ok

    def test_degraded_results_are_not_cached(self):
        async def scenario():
            svc = SolveService(batch_window=0.0)
            try:
                await svc.handle(
                    _req(range(1, 80), engine="ptas", eps=0.1, deadline=0.0)
                )
                return await svc.handle(_req(range(1, 80), engine="ptas", eps=0.1))
            finally:
                await _closed(svc)

        res = run(scenario())
        assert not res.cached and not res.degraded

    def test_non_cancellable_engine_degrades_from_event_loop(self):
        async def scenario():
            svc = SolveService(batch_window=0.0)
            try:
                return await svc.handle(
                    _req([9, 8, 7, 6, 5, 4], engine="bnb", deadline=0.0)
                )
            finally:
                await _closed(svc)

        res = run(scenario())
        assert res.ok and res.degraded and res.engine == "lpt"

    def test_load_shedding_reports_retry_after(self):
        async def scenario():
            gate = AdmissionController(max_queue_depth=1)
            # Occupy the only slot so the real request is shed.
            gate.try_admit(_req([1, 2, 3]))
            svc = SolveService(admission=gate, batch_window=0.0)
            try:
                return await svc.handle(_req([4, 5, 6]))
            finally:
                await _closed(svc)

        res = run(scenario())
        assert res.status == "rejected"
        assert res.retry_after > 0
        assert "queue full" in res.error

    def test_batching_groups_compatible_small_requests(self):
        async def scenario():
            svc = SolveService(max_workers=2, batch_window=0.05, batch_max_size=8)
            try:
                reqs = [
                    _req([i + 1, 2 * i + 1, 5, 7], engine="lpt", request_id=str(i))
                    for i in range(6)
                ]
                results = await asyncio.gather(*(svc.handle(r) for r in reqs))
            finally:
                await _closed(svc)
            return results, svc.metrics.snapshot()

        results, snap = run(scenario())
        assert all(r.ok for r in results)
        assert {r.request_id for r in results} == {str(i) for i in range(6)}
        assert snap["counters"]["batches_total"] >= 1
        assert snap["histograms"]["batch_size"]["max"] >= 2

    def test_stats_exposes_every_subsystem(self):
        async def scenario():
            svc = SolveService(batch_window=0.0)
            try:
                await svc.handle(_req([3, 1, 2], engine="ptas"))
                return svc.stats()
            finally:
                await _closed(svc)

        snap = run(scenario())
        assert snap["counters"]["requests_total"] == 1
        assert "result_cache.hits" in snap["gauges"]
        assert "admission.queue_depth" in snap["gauges"]
        assert "dp_config_cache.hits" in snap["gauges"]
        assert "pool_utilization" in snap["gauges"]
        assert "request_latency_seconds" in snap["histograms"]

    def test_stats_exposes_trace_phase_summary(self):
        """Every solve runs under a per-request tracer whose per-phase
        breakdown lands in the metrics snapshot (``op=stats``)."""

        async def scenario():
            svc = SolveService(batch_window=0.0)
            try:
                await svc.handle(_req([7, 7, 6, 6, 5, 4, 4, 3], engine="ptas"))
                return svc.stats()
            finally:
                await _closed(svc)

        snap = run(scenario())
        assert snap["counters"]["trace.spans.solve"] == 1
        assert snap["counters"]["trace.spans.probe"] >= 1
        assert snap["counters"]["trace.counters.probes"] >= 1
        assert snap["histograms"]["trace.phase.dp.seconds"]["count"] >= 1


class TestProtocol:
    def test_ping_stats_malformed_and_shutdown(self):
        async def scenario():
            svc = SolveService(batch_window=0.0)
            server = await start_server(svc, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            pong = await send_op("127.0.0.1", port, "ping")
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"{broken\n")
            await writer.drain()
            broken = SolveResult.from_json((await reader.readline()).decode())
            writer.write(json.dumps({"op": "wat"}).encode() + b"\n")
            await writer.drain()
            unknown_op = SolveResult.from_json((await reader.readline()).decode())
            writer.write(json.dumps({"times": [1], "machines": 0}).encode() + b"\n")
            await writer.drain()
            bad_req = SolveResult.from_json((await reader.readline()).decode())
            writer.close()
            await writer.wait_closed()
            stats = await send_op("127.0.0.1", port, "stats")
            bye = await send_op("127.0.0.1", port, "shutdown")
            await _closed(svc, server)
            return pong, broken, unknown_op, bad_req, stats, bye, svc

        pong, broken, unknown_op, bad_req, stats, bye, svc = run(scenario())
        assert pong == {"op": "pong"}
        assert broken.status == "error" and "malformed" in broken.error
        assert unknown_op.status == "error" and "unknown op" in unknown_op.error
        assert bad_req.status == "error"
        assert stats["op"] == "stats" and "counters" in stats["stats"]
        assert bye == {"op": "bye"}
        assert svc._shutdown_event.is_set()


class TestEndToEnd:
    """The subsystem acceptance run: ≥50 concurrent requests, mixed
    engines and deadlines, over real sockets."""

    def test_fifty_concurrent_mixed_requests(self):
        rng = random.Random(1234)
        requests: list[SolveRequest] = []

        # 1) PTAS traffic over a handful of base instances, resubmitted
        #    shuffled — the permuted repeats must hit the cache.
        bases = [
            tuple(rng.randint(1, 40) for _ in range(rng.randint(8, 14)))
            for _ in range(5)
        ]
        for i in range(15):
            times = list(bases[i % len(bases)])
            rng.shuffle(times)
            requests.append(
                _req(times, machines=3, engine="ptas", request_id=f"ptas-{i}")
            )
        # 2) Parallel PTAS on both pooled and serial wavefront backends.
        for i in range(8):
            times = [rng.randint(1, 30) for _ in range(10)]
            requests.append(
                _req(
                    times,
                    machines=3,
                    engine="parallel-ptas",
                    backend="thread" if i % 2 else "serial",
                    workers=2,
                    request_id=f"par-{i}",
                )
            )
        # 3) Cheap baseline traffic (rides the micro-batcher).
        for i, engine in enumerate(
            ["lpt"] * 10 + ["ls"] * 6 + ["multifit"] * 6
        ):
            times = [rng.randint(1, 50) for _ in range(rng.randint(5, 20))]
            requests.append(
                _req(times, machines=4, engine=engine, request_id=f"{engine}-{i}")
            )
        # 4) A little exact traffic (dispatched unbatched).
        for i in range(3):
            times = [rng.randint(1, 9) for _ in range(7)]
            requests.append(
                _req(times, machines=2, engine="bnb", request_id=f"bnb-{i}")
            )
        # 5) Deadline-bound heavy PTAS solves that must degrade to LPT
        #    rather than time the client out.
        for i in range(3):
            times = [rng.randint(1, 400) for _ in range(150)]
            requests.append(
                _req(
                    times,
                    machines=6,
                    engine="ptas",
                    eps=0.04,
                    deadline=0.0 if i == 0 else 1e-4,
                    request_id=f"deadline-{i}",
                )
            )
        assert len(requests) >= 50

        async def scenario():
            svc = SolveService(
                max_workers=4,
                batch_window=0.005,
                cache=ResultCache(max_entries=256),
                admission=AdmissionController(
                    max_queue_depth=len(requests) + 8, max_inflight_ops=1e18
                ),
            )
            server = await start_server(svc, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            results = await asyncio.gather(
                *(submit("127.0.0.1", port, r, timeout=120.0) for r in requests)
            )
            stats = await send_op("127.0.0.1", port, "stats")
            await _closed(svc, server)
            return results, stats

        results, stats = run(scenario())

        by_id = {r.request_id: r for r in results}
        assert len(by_id) == len(requests)
        for request in requests:
            result = by_id[request.request_id]
            assert result.ok, (request.request_id, result.error)
            inst = request.instance()
            schedule = result.schedule(inst)
            report = verify_schedule(schedule, inst)
            assert report.ok, (request.request_id, report.violations)
            assert schedule.makespan == result.makespan

        gauges = stats["stats"]["gauges"]
        counters = stats["stats"]["counters"]
        # Permuted/repeated PTAS instances were served from the cache.
        assert gauges["result_cache.hits"] > 0
        # At least one deadline-bound request degraded to LPT.
        degraded = [r for r in results if r.degraded]
        assert degraded
        assert all(r.engine == "lpt" for r in degraded)
        assert counters["degradations_total"] >= len(degraded)
        assert counters["requests_total"] == len(requests)
