"""Unit + property tests for :mod:`repro.online` live schedules.

The load-bearing property (ISSUE 8): after **any** event sequence, the
tracked approximation ratio never exceeds the Della Croce–Scatamacchia
LPT bound — whenever an event would push it past, a full re-solve fires
inside that event and re-certifies the schedule.  Hypothesis drives
arbitrary arrival/departure sequences against the invariant.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.lpt import dcs_lpt_bound, lpt_worst_case_ratio
from repro.model.verify import verify_schedule
from repro.online import LiveSchedule
from repro.service.cache import ResultCache
from repro.service.metrics import MetricsRegistry


class TestDcsLptBound:
    def test_values(self):
        assert dcs_lpt_bound(1) == 1.0
        assert dcs_lpt_bound(2) == pytest.approx(7 / 6)
        assert dcs_lpt_bound(3) == pytest.approx(7 / 6)
        assert dcs_lpt_bound(4) == pytest.approx(4 / 3 - 1 / 9)

    def test_never_above_graham_and_strictly_below_from_three_machines(self):
        # m = 2 is the classic tight 7/6 case for both bounds; the DCS
        # refinement bites from m = 3 up (modulo float rounding at m=2).
        for m in range(2, 40):
            assert dcs_lpt_bound(m) <= lpt_worst_case_ratio(m) + 1e-12
        for m in range(3, 40):
            assert dcs_lpt_bound(m) < lpt_worst_case_ratio(m)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            dcs_lpt_bound(0)


class TestLiveScheduleBasics:
    def test_least_loaded_placement_in_lpt_order(self):
        live = LiveSchedule("t", 2, eps=0.2)
        # Batch is placed longest-first: 9 → m0, 7 → m1, 4 → m1 (load 11
        # vs 9... no: after 9,7 loads are (9,7); 4 joins the lighter m
        # holding 7).  Loads end balanced at (9, 11) — LPT's answer.
        live.add_jobs([("a", 4), ("b", 9), ("c", 7)])
        assert sorted(live.machine_loads) == [9, 11]
        assert live.makespan == 11
        assert live.repairs == 3
        assert live.job_machine("b") != live.job_machine("c")

    def test_schedule_verifies_after_events(self):
        live = LiveSchedule("t", 3, eps=0.2)
        live.add_jobs([(f"j{i}", 3 + (i * 5) % 11) for i in range(10)])
        live.remove_jobs(["j2", "j7"])
        report = verify_schedule(live.schedule())
        assert report.ok, report.violations

    def test_duplicate_and_unknown_jobs_are_rejected(self):
        live = LiveSchedule("t", 2)
        live.add_jobs([("a", 3)])
        with pytest.raises(ValueError, match="already"):
            live.add_jobs([("a", 5)])
        with pytest.raises(ValueError, match="not in"):
            live.remove_jobs(["ghost"])
        with pytest.raises(ValueError, match=">= 1"):
            live.add_jobs([("b", 0)])
        # Failed events must not have mutated state.
        assert live.num_jobs == 1 and live.makespan == 3

    def test_intra_batch_duplicates_are_rejected_before_mutation(self):
        live = LiveSchedule("t", 2)
        with pytest.raises(ValueError, match="duplicated within the batch"):
            live.add_jobs([("a", 5), ("a", 3)])
        assert live.num_jobs == 0 and live.makespan == 0
        assert live.machine_loads == (0, 0)
        live.add_jobs([("a", 5), ("b", 3)])
        with pytest.raises(ValueError, match="duplicated within the batch"):
            live.remove_jobs(["a", "a"])
        # The duplicate departure must not have partially applied.
        assert live.num_jobs == 2 and live.makespan == 5
        assert sum(live.machine_loads) == 8
        assert live.job_machine("a") is not None

    def test_empty_schedule_states(self):
        live = LiveSchedule("t", 2)
        assert live.makespan == 0
        assert live.tracked_ratio() == 1.0
        with pytest.raises(ValueError):
            live.instance()

    def test_threshold_floors_at_guarantee_and_inf_disables(self):
        assert LiveSchedule("t", 2, eps=0.2).threshold == pytest.approx(1.2)
        assert LiveSchedule("t", 4, eps=0.05).threshold == pytest.approx(
            dcs_lpt_bound(4)
        )
        live = LiveSchedule("t", 2, eps=0.2, drift_threshold=math.inf)
        for i in range(8):
            live.add_jobs([(f"j{i}", 5)])
        assert live.resolves == 0  # auto re-solve disabled

    def test_drift_triggers_resolve_within_event(self):
        # One job per event on m=2: loads (5,0),(5,5),(10,5) — ratio
        # 10/8 = 1.25 crosses the 1.2 threshold, so the third event must
        # re-solve and land back under the guarantee.
        live = LiveSchedule("t", 2, eps=0.2)
        fired = [live.add_jobs([(f"j{i}", 5)]) for i in range(3)]
        assert live.resolves == 1 and fired[-1] == 1
        assert live.tracked_ratio() <= 1.2 + 1e-9
        [point] = live.resolve_log
        assert point["ratio_before"] > point["ratio_after"]
        assert point["ratio_after"] <= point["guarantee"] + 1e-9

    def test_departure_resets_certified_bound(self):
        live = LiveSchedule("t", 2, eps=0.2)
        live.add_jobs([("a", 5), ("b", 5), ("c", 4)])
        live.resolve()
        assert live._cert_lb > 0
        resolves = live.resolves
        # Removing "c" leaves a perfectly balanced (5, 5) schedule: the
        # certified lower bound must be dropped (it covered a larger job
        # set) but no drift resolve is needed to stay under threshold.
        fired = live.remove_jobs(["c"])
        assert fired == 0 and live.resolves == resolves
        assert live._cert_lb == 0.0
        assert live.tracked_ratio() == pytest.approx(1.0)


class TestResolveReuse:
    def test_resolve_hits_shared_cache_for_twin_multisets(self):
        cache = ResultCache()
        first = LiveSchedule("t1", 2, eps=0.2, cache=cache)
        first.add_jobs([("a", 9), ("b", 7), ("c", 4)])
        assert first.resolve() is False  # solved, then cached
        # A different tenant with the same multiset (different ids and
        # arrival order) re-solves without running a solver.
        twin = LiveSchedule("t2", 2, eps=0.2, cache=cache)
        twin.add_jobs([("x", 4), ("y", 9), ("z", 7)])
        assert twin.resolve() is True
        assert twin.cached_resolves == 1
        assert twin.makespan == first.makespan
        assert verify_schedule(twin.schedule()).ok

    def test_metrics_gauges_are_published(self):
        metrics = MetricsRegistry()
        live = LiveSchedule("acme", 2, eps=0.2, metrics=metrics)
        live.add_jobs([("a", 3), ("b", 5)])
        snap = metrics.snapshot()
        assert snap["gauges"]["tenant.acme.jobs"] == 2.0
        assert snap["gauges"]["tenant.acme.repairs"] == 2.0
        assert "tenant.acme.ratio" in snap["gauges"]


class TestSnapshotRestore:
    def test_roundtrip_preserves_state_and_certified_bound(self):
        live = LiveSchedule("t", 3, eps=0.2, drift_threshold=1.3)
        live.add_jobs([(f"j{i}", 2 + (i * 7) % 13) for i in range(9)])
        live.resolve()
        live.remove_jobs(["j4"])
        snap = live.snapshot()
        restored = LiveSchedule.restore(snap)
        assert restored.tenant == live.tenant
        assert restored.machine_loads == live.machine_loads
        assert restored.makespan == live.makespan
        assert restored.tracked_ratio() == pytest.approx(live.tracked_ratio())
        assert restored._cert_lb == live._cert_lb
        assert restored.resolves == live.resolves
        assert restored.drift_threshold == 1.3
        assert verify_schedule(restored.schedule()).ok
        # The restored schedule keeps absorbing events correctly.
        restored.add_jobs([("new", 6)])
        assert verify_schedule(restored.schedule()).ok

    def test_restore_rejects_bad_snapshots(self):
        live = LiveSchedule("t", 2)
        live.add_jobs([("a", 3)])
        snap = live.snapshot()
        with pytest.raises(ValueError, match="version"):
            LiveSchedule.restore({**snap, "version": 99})
        with pytest.raises(ValueError, match="disagree"):
            LiveSchedule.restore({**snap, "assignment": {}})
        with pytest.raises(ValueError, match="machine"):
            LiveSchedule.restore({**snap, "assignment": {"a": 7}})


# ----------------------------------------------------------------------
# The drift-policy invariant, property-tested (ISSUE 8 satellite)
# ----------------------------------------------------------------------
#: eps chosen so the re-solve guarantee 1 + eps = 7/6 never exceeds the
#: DCS bound (min 7/6 at m in {2, 3}) — otherwise the bound would be
#: unreachable by construction, not by policy.
_EPS = 1.0 / 6.0

_event_seq = st.lists(
    st.one_of(
        st.tuples(
            st.just("add"),
            st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=4),
        ),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=10**6)),
    ),
    min_size=1,
    max_size=12,
)


class TestDriftInvariant:
    @settings(max_examples=60)
    @given(machines=st.integers(min_value=2, max_value=4), seq=_event_seq)
    def test_ratio_never_exceeds_dcs_bound_after_any_event(self, machines, seq):
        """After every applied event the tracked ratio is at most the
        DCS LPT bound: a drift past it must have fired a re-solve inside
        the event, and the re-solve lands at ≤ 1 + eps ≤ the bound."""
        bound = dcs_lpt_bound(machines)
        live = LiveSchedule("prop", machines, eps=_EPS)
        counter = 0
        for kind, payload in seq:
            if kind == "add":
                live.add_jobs(
                    [(f"j{counter + i}", t) for i, t in enumerate(payload)]
                )
                counter += len(payload)
            else:
                if not live.num_jobs:
                    continue
                ids = sorted(live._times)
                live.remove_jobs([ids[payload % len(ids)]])
            assert live.tracked_ratio() <= bound + 1e-9, (
                f"ratio {live.tracked_ratio()} above DCS bound {bound} "
                f"after a {kind} event without a re-solve"
            )
            if live.num_jobs:
                assert verify_schedule(live.schedule()).ok
        for point in live.resolve_log:
            # Log ratios are rounded to 6 decimals, which can tick just
            # past the exact guarantee — compare at that quantum.
            assert point["ratio_after"] <= point["guarantee"] + 1e-6
