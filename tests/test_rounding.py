"""Unit tests for :mod:`repro.core.rounding` (Alg. 1, lines 9–24)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rounding import (
    RoundedInstance,
    accuracy_parameter,
    is_long,
    round_instance,
    rounded_size,
    rounding_unit,
)
from repro.model.instance import Instance

from conftest import medium_instances


class TestAccuracyParameter:
    def test_paper_value(self):
        assert accuracy_parameter(0.3) == 4  # ceil(1/0.3) = ceil(3.33)

    def test_k_one_for_eps_ge_one(self):
        assert accuracy_parameter(1.0) == 1
        assert accuracy_parameter(2.0) == 1

    def test_exact_reciprocal(self):
        assert accuracy_parameter(0.5) == 2
        assert accuracy_parameter(0.25) == 4

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            accuracy_parameter(0.0)
        with pytest.raises(ValueError):
            accuracy_parameter(-0.1)


class TestUnitAndClassification:
    def test_unit_paper_example(self):
        # T=30, k=4 -> unit = ceil(30/16) = 2... but the paper's example
        # works with unit 1 because its T=30, k^2=16 gives ceil=2 and the
        # example's rounded sizes 6 and 11 are multiples of 1.  Check the
        # formula itself here.
        assert rounding_unit(30, 4) == 2
        assert rounding_unit(16, 4) == 1
        assert rounding_unit(17, 4) == 2

    def test_is_long_strict_threshold(self):
        # t > T/k is long.  T=30, k=4: threshold 7.5.
        assert not is_long(7, 30, 4)
        assert is_long(8, 30, 4)

    def test_is_long_integer_boundary(self):
        # T=28, k=4: threshold exactly 7 — t=7 must be short.
        assert not is_long(7, 28, 4)
        assert is_long(8, 28, 4)

    def test_rounded_size(self):
        assert rounded_size(11, 2) == 10
        assert rounded_size(10, 2) == 10
        assert rounded_size(9, 2) == 8

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            rounding_unit(0, 4)


class TestRoundInstance:
    def test_basic_split(self):
        inst = Instance([30, 25, 16, 7, 3], num_machines=2)
        r = round_instance(inst, target=30, k=4)
        # T/k = 7.5: long jobs are 30, 25, 16; short are 7, 3.
        assert r.short_jobs == (3, 4)
        assert r.num_long_jobs == 3
        # unit = 2: 30->30, 25->24, 16->16.
        assert r.class_sizes == (16, 24, 30)
        assert r.class_counts == (1, 1, 1)

    def test_class_members_track_original_indices(self):
        inst = Instance([9, 9, 10], num_machines=2)
        r = round_instance(inst, target=12, k=4)
        # unit = ceil(12/16) = 1: all long (> 3), classes 9 and 10.
        assert r.class_members == ((0, 1), (2,))

    def test_all_short_for_k1(self):
        inst = Instance([5, 5], num_machines=2)
        r = round_instance(inst, target=10, k=1)
        assert r.num_long_jobs == 0
        assert r.short_jobs == (0, 1)
        assert r.table_size == 1

    def test_rejects_job_exceeding_target(self):
        inst = Instance([50], num_machines=1)
        with pytest.raises(ValueError, match="exceeds the target"):
            round_instance(inst, target=40, k=4)

    def test_full_vector_matches_compressed(self):
        inst = Instance([9, 9, 10, 2], num_machines=2)
        r = round_instance(inst, target=12, k=4)
        full = r.full_vector()
        assert len(full) == 16
        assert sum(full) == r.num_long_jobs
        for size, count in zip(r.class_sizes, r.class_counts):
            assert full[size // r.unit - 1] == count

    def test_table_size_product(self):
        r = RoundedInstance(
            target=10,
            k=2,
            unit=3,
            class_sizes=(3, 6),
            class_counts=(2, 3),
            class_members=((0, 1), (2, 3, 4)),
            short_jobs=(),
        )
        assert r.table_size == 3 * 4


@given(medium_instances(), st.sampled_from([2, 3, 4, 5]))
@settings(max_examples=80)
def test_property_rounding_invariants(inst: Instance, k: int):
    """Structural invariants of the rounding stage for any target in the
    bisection range."""
    target = inst.trivial_upper_bound()
    r = round_instance(inst, target, k)
    t = inst.processing_times
    # Partition: every job is exactly once short or long.
    long_members = [j for members in r.class_members for j in members]
    assert sorted(long_members + list(r.short_jobs)) == list(range(inst.num_jobs))
    # Short jobs satisfy t <= T/k, long ones t > T/k.
    for j in r.short_jobs:
        assert t[j] * k <= target
    for j in long_members:
        assert t[j] * k > target
    # Rounded sizes are multiples of the unit, in (0, T], and each member
    # lies in [size, size + unit).
    assert r.unit == math.ceil(target / (k * k))
    for size, members in zip(r.class_sizes, r.class_members):
        assert size % r.unit == 0
        assert 0 < size <= target
        for j in members:
            assert size <= t[j] < size + r.unit
    # Class sizes strictly ascending, counts match membership.
    assert list(r.class_sizes) == sorted(set(r.class_sizes))
    assert r.class_counts == tuple(len(ms) for ms in r.class_members)
