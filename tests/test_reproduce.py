"""Tests for the one-shot reproduction driver
(:mod:`repro.experiments.reproduce`), with stubbed heavy steps."""

from __future__ import annotations

import pytest

from repro.experiments.golden import save_golden
from repro.experiments.manifest import read_manifest
from repro.experiments.reproduce import default_steps, reproduce_all


def fast_steps():
    return [
        ("alpha", lambda: "alpha panel"),
        ("beta", lambda: "beta panel"),
    ]


class TestReproduceAll:
    def test_writes_panels_and_manifest(self, tmp_path):
        run = reproduce_all(tmp_path, steps=fast_steps())
        assert (tmp_path / "alpha.txt").read_text() == "alpha panel\n"
        assert (tmp_path / "beta.txt").read_text() == "beta panel\n"
        manifest = read_manifest(tmp_path)
        assert manifest["extra"]["steps"] == ["alpha", "beta"]
        assert run.total_seconds >= 0
        assert "alpha" in run.render()

    def test_rejects_bad_scale(self, tmp_path):
        with pytest.raises(ValueError, match="scale"):
            reproduce_all(tmp_path, scale="galactic", steps=fast_steps())

    def test_golden_check_pass(self, tmp_path):
        golden = save_golden(tmp_path / "golden.json")
        run = reproduce_all(tmp_path / "out", steps=fast_steps(), golden_path=golden)
        assert (tmp_path / "out" / "golden_check.txt").read_text() == "golden: OK\n"
        assert run.steps[-1].name == "golden-check"

    def test_golden_check_failure_raises(self, tmp_path):
        import json

        golden = save_golden(tmp_path / "golden.json")
        doc = json.loads(golden.read_text())
        doc["entries"][0]["lpt_makespan"] += 1
        golden.write_text(json.dumps(doc))
        with pytest.raises(AssertionError, match="golden regression"):
            reproduce_all(tmp_path / "out", steps=fast_steps(), golden_path=golden)
        # The evidence file exists even on failure.
        assert (tmp_path / "out" / "golden_check.txt").exists()

    def test_default_steps_cover_all_artifacts(self):
        names = [name for name, _ in default_steps("smoke")]
        assert names == [
            "figure1",
            "table1",
            "figure2",
            "figure3",
            "figure4",
            "figure5",
            "table2",
            "table3",
        ]

    def test_cheap_default_steps_run(self, tmp_path):
        """figure1 and table1 are fast — run them for real."""
        steps = [s for s in default_steps("smoke") if s[0] in ("figure1", "table1")]
        run = reproduce_all(tmp_path, steps=steps)
        assert (tmp_path / "figure1.txt").exists()
        assert "Table I" in (tmp_path / "table1.txt").read_text()
        assert len(run.steps) == 2
