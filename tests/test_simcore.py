"""Unit tests for the simulated multicore machine (:mod:`repro.simcore`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore.costmodel import CostModel
from repro.simcore.machine import SimulatedMachine


ZERO_OVERHEAD = CostModel(
    state_overhead_ops=0.0,
    config_enumeration_factor=1.0,
    barrier_ops=0.0,
    dispatch_ops_per_chunk=0.0,
)


class TestCostModel:
    def test_state_cost(self):
        cm = CostModel(state_overhead_ops=2.0, config_enumeration_factor=25.0)
        assert cm.state_cost(10) == 2.0 + 250.0

    def test_level_fixed_cost_serial_is_free(self):
        cm = CostModel(barrier_ops=100.0, dispatch_ops_per_chunk=10.0)
        assert cm.level_fixed_cost(4, parallel=False) == 0.0

    def test_level_fixed_cost_parallel(self):
        cm = CostModel(barrier_ops=100.0, dispatch_ops_per_chunk=10.0)
        assert cm.level_fixed_cost(4, parallel=True) == 140.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CostModel(barrier_ops=-1.0)
        with pytest.raises(ValueError):
            CostModel(config_enumeration_factor=-0.5)

    def test_state_cost_rejects_negative_scans(self):
        with pytest.raises(ValueError):
            CostModel().state_cost(-1)


class TestSimulatedMachine:
    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError):
            SimulatedMachine(0)

    def test_round_robin_assignment(self):
        m = SimulatedMachine(2, ZERO_OVERHEAD)
        m.record_level(0, [1.0, 2.0, 3.0, 4.0])
        # proc0: 1+3=4, proc1: 2+4=6 -> level time 6, serial 10.
        assert m.parallel_ops == 6.0
        assert m.serial_ops == 10.0
        trace = m.traces[0]
        assert trace.processor_busy_ops == (4.0, 6.0)
        assert trace.busiest == 6.0

    def test_uniform_level_matches_explicit(self):
        a = SimulatedMachine(3, ZERO_OVERHEAD)
        a.record_level(0, [2.0] * 7)
        b = SimulatedMachine(3, ZERO_OVERHEAD)
        b.record_uniform_level(0, 7, 2.0)
        assert a.parallel_ops == b.parallel_ops
        assert a.serial_ops == b.serial_ops

    def test_speedup_bounded_by_processors(self):
        m = SimulatedMachine(4, ZERO_OVERHEAD)
        m.record_level(0, [1.0] * 100)
        assert m.speedup <= 4.0 + 1e-9
        assert m.speedup == pytest.approx(100 / 25)

    def test_single_item_level_no_speedup(self):
        m = SimulatedMachine(8, ZERO_OVERHEAD)
        m.record_level(0, [5.0])
        assert m.speedup == pytest.approx(1.0)

    def test_barrier_reduces_speedup(self):
        fast = SimulatedMachine(4, ZERO_OVERHEAD)
        slow = SimulatedMachine(4, CostModel(
            state_overhead_ops=0.0,
            config_enumeration_factor=1.0,
            barrier_ops=50.0,
            dispatch_ops_per_chunk=0.0,
        ))
        for m in (fast, slow):
            for level in range(10):
                m.record_level(level, [1.0] * 8)
        assert slow.speedup < fast.speedup

    def test_sequential_work_amdahl(self):
        m = SimulatedMachine(4, ZERO_OVERHEAD)
        m.record_level(0, [1.0] * 40)  # 10 parallel ops
        m.record_sequential(90.0)
        # serial = 130, parallel = 100 -> speedup 1.3
        assert m.speedup == pytest.approx(130 / 100)

    def test_empty_level(self):
        m = SimulatedMachine(4, ZERO_OVERHEAD)
        m.record_level(0, [])
        assert m.parallel_ops == 0.0
        assert m.speedup == 1.0

    def test_merge(self):
        a = SimulatedMachine(2, ZERO_OVERHEAD)
        a.record_level(0, [1.0, 2.0])
        b = SimulatedMachine(2, ZERO_OVERHEAD)
        b.record_level(0, [3.0])
        a.merge(b)
        assert a.serial_ops == 6.0
        assert len(a.traces) == 2

    def test_merge_rejects_mismatched_processors(self):
        with pytest.raises(ValueError):
            SimulatedMachine(2).merge(SimulatedMachine(3))

    def test_utilization(self):
        m = SimulatedMachine(2, ZERO_OVERHEAD)
        m.record_level(0, [1.0, 1.0])
        assert m.traces[0].utilization == pytest.approx(1.0)
        m.record_level(1, [1.0])
        assert m.traces[1].utilization == pytest.approx(0.5)


class TestCalibration:
    def test_calibrate_scales_linearly(self):
        m = SimulatedMachine(2, ZERO_OVERHEAD)
        m.record_level(0, [1.0] * 10)  # serial 10 ops, parallel 5 ops
        times = m.calibrate(2.0)
        assert times.serial_seconds == 2.0
        assert times.parallel_seconds == pytest.approx(1.0)
        assert times.seconds_per_op == pytest.approx(0.2)
        assert times.speedup == pytest.approx(2.0)

    def test_calibrate_zero_work(self):
        times = SimulatedMachine(2).calibrate(1.0)
        assert times.parallel_seconds == 0.0
        assert times.speedup == 1.0

    def test_calibrate_rejects_negative(self):
        with pytest.raises(ValueError):
            SimulatedMachine(2).calibrate(-1.0)


@given(
    st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=40),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60)
def test_property_parallel_time_bracketed(costs, p):
    """Zero-overhead level time lies between serial/P and serial, and the
    speedup never exceeds P."""
    m = SimulatedMachine(p, ZERO_OVERHEAD)
    m.record_level(0, costs)
    serial = sum(costs)
    assert serial / p - 1e-9 <= m.parallel_ops <= serial + 1e-9
    assert m.speedup <= p + 1e-9
    assert m.parallel_ops >= max(costs) - 1e-9
