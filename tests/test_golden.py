"""Golden-number regression (:mod:`repro.experiments.golden`).

``results/golden/smoke.json`` freezes every deterministic output of the
probe grid; this test fails on any behavioral drift.  Regenerate the
golden intentionally with ``python -m repro.experiments.golden`` after
reviewing the change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.golden import (
    GOLDEN_GRID,
    compute_golden,
    diff_against,
    load_golden,
    save_golden,
)

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "results" / "golden" / "smoke.json"


class TestGoldenInfrastructure:
    def test_compute_is_deterministic(self):
        a = compute_golden()
        b = compute_golden()
        assert a == b

    def test_grid_covers_every_family(self):
        from repro.workloads.families import FAMILIES

        assert {kind for kind, *_ in GOLDEN_GRID} == set(FAMILIES)

    def test_save_and_load_roundtrip(self, tmp_path):
        path = save_golden(tmp_path / "g.json")
        doc = load_golden(path)
        assert doc["entries"]
        assert diff_against(path) == []

    def test_load_rejects_foreign_json(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError, match="not a repro-pcmax-golden"):
            load_golden(p)

    def test_diff_detects_drift(self, tmp_path):
        path = save_golden(tmp_path / "g.json")
        doc = json.loads(path.read_text())
        doc["entries"][0]["lpt_makespan"] += 1
        path.write_text(json.dumps(doc))
        problems = diff_against(path)
        assert problems
        assert "lpt_makespan" in problems[0]

    def test_diff_detects_missing_entry(self, tmp_path):
        path = save_golden(tmp_path / "g.json")
        doc = json.loads(path.read_text())
        doc["entries"] = doc["entries"][1:]
        path.write_text(json.dumps(doc))
        assert any("missing" in p for p in diff_against(path))


class TestGoldenRegression:
    def test_no_drift_against_committed_golden(self):
        assert GOLDEN_PATH.exists(), (
            "golden file missing; run python -m repro.experiments.golden"
        )
        problems = diff_against(GOLDEN_PATH)
        assert problems == [], "\n".join(problems)

    def test_committed_golden_sanity(self):
        doc = load_golden(GOLDEN_PATH)
        for entry in doc["entries"]:
            # Structural sanity of the frozen numbers themselves.
            assert entry["ptas_final_target"] <= entry["ptas_makespan"] * 1.0
            assert entry["ptas_makespan"] <= entry["ls_makespan"] * 1.35
            for speedup in entry["simulated_speedups"].values():
                assert speedup >= 0.49
