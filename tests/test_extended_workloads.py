"""Tests for the extended workload generators (:mod:`repro.workloads.extended`)."""

from __future__ import annotations

import pytest

from repro.workloads.extended import (
    EXTENDED_GENERATORS,
    bimodal_instance,
    exponential_instance,
    normal_instance,
    zipf_instance,
)


class TestCommonContract:
    @pytest.mark.parametrize("name", sorted(EXTENDED_GENERATORS))
    def test_shape_and_positivity(self, name):
        gen = EXTENDED_GENERATORS[name]
        inst = gen(4, 25, seed=0)
        assert inst.num_machines == 4
        assert inst.num_jobs == 25
        assert all(t >= 1 for t in inst.processing_times)

    @pytest.mark.parametrize("name", sorted(EXTENDED_GENERATORS))
    def test_deterministic(self, name):
        gen = EXTENDED_GENERATORS[name]
        assert gen(3, 15, seed=9) == gen(3, 15, seed=9)

    @pytest.mark.parametrize("name", sorted(EXTENDED_GENERATORS))
    def test_solvable_by_the_library(self, name):
        """Every extended family feeds cleanly through the full PTAS."""
        from repro.core.ptas import ptas

        inst = EXTENDED_GENERATORS[name](3, 12, seed=2)
        result = ptas(inst, 0.3)
        assert result.schedule.is_valid()


class TestNormal:
    def test_centered_near_mean(self):
        inst = normal_instance(2, 3000, mean=100.0, std=10.0, seed=0)
        avg = inst.total_work / inst.num_jobs
        assert 95 <= avg <= 105

    def test_clips_at_one(self):
        inst = normal_instance(2, 500, mean=2.0, std=10.0, seed=0)
        assert min(inst.processing_times) == 1

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            normal_instance(2, 5, mean=0.0)
        with pytest.raises(ValueError):
            normal_instance(2, 5, std=-1.0)


class TestBimodal:
    def test_two_modes_visible(self):
        inst = bimodal_instance(
            2, 2000, short_mean=10, long_mean=200, long_fraction=0.3, seed=1
        )
        shorts = sum(1 for t in inst.processing_times if t < 100)
        longs = inst.num_jobs - shorts
        assert shorts > longs > 0
        assert 0.2 < longs / inst.num_jobs < 0.4

    def test_all_long_when_fraction_one(self):
        inst = bimodal_instance(2, 200, long_fraction=1.0, seed=0)
        # All draws come from the long mode N(200, 40); nearly all of the
        # mass sits far above the short mode's range.
        longs = sum(1 for t in inst.processing_times if t > 100)
        assert longs >= 0.95 * inst.num_jobs

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            bimodal_instance(2, 5, long_fraction=1.5)


class TestExponential:
    def test_mean_roughly_matches(self):
        inst = exponential_instance(2, 5000, mean=50.0, seed=0)
        avg = inst.total_work / inst.num_jobs
        assert 45 <= avg <= 55

    def test_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            exponential_instance(2, 5, mean=0.0)


class TestZipf:
    def test_capped(self):
        inst = zipf_instance(2, 3000, exponent=1.5, cap=500, seed=0)
        assert max(inst.processing_times) <= 500

    def test_heavy_tail_present(self):
        inst = zipf_instance(2, 3000, exponent=2.0, cap=10_000, seed=0)
        # Mostly ones, but some large values.
        assert min(inst.processing_times) == 1
        assert max(inst.processing_times) > 10

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            zipf_instance(2, 5, exponent=1.0)
        with pytest.raises(ValueError):
            zipf_instance(2, 5, cap=0)
