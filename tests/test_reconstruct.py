"""Tests for schedule reconstruction (:mod:`repro.core.reconstruct`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.reconstruct import (
    build_schedule,
    expand_long_jobs,
    fill_short_jobs_lpt,
)
from repro.core.rounding import round_instance
from repro.model.instance import Instance

from conftest import medium_instances


def rounded_for(inst: Instance, target: int, k: int = 4):
    return round_instance(inst, target, k)


class TestExpandLongJobs:
    def test_basic_expansion(self):
        # T=12, k=4: unit=1; jobs 9,9,10 all long (> 3); classes (9,), (10,).
        inst = Instance([9, 9, 10, 2], num_machines=2)
        r = rounded_for(inst, 12)
        groups = expand_long_jobs(inst, r, [(2, 0), (0, 1)])
        assert groups == [[0, 1], [2]]

    def test_queue_order_is_input_order(self):
        inst = Instance([9, 10, 9], num_machines=3)
        r = rounded_for(inst, 12)
        groups = expand_long_jobs(inst, r, [(1, 0), (1, 1)])
        # Class-9 members in input order: job 0 first, then job 2.
        assert groups == [[0], [2, 1], []]

    def test_rejects_too_many_machines(self):
        inst = Instance([9], num_machines=1)
        r = rounded_for(inst, 12)
        with pytest.raises(ValueError, match="machines"):
            expand_long_jobs(inst, r, [(1,), (0,)])

    def test_rejects_overdraw(self):
        inst = Instance([9], num_machines=2)
        r = rounded_for(inst, 12)
        with pytest.raises(ValueError, match="more class-0 jobs"):
            expand_long_jobs(inst, r, [(2,)])

    def test_rejects_undercover(self):
        inst = Instance([9, 9], num_machines=2)
        r = rounded_for(inst, 12)
        with pytest.raises(ValueError, match="cover all long jobs"):
            expand_long_jobs(inst, r, [(1,)])

    def test_rejects_wrong_config_arity(self):
        inst = Instance([9], num_machines=1)
        r = rounded_for(inst, 12)
        with pytest.raises(ValueError, match="classes"):
            expand_long_jobs(inst, r, [(1, 0)])


class TestFillShortLPT:
    def test_least_loaded_first(self):
        inst = Instance([10, 6, 3, 2], num_machines=2)
        groups = [[0], [1]]  # loads 10 and 6
        fill_short_jobs_lpt(inst, groups, [2, 3])
        # Job 2 (t=3) -> machine 1 (load 9); job 3 (t=2) -> machine 1 (9<10).
        assert groups == [[0], [1, 2, 3]]

    def test_lpt_order_not_input_order(self):
        inst = Instance([5, 1, 4], num_machines=2)
        groups = [[], []]
        fill_short_jobs_lpt(inst, groups, [0, 1, 2])
        # Descending times: job 0 (5) -> m0; job 2 (4) -> m1; job 1 (1) -> m1.
        assert groups == [[0], [2, 1]]

    def test_tie_breaks_toward_low_machine_index(self):
        inst = Instance([3, 3], num_machines=2)
        groups = [[], []]
        fill_short_jobs_lpt(inst, groups, [0, 1])
        assert groups == [[0], [1]]


class TestBuildSchedule:
    def test_full_pipeline(self):
        inst = Instance([9, 9, 10, 2, 1], num_machines=2)
        r = rounded_for(inst, 12)
        sched = build_schedule(inst, r, [(2, 0), (0, 1)])
        assert sched.is_valid()
        # Long jobs as configured, shorts LPT'd onto the lighter machine.
        assert set(sched.assignment[1]) >= {2}
        assert sched.makespan >= inst.trivial_lower_bound() - 5  # sanity


@given(medium_instances())
@settings(max_examples=50)
def test_property_reconstruction_partitions_jobs(inst: Instance):
    """Using the real DP witness, reconstruction always yields a valid
    schedule containing every job exactly once."""
    from repro.core.dp import DPProblem, solve

    target = inst.trivial_upper_bound()
    r = round_instance(inst, target, 4)
    problem = DPProblem(r.class_sizes, r.class_counts, target)
    result = solve(problem, "table")
    assert result.opt is not None
    if result.opt > inst.num_machines:
        return  # UB decision can exceed m only transiently; skip
    sched = build_schedule(inst, r, result.machine_configs)
    assert sched.is_valid()
    assert sum(sched.machine_loads) == inst.total_work
