"""Tests for the wavefront Parallel DP (:mod:`repro.core.parallel_dp`).

Key invariants: the level index partitions the table by anti-diagonal;
every backend fills the table identically to the sequential sweep; the
simulated backend's accounting is internally consistent.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.dp import DPProblem, solve_table
from repro.core.parallel_dp import (
    BACKENDS,
    build_level_index,
    parallel_dp,
)
from repro.simcore.costmodel import CostModel
from repro.simcore.machine import SimulatedMachine

from conftest import dp_problems
from test_dp_engines import check_witness

FAST_BACKENDS = ("serial", "thread", "simulated")


class TestLevelIndex:
    def test_paper_example_levels(self, paper_example_problem):
        idx = build_level_index(paper_example_problem)
        assert idx.num_levels == 6  # n' + 1 = 5 + 1
        assert idx.sizes == (1, 2, 3, 3, 2, 1)

    def test_levels_partition_all_states(self, paper_example_problem):
        idx = build_level_index(paper_example_problem)
        seen = sorted(i for level in idx.levels for i in level)
        assert seen == list(range(paper_example_problem.table_size))

    def test_level_members_have_matching_sum(self, paper_example_problem):
        from repro.core.dp import unrank

        p = paper_example_problem
        strides = p.strides()
        idx = build_level_index(p)
        for l, level in enumerate(idx.levels):
            for flat in level:
                assert sum(unrank(flat, p.dims, strides)) == l

    def test_one_dimensional_table(self):
        p = DPProblem((5,), (4,), 10)
        idx = build_level_index(p)
        assert idx.sizes == (1, 1, 1, 1, 1)

    @given(dp_problems())
    @settings(max_examples=30, deadline=None)
    def test_property_level_count(self, problem: DPProblem):
        if not problem.counts:
            return
        idx = build_level_index(problem)
        assert idx.num_levels == problem.num_long_jobs + 1
        assert sum(idx.sizes) == problem.table_size


class TestBackendsAgree:
    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_paper_example(self, paper_example_problem, backend, workers):
        seq = solve_table(paper_example_problem)
        par = parallel_dp(paper_example_problem, workers, backend)
        assert par.opt == seq.opt
        # Backtracking is deterministic over the identical table, so the
        # witnesses match exactly — the paper's "same schedule" property.
        assert par.machine_configs == seq.machine_configs
        assert par.engine == f"parallel-{backend}"

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_empty_problem(self, backend):
        res = parallel_dp(DPProblem((), (), 5), 4, backend)
        assert res.opt == 0

    def test_unknown_backend(self, paper_example_problem):
        with pytest.raises(ValueError, match="unknown backend"):
            parallel_dp(paper_example_problem, 2, "gpu")

    def test_invalid_workers(self, paper_example_problem):
        with pytest.raises(ValueError, match="num_workers"):
            parallel_dp(paper_example_problem, 0, "serial")

    def test_limit_semantics(self):
        p = DPProblem((7,), (4,), 10)  # OPT = 4
        assert parallel_dp(p, 2, "serial", limit=3).opt is None
        assert parallel_dp(p, 2, "serial", limit=4).opt == 4

    @given(dp_problems())
    @settings(max_examples=40, deadline=None)
    def test_property_serial_backend_matches_table(self, problem: DPProblem):
        seq = solve_table(problem)
        par = parallel_dp(problem, 3, "serial")
        assert par.opt == seq.opt
        assert par.machine_configs == seq.machine_configs

    @given(dp_problems())
    @settings(max_examples=15, deadline=None)
    def test_property_thread_backend_matches_table(self, problem: DPProblem):
        seq = solve_table(problem)
        par = parallel_dp(problem, 4, "thread")
        assert par.opt == seq.opt
        assert par.machine_configs == seq.machine_configs


@pytest.mark.slow
class TestProcessBackend:
    """The shared-memory process backend (spawns real workers; slower)."""

    def test_paper_example(self, paper_example_problem):
        seq = solve_table(paper_example_problem)
        par = parallel_dp(paper_example_problem, 2, "process")
        assert par.opt == seq.opt
        assert par.machine_configs == seq.machine_configs

    def test_witness_valid(self):
        p = DPProblem((4, 9), (3, 2), 13)
        res = parallel_dp(p, 2, "process")
        assert res.opt is not None
        check_witness(p, res.opt, res.machine_configs)


class TestSimulatedBackend:
    def test_machine_receives_accounting(self, paper_example_problem):
        machine = SimulatedMachine(4, CostModel())
        res = parallel_dp(
            paper_example_problem, 4, "simulated", machine=machine
        )
        assert res.opt == 2
        assert machine.serial_ops > 0
        assert machine.parallel_ops > 0
        # 6 DP levels + the D-array parallel-for.
        assert len(machine.traces) == 7

    def test_single_worker_has_no_overheads(self, paper_example_problem):
        machine = SimulatedMachine(1, CostModel())
        parallel_dp(paper_example_problem, 1, "simulated", machine=machine)
        assert machine.parallel_ops == pytest.approx(machine.serial_ops)
        assert machine.speedup == pytest.approx(1.0)

    def test_speedup_increases_with_workers_on_wide_table(self):
        # A wide two-class table with plenty of per-level parallelism.
        p = DPProblem((5, 7), (10, 10), 24)
        speedups = []
        for workers in (1, 2, 4):
            machine = SimulatedMachine(workers, CostModel())
            parallel_dp(p, workers, "simulated", machine=machine)
            speedups.append(machine.speedup)
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[0] < speedups[1] < speedups[2]

    def test_aggregation_across_calls(self, paper_example_problem):
        machine = SimulatedMachine(2, CostModel())
        parallel_dp(paper_example_problem, 2, "simulated", machine=machine)
        ops_one = machine.serial_ops
        parallel_dp(paper_example_problem, 2, "simulated", machine=machine)
        assert machine.serial_ops == pytest.approx(2 * ops_one)

    def test_results_identical_to_serial(self, paper_example_problem):
        seq = parallel_dp(paper_example_problem, 4, "serial")
        sim = parallel_dp(paper_example_problem, 4, "simulated")
        assert sim.opt == seq.opt
        assert sim.machine_configs == seq.machine_configs


class TestStats:
    def test_collect_stats(self, paper_example_problem):
        res = parallel_dp(paper_example_problem, 2, "serial", collect_stats=True)
        assert res.stats is not None
        assert res.stats.sigma == 12
        assert res.stats.level_sizes == (1, 2, 3, 3, 2, 1)
        assert res.stats.num_configs == 7
