"""Tests for the wavefront Parallel DP (:mod:`repro.core.parallel_dp`).

Key invariants: the level index partitions the table by anti-diagonal;
every backend fills the table identically to the sequential sweep; the
simulated backend's accounting is internally consistent.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.dp import DPProblem, solve_table
from repro.core.parallel_dp import (
    BACKENDS,
    build_level_index,
    parallel_dp,
)
from repro.simcore.costmodel import CostModel
from repro.simcore.machine import SimulatedMachine

from conftest import dp_problems
from test_dp_engines import check_witness

FAST_BACKENDS = ("serial", "thread", "simulated")


class TestLevelIndex:
    def test_paper_example_levels(self, paper_example_problem):
        idx = build_level_index(paper_example_problem)
        assert idx.num_levels == 6  # n' + 1 = 5 + 1
        assert idx.sizes == (1, 2, 3, 3, 2, 1)

    def test_levels_partition_all_states(self, paper_example_problem):
        idx = build_level_index(paper_example_problem)
        seen = sorted(i for level in idx.levels for i in level)
        assert seen == list(range(paper_example_problem.table_size))

    def test_level_members_have_matching_sum(self, paper_example_problem):
        from repro.core.dp import unrank

        p = paper_example_problem
        strides = p.strides()
        idx = build_level_index(p)
        for l, level in enumerate(idx.levels):
            for flat in level:
                assert sum(unrank(flat, p.dims, strides)) == l

    def test_one_dimensional_table(self):
        p = DPProblem((5,), (4,), 10)
        idx = build_level_index(p)
        assert idx.sizes == (1, 1, 1, 1, 1)

    @given(dp_problems())
    @settings(max_examples=30)
    def test_property_level_count(self, problem: DPProblem):
        if not problem.counts:
            return
        idx = build_level_index(problem)
        assert idx.num_levels == problem.num_long_jobs + 1
        assert sum(idx.sizes) == problem.table_size


class TestBackendsAgree:
    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_paper_example(self, paper_example_problem, backend, workers):
        seq = solve_table(paper_example_problem)
        par = parallel_dp(paper_example_problem, workers, backend)
        assert par.opt == seq.opt
        # Backtracking is deterministic over the identical table, so the
        # witnesses match exactly — the paper's "same schedule" property.
        assert par.machine_configs == seq.machine_configs
        assert par.engine == f"parallel-{backend}"

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_empty_problem(self, backend):
        res = parallel_dp(DPProblem((), (), 5), 4, backend)
        assert res.opt == 0

    def test_unknown_backend(self, paper_example_problem):
        with pytest.raises(ValueError, match="unknown backend"):
            parallel_dp(paper_example_problem, 2, "gpu")

    def test_invalid_workers(self, paper_example_problem):
        with pytest.raises(ValueError, match="num_workers"):
            parallel_dp(paper_example_problem, 0, "serial")

    def test_limit_semantics(self):
        p = DPProblem((7,), (4,), 10)  # OPT = 4
        assert parallel_dp(p, 2, "serial", limit=3).opt is None
        assert parallel_dp(p, 2, "serial", limit=4).opt == 4

    @given(dp_problems())
    @settings(max_examples=40)
    def test_property_serial_backend_matches_table(self, problem: DPProblem):
        seq = solve_table(problem)
        par = parallel_dp(problem, 3, "serial")
        assert par.opt == seq.opt
        assert par.machine_configs == seq.machine_configs

    @given(dp_problems())
    @settings(max_examples=15)
    def test_property_thread_backend_matches_table(self, problem: DPProblem):
        seq = solve_table(problem)
        par = parallel_dp(problem, 4, "thread")
        assert par.opt == seq.opt
        assert par.machine_configs == seq.machine_configs


@pytest.mark.slow
class TestProcessBackend:
    """The shared-memory process backend (spawns real workers; slower)."""

    def test_paper_example(self, paper_example_problem):
        seq = solve_table(paper_example_problem)
        par = parallel_dp(paper_example_problem, 2, "process")
        assert par.opt == seq.opt
        assert par.machine_configs == seq.machine_configs

    def test_witness_valid(self):
        p = DPProblem((4, 9), (3, 2), 13)
        res = parallel_dp(p, 2, "process")
        assert res.opt is not None
        check_witness(p, res.opt, res.machine_configs)


class TestSimulatedBackend:
    def test_machine_receives_accounting(self, paper_example_problem):
        machine = SimulatedMachine(4, CostModel())
        res = parallel_dp(
            paper_example_problem, 4, "simulated", machine=machine
        )
        assert res.opt == 2
        assert machine.serial_ops > 0
        assert machine.parallel_ops > 0
        # 6 DP levels + the D-array parallel-for.
        assert len(machine.traces) == 7

    def test_single_worker_has_no_overheads(self, paper_example_problem):
        machine = SimulatedMachine(1, CostModel())
        parallel_dp(paper_example_problem, 1, "simulated", machine=machine)
        assert machine.parallel_ops == pytest.approx(machine.serial_ops)
        assert machine.speedup == pytest.approx(1.0)

    def test_speedup_increases_with_workers_on_wide_table(self):
        # A wide two-class table with plenty of per-level parallelism.
        p = DPProblem((5, 7), (10, 10), 24)
        speedups = []
        for workers in (1, 2, 4):
            machine = SimulatedMachine(workers, CostModel())
            parallel_dp(p, workers, "simulated", machine=machine)
            speedups.append(machine.speedup)
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[0] < speedups[1] < speedups[2]

    def test_aggregation_across_calls(self, paper_example_problem):
        machine = SimulatedMachine(2, CostModel())
        parallel_dp(paper_example_problem, 2, "simulated", machine=machine)
        ops_one = machine.serial_ops
        parallel_dp(paper_example_problem, 2, "simulated", machine=machine)
        assert machine.serial_ops == pytest.approx(2 * ops_one)

    def test_results_identical_to_serial(self, paper_example_problem):
        seq = parallel_dp(paper_example_problem, 4, "serial")
        sim = parallel_dp(paper_example_problem, 4, "simulated")
        assert sim.opt == seq.opt
        assert sim.machine_configs == seq.machine_configs


class TestStats:
    def test_collect_stats(self, paper_example_problem):
        res = parallel_dp(paper_example_problem, 2, "serial", collect_stats=True)
        assert res.stats is not None
        assert res.stats.sigma == 12
        assert res.stats.level_sizes == (1, 2, 3, 3, 2, 1)
        assert res.stats.num_configs == 7


class TestTiledSchedule:
    """The batched (runs) schedule: bit-identical tables, one barrier per
    tile diagonal, per-worker utilization counters."""

    def wide_problem(self) -> DPProblem:
        return DPProblem((3, 5, 7), (3, 3, 2), 40)

    def explicit_plan(self, problem: DPProblem, blocks: int) -> "TilePlan":
        from repro.core.kernels import LevelKernel
        from repro.parallel.runs import KernelCostModel, plan_tiles

        index = build_level_index(problem)
        return plan_tiles(
            index.sizes,
            problem.table_size,
            blocks,
            num_configs=LevelKernel.for_problem(problem).num_configs,
            cost=KernelCostModel(alpha_seconds=1e-3, beta_seconds=1e-4),
        )

    @pytest.mark.parametrize("backend", ("serial", "thread"))
    @pytest.mark.parametrize("blocks", (2, 3, 4))
    def test_multi_block_plan_bit_identical(self, backend, blocks):
        from repro.core.parallel_dp import compute_table

        problem = self.wide_problem()
        plan = self.explicit_plan(problem, blocks)
        assert plan.num_blocks == blocks  # the heavy cost model keeps B
        reference = compute_table(problem, 1, "numpy-serial")
        table = compute_table(
            problem, blocks, backend, schedule="runs", plan=plan
        )
        assert (table == reference).all()

    def test_runs_schedule_is_default_for_executor_backends(self):
        from repro.core.context import SolveContext
        from repro.core.parallel_dp import compute_table
        from repro.obs import Tracer

        problem = self.wide_problem()
        tracer = Tracer()
        compute_table(
            problem, 2, "serial", ctx=SolveContext(tracer=tracer),
            plan=self.explicit_plan(problem, 2),
        )
        assert tracer.find("run")
        assert not tracer.find("level")

    def test_one_run_span_per_diagonal(self):
        from repro.core.context import SolveContext
        from repro.core.parallel_dp import compute_table
        from repro.obs import Tracer

        problem = self.wide_problem()
        plan = self.explicit_plan(problem, 3)
        tracer = Tracer()
        compute_table(
            problem, 3, "serial", schedule="runs", plan=plan,
            ctx=SolveContext(tracer=tracer),
        )
        assert len(tracer.find("run")) == plan.num_diagonals
        assert tracer.counters["runs"] == plan.num_diagonals

    def test_worker_utilization_counters(self):
        from repro.core.context import SolveContext
        from repro.core.parallel_dp import compute_table
        from repro.service.metrics import MetricsRegistry

        problem = self.wide_problem()
        plan = self.explicit_plan(problem, 2)
        registry = MetricsRegistry()
        compute_table(
            problem, 2, "serial", schedule="runs", plan=plan,
            ctx=SolveContext(metrics=registry),
        )
        counters = registry.snapshot()["counters"]
        per_worker = [
            counters[f"wavefront.worker.{b}.states"]
            for b in range(plan.num_blocks)
        ]
        # Every non-origin state is attributed to exactly one worker.
        assert sum(per_worker) == problem.table_size - 1
        assert all(s > 0 for s in per_worker)
        assert counters["wavefront.diagonals"] == plan.num_diagonals

    def test_overdecomposed_plan_folds_onto_workers(self):
        from repro.core.context import SolveContext
        from repro.core.parallel_dp import compute_table
        from repro.service.metrics import MetricsRegistry

        problem = self.wide_problem()
        plan = self.explicit_plan(problem, 4)  # 4 blocks on 2 workers
        registry = MetricsRegistry()
        reference = compute_table(problem, 1, "numpy-serial")
        table = compute_table(
            problem, 2, "serial", schedule="runs", plan=plan,
            ctx=SolveContext(metrics=registry),
        )
        assert (table == reference).all()
        counters = registry.snapshot()["counters"]
        assert "wavefront.worker.0.states" in counters
        assert "wavefront.worker.2.states" not in counters  # folded % 2
        total = sum(
            counters[f"wavefront.worker.{b}.states"] for b in range(2)
        )
        assert total == problem.table_size - 1

    def test_rejects_unknown_schedule(self):
        from repro.core.parallel_dp import compute_table

        with pytest.raises(ValueError, match="schedule"):
            compute_table(self.wide_problem(), 2, "serial", schedule="zigzag")

    def test_simulated_runs_speedup_monotone(self):
        from repro.core.parallel_dp import compute_table

        # Big enough that the planner never collapses to a serial tile
        # (tiny tables legitimately model no parallel win at any width).
        problem = DPProblem((2, 3, 5, 7), (4, 4, 3, 2), 60)
        previous = 0.0
        for workers in (1, 2, 4):
            machine = SimulatedMachine(workers)
            compute_table(
                problem, workers, "simulated", machine=machine,
                schedule="runs",
            )
            assert machine.speedup >= previous - 1e-9
            previous = machine.speedup
