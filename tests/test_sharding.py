"""Tests for shard routing (:mod:`repro.service.sharding`).

The property that makes the pool's per-shard caches effective: any two
requests with the same canonical sorted-multiset instance key — permuted
times, renumbered jobs, differently-spelled engine names — must route to
the same shard, for every pool size.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.cache import canonical_key
from repro.service.requests import SolveRequest
from repro.service.sharding import shard_index, shard_key, shard_of_request

import pytest


def _req(times, machines=3, engine="ptas", eps=0.3, **kwargs) -> SolveRequest:
    return SolveRequest(
        times=tuple(times), machines=machines, engine=engine, eps=eps, **kwargs
    )


class TestShardKey:
    def test_is_the_cache_key(self):
        req = _req([5, 3, 8], machines=2)
        assert shard_key(req) == canonical_key(req)

    def test_permutation_invariant(self):
        a = _req([5, 3, 8, 1], machines=2)
        b = _req([1, 8, 3, 5], machines=2)
        assert shard_key(a) == shard_key(b)

    def test_request_id_does_not_matter(self):
        a = _req([5, 3, 8], request_id="first")
        b = _req([5, 3, 8], request_id="second")
        assert shard_key(a) == shard_key(b)


class TestShardIndex:
    @given(
        times=st.lists(st.integers(1, 10_000), min_size=1, max_size=40),
        machines=st.integers(1, 16),
        num_shards=st.integers(1, 32),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=200)
    def test_permuted_duplicates_land_on_the_same_shard(
        self, times, machines, num_shards, seed
    ):
        """The property the per-worker caches rely on: a permuted /
        renumbered twin of an instance maps to the same shard."""
        shuffled = list(times)
        random.Random(seed).shuffle(shuffled)
        original = _req(times, machines=machines, request_id="a")
        twin = _req(shuffled, machines=machines, request_id="b")
        assert shard_of_request(original, num_shards) == shard_of_request(
            twin, num_shards
        )

    @given(
        times=st.lists(st.integers(1, 10_000), min_size=1, max_size=40),
        machines=st.integers(1, 16),
        num_shards=st.integers(1, 32),
    )
    @settings(max_examples=100)
    def test_index_in_range(self, times, machines, num_shards):
        shard = shard_of_request(_req(times, machines=machines), num_shards)
        assert 0 <= shard < num_shards

    def test_engine_spelling_routes_identically(self):
        """Dashes and underscores are the same engine, so the same shard."""
        assert shard_key(_req([4, 4, 4], engine="parallel-ptas")) == shard_key(
            _req([4, 4, 4], engine="parallel_ptas")
        )

    def test_deterministic_across_processes(self):
        """Pinned placements: the hash must not depend on process state
        (PYTHONHASHSEED), or a restarted supervisor would re-route every
        key and cold every shard cache.  These values only change if the
        routing function itself changes — update deliberately."""
        key = canonical_key(_req([1, 2, 3], machines=2, eps=0.5))
        assert shard_index(key, 2) == 1
        assert shard_index(key, 7) == 4
        key2 = canonical_key(_req([9, 9, 9, 9], machines=4, eps=0.1))
        assert shard_index(key2, 2) == 0
        assert shard_index(key2, 7) == 4

    def test_p_cmax_placement_unchanged_by_problem_field(self):
        """The problem axis must not re-route legacy traffic: the hashed
        body of a p_cmax key is the historical four-field form, so the
        pins in test_deterministic_across_processes stay valid — and a
        unit-speed q_cmax request (which normalizes into the p_cmax
        namespace) lands on the identical shard."""
        p = _req([1, 2, 3], machines=2, eps=0.5, engine="lpt")
        q = SolveRequest(
            times=(1, 2, 3),
            machines=2,
            problem="q_cmax",
            speeds=(1, 1),
            engine="lpt",
            eps=0.5,
        )
        for shards in (2, 3, 7, 16):
            assert shard_of_request(p, shards) == shard_of_request(q, shards)

    def test_q_requests_route_consistently(self):
        a = SolveRequest(
            times=(6, 4, 3), machines=2, problem="q_cmax", speeds=(3, 1),
            engine="lpt", request_id="a",
        )
        b = SolveRequest(
            times=(3, 6, 4), machines=2, problem="q_cmax", speeds=(1, 3),
            engine="lpt", request_id="b",
        )
        for shards in (2, 5, 9):
            assert shard_of_request(a, shards) == shard_of_request(b, shards)
            assert 0 <= shard_of_request(a, shards) < shards

    def test_rejects_nonpositive_shard_count(self):
        key = canonical_key(_req([1, 2]))
        with pytest.raises(ValueError):
            shard_index(key, 0)

    def test_distribution_is_not_degenerate(self):
        """Smoke check, not a statistical claim: 200 distinct instances
        across 4 shards should not all pile onto one shard."""
        counts = [0, 0, 0, 0]
        for i in range(200):
            req = _req([i + 1, 2 * i + 3, 17], machines=2)
            counts[shard_of_request(req, 4)] += 1
        assert all(c > 0 for c in counts)
        assert max(counts) < 150
