"""Unit tests for :mod:`repro.core.configurations` (Eq. 3)."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configurations import (
    configuration_count_bound,
    enumerate_configurations,
    enumerate_maximal_configurations,
    is_maximal,
)


class TestEnumeration:
    def test_paper_example(self):
        """§III lists exactly these configurations for sizes (6, 11), T=30."""
        cs = enumerate_configurations([6, 11], caps=[2, 3], target=30)
        assert set(cs.configs) == {
            (0, 1),
            (0, 2),
            (1, 0),
            (1, 1),
            (1, 2),
            (2, 0),
            (2, 1),
        }

    def test_include_zero(self):
        cs = enumerate_configurations([5], caps=[1], target=10, include_zero=True)
        assert (0,) in cs.configs

    def test_zero_excluded_by_default(self):
        cs = enumerate_configurations([5], caps=[1], target=10)
        assert (0,) not in cs.configs

    def test_weights_match(self):
        cs = enumerate_configurations([6, 11], caps=[2, 3], target=30)
        for cfg, w in zip(cs.configs, cs.weights):
            assert w == 6 * cfg[0] + 11 * cfg[1]
            assert w <= 30

    def test_cap_respected(self):
        cs = enumerate_configurations([1], caps=[3], target=100)
        assert set(cs.configs) == {(1,), (2,), (3,)}

    def test_target_zero_only_zero_config(self):
        cs = enumerate_configurations([5], caps=[4], target=0)
        assert len(cs) == 0

    def test_fits(self):
        cs = enumerate_configurations([6, 11], caps=[2, 3], target=30)
        assert cs.fits((1, 2))
        assert not cs.fits((2, 2))

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            enumerate_configurations([0], caps=[1], target=5)

    def test_rejects_negative_cap(self):
        with pytest.raises(ValueError):
            enumerate_configurations([2], caps=[-1], target=5)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            enumerate_configurations([2, 3], caps=[1], target=5)

    def test_deterministic_order(self):
        a = enumerate_configurations([3, 5], caps=[2, 2], target=10)
        b = enumerate_configurations([3, 5], caps=[2, 2], target=10)
        assert a.configs == b.configs


class TestMaximal:
    def test_is_maximal_basic(self):
        # sizes (6, 11), caps (2, 3), T=30: (1, 2) has weight 28; adding a
        # 6 exceeds 30 by 34>30... 28+6=34>30, adding an 11 -> 39>30: maximal.
        assert is_maximal((1, 2), [6, 11], [2, 3], 30)
        # (0, 2) can still take a 6 (22+6=28<=30): not maximal.
        assert not is_maximal((0, 2), [6, 11], [2, 3], 30)

    def test_overweight_is_not_maximal(self):
        assert not is_maximal((3, 3), [6, 11], [3, 3], 30)

    def test_cap_saturation_counts_as_maximal(self):
        # All caps reached -> maximal even with spare capacity.
        assert is_maximal((1, 1), [2, 3], [1, 1], 100)

    def test_maximal_subset_of_full(self):
        full = enumerate_configurations([6, 11], caps=[2, 3], target=30)
        maximal = enumerate_maximal_configurations([6, 11], caps=[2, 3], target=30)
        assert set(maximal.configs) <= set(full.configs)
        assert len(maximal) < len(full)

    def test_every_config_dominated_by_some_maximal(self):
        sizes, caps, target = [4, 7], [3, 2], 20
        full = enumerate_configurations(sizes, caps, target)
        maximal = enumerate_maximal_configurations(sizes, caps, target)
        for cfg in full.configs:
            assert any(
                all(mc >= c for mc, c in zip(mcfg, cfg)) for mcfg in maximal.configs
            ), f"{cfg} not covered by any maximal configuration"


@given(
    st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=3, unique=True),
    st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=3),
    st.integers(min_value=0, max_value=30),
)
@settings(max_examples=80)
def test_property_enumeration_complete_and_sound(sizes, caps, target):
    """Cross-check the DFS enumeration against brute-force iteration over
    the whole count box."""
    d = min(len(sizes), len(caps))
    sizes, caps = sizes[:d], caps[:d]
    cs = enumerate_configurations(sizes, caps, target, include_zero=True)
    expected = {
        combo
        for combo in itertools.product(*(range(c + 1) for c in caps))
        if sum(s * x for s, x in zip(sizes, combo)) <= target
    }
    assert set(cs.configs) == expected


def test_count_bound_monotone():
    assert configuration_count_bound(4, 2) == 3**4
    assert configuration_count_bound(2, 5) <= configuration_count_bound(3, 5)
