"""Tests for the named benchmark suites (:mod:`repro.workloads.suites`)."""

from __future__ import annotations

import pytest

from repro.workloads.families import FAMILIES
from repro.workloads.suites import SUITES, Suite, suite


class TestRegistry:
    def test_expected_suites(self):
        assert set(SUITES) == {"paper-speedup", "paper-ratio", "smoke", "stress"}

    def test_unknown_suite(self):
        with pytest.raises(ValueError, match="unknown suite"):
            suite("galaxy")

    def test_paper_speedup_size(self):
        # 4 families x 3 sizes x 20 replicates = 240 instances.
        assert len(suite("paper-speedup")) == 240

    def test_ratio_pool_covers_special_families(self):
        kinds = {kind for kind, *_ in suite("paper-ratio").coordinates}
        assert "lpt_adversarial" in kinds and "u_narrow" in kinds

    def test_all_kinds_valid(self):
        for s in SUITES.values():
            for kind, *_ in s.coordinates:
                assert kind in FAMILIES

    def test_seeds_unique_within_suite(self):
        for s in SUITES.values():
            seeds = [seed for *_, seed in s.coordinates]
            assert len(seeds) == len(set(seeds)), s.name

    def test_seed_ranges_disjoint_across_suites(self):
        ranges = {}
        for s in SUITES.values():
            seeds = {seed for *_, seed in s.coordinates}
            ranges[s.name] = seeds
        names = sorted(ranges)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                assert not (ranges[a] & ranges[b]), (a, b)


class TestIteration:
    def test_smoke_items(self):
        items = list(suite("smoke"))
        assert len(items) == 8
        for index, item in enumerate(items):
            assert item.index == index
            assert item.suite == "smoke"
            assert item.instance.num_machines == item.m
            assert item.instance.num_jobs == item.n

    def test_item_matches_iteration(self):
        s = suite("smoke")
        assert s.item(3).instance == list(s)[3].instance

    def test_deterministic(self):
        a = [it.instance for it in suite("smoke")]
        b = [it.instance for it in suite("smoke")]
        assert a == b

    def test_lpt_adversarial_pins_n(self):
        for item in suite("paper-ratio"):
            if item.kind == "lpt_adversarial":
                assert item.instance.num_jobs == 2 * item.m + 1

    def test_smoke_suite_solvable_end_to_end(self):
        from repro.core.ptas import ptas
        from repro.exact.branch_and_bound import branch_and_bound

        for item in suite("smoke"):
            result = ptas(item.instance, 0.3)
            exact = branch_and_bound(item.instance)
            assert exact.optimal
            assert result.makespan <= 1.3 * exact.makespan + 1e-9
