"""Tests for :mod:`repro.experiments.metrics`."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments.metrics import (
    Summary,
    approximation_ratio,
    geometric_mean,
    mean,
    speedup,
)


class TestSpeedup:
    def test_basic(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_slower_than_reference(self):
        assert speedup(1.0, 2.0) == 0.5

    def test_zero_measured(self):
        assert speedup(1.0, 0.0) == math.inf
        assert speedup(0.0, 0.0) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            speedup(-1.0, 1.0)


class TestApproximationRatio:
    def test_optimal(self):
        assert approximation_ratio(10, 10) == 1.0

    def test_above_one(self):
        assert approximation_ratio(13, 10) == pytest.approx(1.3)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            approximation_ratio(10, 0)
        with pytest.raises(ValueError):
            approximation_ratio(0, 10)


class TestAggregation:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty(self):
        with pytest.raises(ValueError):
            mean([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_summary(self):
        s = Summary.of([3.0, 1.0, 2.0])
        assert (s.mean, s.minimum, s.maximum, s.count) == (2.0, 1.0, 3.0, 3)

    def test_summary_empty(self):
        with pytest.raises(ValueError):
            Summary.of([])

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=30))
    def test_property_geometric_le_arithmetic(self, values):
        assert geometric_mean(values) <= mean(values) + 1e-9

    @given(st.lists(st.floats(min_value=-50, max_value=50), min_size=1, max_size=30))
    def test_property_mean_within_range(self, values):
        s = Summary.of(values)
        assert s.minimum - 1e-9 <= s.mean <= s.maximum + 1e-9
