"""Tests for the durable result store (:mod:`repro.store`).

Covers the record format (checksums, torn-tail classification), segment
scanning and quarantine, the content-addressed :class:`ResultStore`
(round trips, TTL expiry, compaction, deep verification, trace archive),
the write-ahead journal lifecycle, and the cache's two-tier integration —
including the satellite requirement that a result persisted under one
job permutation is returned correctly remapped for a permuted duplicate.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.model.verify import verify_schedule
from repro.service.cache import (
    ResultCache,
    canonical_key,
    canonicalize_result,
)
from repro.service.registry import solve_to_result
from repro.service.requests import SolveRequest
from repro.store import (
    RecordError,
    ResultStore,
    WriteAheadJournal,
    decode_record,
    encode_record,
    key_address,
    result_fingerprint,
)
from repro.store.journal import JOURNAL_NAME
from repro.store.segment import (
    QUARANTINE_SUFFIX,
    SegmentWriter,
    list_segments,
    quarantine_segment,
    read_record_at,
    scan_segment,
)


def _req(times, machines=3, engine="lpt", **kwargs) -> SolveRequest:
    return SolveRequest(times=tuple(times), machines=machines, engine=engine, **kwargs)


def _solved(times, machines=3, engine="lpt", **kwargs):
    """A request plus its canonical stored form (solved for real)."""
    request = _req(times, machines=machines, engine=engine, **kwargs)
    result = solve_to_result(request)
    assert result.ok
    return request, canonicalize_result(request, result)


class TestRecords:
    def test_round_trip(self):
        line = encode_record("result", {"address": "abc", "x": [1, 2]})
        record = decode_record(line)
        assert record["kind"] == "result"
        assert record["address"] == "abc"
        assert record["x"] == [1, 2]

    def test_canonical_bytes_are_field_order_independent(self):
        a = encode_record("result", {"a": 1, "b": 2})
        b = encode_record("result", {"b": 2, "a": 1})
        assert a == b

    def test_torn_tail_classification(self):
        for broken in ("", "   ", '{"kind": "result", "crc": 1'):
            with pytest.raises(RecordError) as exc:
                decode_record(broken)
            assert exc.value.torn

    def test_checksum_mismatch_is_not_torn(self):
        line = encode_record("result", {"address": "abc"})
        data = json.loads(line)
        data["crc"] ^= 1
        with pytest.raises(RecordError) as exc:
            decode_record(json.dumps(data))
        assert not exc.value.torn

    def test_foreign_record_is_not_torn(self):
        for foreign in ("[1, 2]", '{"no": "crc"}'):
            with pytest.raises(RecordError) as exc:
                decode_record(foreign)
            assert not exc.value.torn


class TestSegments:
    def test_writer_offsets_support_point_reads(self, tmp_path):
        with SegmentWriter(tmp_path / "segments") as writer:
            locations = [
                writer.append("result", {"address": f"a{i}", "i": i})
                for i in range(5)
            ]
        for i, (path, offset) in enumerate(locations):
            record = read_record_at(path, offset)
            assert record["i"] == i

    def test_writer_rolls_segments_on_size(self, tmp_path):
        with SegmentWriter(tmp_path / "segments", max_bytes=64) as writer:
            for i in range(6):
                writer.append("result", {"address": f"a{i}", "i": i})
        segments = list_segments(tmp_path / "segments")
        assert len(segments) > 1
        total = sum(len(scan_segment(p).records) for p in segments)
        assert total == 6

    def test_torn_tail_is_tolerated(self, tmp_path):
        with SegmentWriter(tmp_path / "segments") as writer:
            path, _ = writer.append("result", {"address": "a0"})
            writer.append("result", {"address": "a1"})
        # Crash mid-append: the final line is cut short.
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        scan = scan_segment(path)
        assert scan.torn_tail and not scan.corrupt
        assert [r["address"] for _, r in scan.records] == ["a0"]

    def test_mid_file_damage_is_corrupt(self, tmp_path):
        with SegmentWriter(tmp_path / "segments") as writer:
            path, _ = writer.append("result", {"address": "a0"})
            writer.append("result", {"address": "a1"})
        data = bytearray(path.read_bytes())
        data[5] ^= 0xFF  # bit-flip inside the first record
        path.write_bytes(bytes(data))
        scan = scan_segment(path)
        assert scan.corrupt and scan.errors

    def test_quarantine_preserves_evidence(self, tmp_path):
        seg_dir = tmp_path / "segments"
        with SegmentWriter(seg_dir) as writer:
            path, _ = writer.append("result", {"address": "a0"})
        target = quarantine_segment(path, "checksum mismatch at 0")
        assert not path.exists()
        assert target.name.endswith(QUARANTINE_SUFFIX)
        reason = target.with_name(target.name + ".reason")
        assert "checksum mismatch" in reason.read_text()
        assert list_segments(seg_dir) == []


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        request, stored = _solved([5, 3, 8, 1], machines=2)
        key = canonical_key(request)
        with ResultStore(tmp_path) as store:
            address = store.put(key, stored)
            assert address == key_address(key)
            assert key in store
            got = store.get(key)
        assert got == stored
        assert result_fingerprint(got) == result_fingerprint(stored)

    def test_missing_key_counts_a_miss(self, tmp_path):
        with ResultStore(tmp_path) as store:
            assert store.get(("p_cmax", (1, 2, 3), (), 2, "lpt", 0.3)) is None
            assert store.stats()["misses"] == 1

    def test_reopen_serves_previous_writes(self, tmp_path):
        request, stored = _solved([9, 7, 5, 5, 3, 2], machines=2, engine="ptas")
        key = canonical_key(request)
        with ResultStore(tmp_path) as store:
            store.put(key, stored)
        with ResultStore(tmp_path) as reopened:
            assert reopened.get(key) == stored

    def test_latest_record_wins(self, tmp_path):
        request, stored = _solved([4, 4, 2], machines=2)
        key = canonical_key(request)
        with ResultStore(tmp_path) as store:
            store.put(key, stored)
            store.put(key, stored)
            assert len(store) == 1
            assert store.get(key) == stored

    def test_ttl_expires_entries(self, tmp_path):
        request, stored = _solved([6, 5, 4], machines=2)
        key = canonical_key(request)
        now = [1000.0]
        with ResultStore(tmp_path, ttl=10.0, clock=lambda: now[0]) as store:
            store.put(key, stored)
            assert store.get(key) is not None
            now[0] += 11.0
            assert store.get(key) is None
            stats = store.stats()
        assert stats["expirations"] == 1

    def test_compaction_drops_superseded_and_expired(self, tmp_path):
        req_a, stored_a = _solved([5, 3, 1], machines=2)
        req_b, stored_b = _solved([8, 8, 8, 2], machines=2)
        now = [1000.0]
        with ResultStore(
            tmp_path, ttl=100.0, clock=lambda: now[0], segment_max_bytes=256
        ) as store:
            store.put(canonical_key(req_a), stored_a)
            now[0] += 200.0  # first entry expires
            for _ in range(3):  # superseded duplicates
                store.put(canonical_key(req_b), stored_b)
            report = store.compact()
            assert report.segments_after == 1
            assert report.records_kept == 1
            assert report.expired_dropped == 1
            assert report.records_dropped >= 3
            assert store.get(canonical_key(req_b)) == stored_b
            assert store.get(canonical_key(req_a)) is None
            stats = store.stats()
        assert stats["evictions"] >= 2  # superseded duplicates dropped

    def test_store_survives_compaction_reopen(self, tmp_path):
        request, stored = _solved([7, 6, 5, 4], machines=2)
        key = canonical_key(request)
        with ResultStore(tmp_path) as store:
            store.put(key, stored)
            store.compact()
            store.put(key, stored)  # writer must append to a fresh segment
        with ResultStore(tmp_path) as reopened:
            assert reopened.get(key) == stored

    def test_verify_deep_counts_schedules(self, tmp_path):
        req_a, stored_a = _solved([5, 3, 1], machines=2)
        req_b, stored_b = _solved([9, 9, 1], machines=3, engine="ptas")
        with ResultStore(tmp_path) as store:
            store.put(canonical_key(req_a), stored_a)
            store.put(canonical_key(req_b), stored_b)
            report = store.verify(deep=True)
        assert report.ok
        assert report.schedules_verified == 2

    def test_corrupt_segment_is_quarantined_and_reported(self, tmp_path):
        request, stored = _solved([5, 3, 1], machines=2)
        req_b, stored_b = _solved([9, 9, 4, 2], machines=2)
        key = canonical_key(request)
        with ResultStore(tmp_path) as store:
            store.put(key, stored)
            store.put(canonical_key(req_b), stored_b)
        segments = list_segments(tmp_path / "segments")
        data = bytearray(segments[0].read_bytes())
        data[10] ^= 0xFF  # bit flip in the first record (non-tail damage)
        segments[0].write_bytes(bytes(data))
        with ResultStore(tmp_path) as reopened:
            # Load-time quarantine: the entry is gone and the next verify
            # reports the damage exactly once.
            assert reopened.get(key) is None
            report = reopened.verify()
            assert not report.ok
            assert report.quarantined
            second = reopened.verify()
            assert second.ok
        quarantined = [
            p
            for p in (tmp_path / "segments").iterdir()
            if p.name.endswith(QUARANTINE_SUFFIX)
        ]
        assert quarantined

    def test_tampered_schedule_fails_read_verification(self, tmp_path):
        """A record whose bytes checksum fine but whose schedule is wrong
        (forged checksum over a bad assignment) is refused on read."""
        request, stored = _solved([5, 3, 8, 1], machines=2)
        key = canonical_key(request)
        with ResultStore(tmp_path) as store:
            store.put(key, stored)
        path = list_segments(tmp_path / "segments")[0]
        record = decode_record(path.read_text().strip())
        record["result"]["makespan"] = record["result"]["makespan"] + 1
        body = {k: v for k, v in record.items() if k not in ("kind", "crc")}
        path.write_text(encode_record("result", body) + "\n")
        with ResultStore(tmp_path) as reopened:
            assert reopened.get(key) is None
            stats = reopened.stats()
        assert stats["verify_failures"] == 1

    def test_trace_archive_round_trip(self, tmp_path):
        payload = {"traceEvents": [{"name": "solve", "ph": "X"}]}
        with ResultStore(tmp_path) as store:
            store.archive_trace("req-1", payload)
            assert store.trace_names() == ["req-1"]
            assert store.load_archived_trace("req-1") == payload
        with ResultStore(tmp_path) as reopened:
            assert reopened.load_archived_trace("req-1") == payload


class TestJournal:
    def test_begin_commit_lifecycle(self, tmp_path):
        journal = WriteAheadJournal(tmp_path)
        entry = journal.begin(_req([3, 2, 1]))
        assert len(journal) == 1
        journal.commit(entry)
        assert len(journal) == 0
        journal.close()
        assert (tmp_path / JOURNAL_NAME).read_bytes() == b""

    def test_uncommitted_survive_reopen(self, tmp_path):
        journal = WriteAheadJournal(tmp_path)
        done = journal.begin(_req([3, 2, 1]))
        journal.commit(done)
        pending = journal.begin(_req([9, 9, 9], machines=2))
        del journal  # crash: no close, no checkpoint
        reopened = WriteAheadJournal(tmp_path)
        open_entries = reopened.uncommitted()
        assert [e.entry_id for e in open_entries] == [pending.entry_id]
        assert open_entries[0].request.times == (9, 9, 9)
        reopened.close()

    def test_aborted_entries_do_not_replay(self, tmp_path):
        journal = WriteAheadJournal(tmp_path)
        entry = journal.begin(_req([5, 5]))
        journal.abort(entry)
        journal.close()
        reopened = WriteAheadJournal(tmp_path)
        assert reopened.uncommitted() == []
        reopened.close()

    def test_torn_tail_is_tolerated(self, tmp_path):
        journal = WriteAheadJournal(tmp_path)
        kept = journal.begin(_req([4, 4, 4]))
        journal.begin(_req([6, 6, 6]))
        del journal
        path = tmp_path / JOURNAL_NAME
        path.write_bytes(path.read_bytes()[:-7])  # crash mid-append
        reopened = WriteAheadJournal(tmp_path)
        assert reopened.torn_tail
        assert [e.entry_id for e in reopened.uncommitted()] == [kept.entry_id]
        reopened.close()

    def test_mid_file_damage_raises(self, tmp_path):
        journal = WriteAheadJournal(tmp_path)
        journal.begin(_req([4, 4, 4]))
        journal.begin(_req([6, 6, 6]))
        journal.close()  # checkpoint keeps both open entries
        path = tmp_path / JOURNAL_NAME
        data = bytearray(path.read_bytes())
        data[5] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(RecordError):
            WriteAheadJournal(tmp_path)

    def test_sequence_continues_across_reopen(self, tmp_path):
        journal = WriteAheadJournal(tmp_path)
        first = journal.begin(_req([1, 2]))
        journal.close()
        reopened = WriteAheadJournal(tmp_path)
        second = reopened.begin(_req([3, 4]))
        reopened.close()
        assert int(second.entry_id.split("-")[0]) > int(first.entry_id.split("-")[0])


class TestCacheIntegration:
    def test_permuted_duplicate_served_from_disk_remapped(self, tmp_path):
        """Satellite: a result persisted under one job permutation must be
        returned correctly remapped for a permuted duplicate — through a
        *fresh* cache + store (simulated restart) — and the remapped
        schedule must pass full verification."""
        times = [13, 2, 8, 8, 5, 11, 3, 7]
        request = _req(times, machines=3, engine="ptas")
        result = solve_to_result(request)
        cache = ResultCache(max_entries=16, store=ResultStore(tmp_path))
        assert cache.put(request, result)
        cache.store.close()

        permuted = _req(list(reversed(times)), machines=3, engine="ptas")
        fresh = ResultCache(max_entries=16, store=ResultStore(tmp_path))
        hit = fresh.get(permuted)
        assert hit is not None and hit.cached
        assert hit.makespan == result.makespan
        inst = permuted.instance()
        assert verify_schedule(hit.schedule(inst), inst).ok
        stats = fresh.stats()
        fresh.store.close()
        assert stats["misses"] == 1  # memory tier missed
        assert stats["disk_hits"] == 1  # durable tier answered

    def test_disk_hit_is_promoted_to_memory(self, tmp_path):
        request, stored = _solved([6, 4, 2], machines=2)
        with ResultStore(tmp_path) as store:
            store.put(canonical_key(request), stored)
            cache = ResultCache(max_entries=16, store=store)
            assert cache.get(request) is not None  # disk hit, promoted
            assert cache.get(request) is not None  # now a memory hit
            stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["disk_hits"] == 1

    def test_write_through_and_stats_prefix(self, tmp_path):
        request = _req([5, 4, 3], machines=2)
        result = solve_to_result(request)
        with ResultStore(tmp_path) as store:
            cache = ResultCache(max_entries=16, store=store)
            cache.put(request, result)
            stats = cache.stats()
        assert stats["disk_puts"] == 1
        for key in (
            "disk_hits",
            "disk_misses",
            "disk_evictions",
            "disk_expirations",
            "disk_entries",
        ):
            assert key in stats

    def test_store_only_cache_serves_with_memory_disabled(self, tmp_path):
        request = _req([7, 3, 3], machines=2)
        result = solve_to_result(request)
        with ResultStore(tmp_path) as store:
            cache = ResultCache(max_entries=0, store=store)
            assert cache.put(request, result)
            hit = cache.get(request)
        assert hit is not None and hit.cached


class TestServiceIntegration:
    def test_service_archives_traces_into_store(self, tmp_path):
        """``serve --store DIR --archive-traces``: each solve's trace is
        durably archived under its request id and survives a restart."""
        import asyncio

        from repro.obs import payload_to_trace
        from repro.service.server import SolveService

        async def scenario():
            store = ResultStore(tmp_path)
            svc = SolveService(
                batch_window=0.0, store=store, archive_traces=True
            )
            try:
                result = await svc.handle(
                    _req([7, 6, 5, 4, 3], engine="ptas", request_id="t-1")
                )
                snap = svc.stats()
            finally:
                await svc.aclose()
            return result, snap

        result, snap = asyncio.run(scenario())
        assert result.ok
        assert snap["counters"]["traces_archived"] == 1
        assert "store.entries" in snap["gauges"]
        with ResultStore(tmp_path) as reopened:
            assert reopened.trace_names() == ["t-1"]
            payload = reopened.load_archived_trace("t-1")
        trace = payload_to_trace(payload)
        assert any(span.kind == "solve" for span in trace.spans)


def test_store_root_is_self_contained(tmp_path):
    """Everything the store writes stays under its root directory."""
    request, stored = _solved([3, 2, 1], machines=2)
    with ResultStore(tmp_path / "store") as store:
        store.put(canonical_key(request), stored)
    journal = WriteAheadJournal(tmp_path / "store")
    journal.begin(request)
    journal.close()
    assert {p.name for p in (tmp_path / "store").iterdir()} == {
        "segments",
        JOURNAL_NAME,
    }
    assert isinstance(tmp_path, Path)
