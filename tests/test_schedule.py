"""Unit tests for :mod:`repro.model.schedule`."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.instance import Instance
from repro.model.schedule import Schedule, makespan_of_loads, schedule_from_machine_map

from conftest import medium_instances


class TestConstruction:
    def test_basic(self):
        inst = Instance([7, 3, 5, 5], num_machines=2)
        sched = Schedule(inst, [(0, 1), (2, 3)])
        assert sched.machine_loads == (10, 10)
        assert sched.makespan == 10

    def test_empty_machines_allowed(self):
        inst = Instance([4], num_machines=3)
        sched = Schedule(inst, [[0], [], []])
        assert sched.machine_loads == (4, 0, 0)

    def test_rejects_wrong_machine_count(self):
        inst = Instance([1, 2], num_machines=2)
        with pytest.raises(ValueError, match="machine groups"):
            Schedule(inst, [[0, 1]])

    def test_rejects_duplicate_job(self):
        inst = Instance([1, 2], num_machines=2)
        with pytest.raises(ValueError, match="more than one machine"):
            Schedule(inst, [[0, 1], [1]])

    def test_rejects_missing_job(self):
        inst = Instance([1, 2], num_machines=2)
        with pytest.raises(ValueError, match="not assigned"):
            Schedule(inst, [[0], []])

    def test_rejects_out_of_range_job(self):
        inst = Instance([1], num_machines=1)
        with pytest.raises(ValueError, match="out of range"):
            Schedule(inst, [[0, 5]])


class TestObjective:
    def test_makespan_is_max_load(self):
        inst = Instance([2, 2, 9], num_machines=2)
        sched = Schedule(inst, [[0, 1], [2]])
        assert sched.makespan == 9

    def test_makespan_of_loads(self):
        assert makespan_of_loads([3, 9, 4]) == 9

    def test_imbalance_perfectly_balanced(self):
        inst = Instance([4, 4], num_machines=2)
        sched = Schedule(inst, [[0], [1]])
        assert sched.imbalance() == 1.0


class TestInspection:
    def test_job_machine(self):
        inst = Instance([1, 2, 3], num_machines=2)
        sched = Schedule(inst, [[0, 2], [1]])
        assert sched.job_machine() == {0: 0, 2: 0, 1: 1}

    def test_completion_times_in_assignment_order(self):
        inst = Instance([5, 3, 2], num_machines=1)
        sched = Schedule(inst, [[1, 0, 2]])
        assert sched.completion_times() == {1: 3, 0: 8, 2: 10}

    def test_completion_time_max_equals_makespan(self):
        inst = Instance([5, 3, 2, 7], num_machines=2)
        sched = Schedule(inst, [[0, 1], [2, 3]])
        assert max(sched.completion_times().values()) == sched.makespan

    def test_canonical_ignores_machine_order(self):
        inst = Instance([1, 2], num_machines=2)
        a = Schedule(inst, [[0], [1]])
        b = Schedule(inst, [[1], [0]])
        assert a.canonical() == b.canonical()

    def test_is_valid(self):
        inst = Instance([1, 2], num_machines=2)
        assert Schedule(inst, [[0], [1]]).is_valid()

    def test_roundtrip_machine_map(self):
        inst = Instance([1, 2, 3], num_machines=2)
        sched = Schedule(inst, [[0, 2], [1]])
        rebuilt = schedule_from_machine_map(inst, sched.job_machine())
        assert rebuilt.canonical() == sched.canonical()

    def test_machine_map_rejects_bad_machine(self):
        inst = Instance([1], num_machines=1)
        with pytest.raises(ValueError, match="machine index"):
            schedule_from_machine_map(inst, {0: 5})


@given(medium_instances(), st.randoms(use_true_random=False))
def test_property_random_partition_valid(inst: Instance, rnd):
    """Any random partition constructs successfully and its makespan is
    between the trivial lower bound's ingredients and the total work."""
    groups = [[] for _ in range(inst.num_machines)]
    for j in range(inst.num_jobs):
        groups[rnd.randrange(inst.num_machines)].append(j)
    sched = Schedule(inst, groups)
    assert sched.is_valid()
    assert inst.max_time <= sched.makespan <= inst.total_work
    assert sum(sched.machine_loads) == inst.total_work
