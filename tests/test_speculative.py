"""Tests for speculative multi-probe bisection (:mod:`repro.core.speculative`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bisection import bisect_target_makespan
from repro.core.dp import DPProblem, DPResult, solve
from repro.core.speculative import count_rounds, probe_targets, speculative_bisect
from repro.model.instance import Instance

from conftest import small_instances


def solver(problem: DPProblem, m: int) -> DPResult:
    return solve(problem, "dominance", limit=m)


class TestProbeTargets:
    def test_three_way_split(self):
        assert probe_targets(0, 8, 3) == [2, 4, 6]

    def test_midpoint_for_branching_one(self):
        assert probe_targets(10, 20, 1) == [15]

    def test_narrow_interval(self):
        assert probe_targets(10, 12, 3) == [10, 11]

    def test_empty_interval(self):
        assert probe_targets(5, 5, 3) == []

    def test_targets_strictly_below_upper(self):
        for lo, hi, g in [(0, 100, 7), (3, 4, 2), (50, 53, 5)]:
            for t in probe_targets(lo, hi, g):
                assert lo <= t < hi

    def test_rejects_bad_branching(self):
        with pytest.raises(ValueError):
            probe_targets(0, 10, 0)

    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=1, max_value=8),
    )
    def test_property_targets_sorted_distinct_in_range(self, lo, width, g):
        hi = lo + width
        targets = probe_targets(lo, hi, g)
        assert targets == sorted(set(targets))
        assert all(lo <= t < hi for t in targets)
        assert len(targets) <= g


class TestSpeculativeBisect:
    @pytest.mark.parametrize("branching", [1, 2, 3, 5])
    def test_same_target_as_standard(self, small_instance, branching):
        standard = bisect_target_makespan(small_instance, 4, solver)
        spec = speculative_bisect(small_instance, 4, solver, branching=branching)
        assert spec.final_target == standard.final_target

    def test_fewer_rounds_with_more_branching(self):
        # A wide interval (large max t) so the round count matters.
        inst = Instance([97, 83, 51, 42, 38, 21, 13, 8, 5, 3], num_machines=3)
        narrow = speculative_bisect(inst, 4, solver, branching=1)
        wide = speculative_bisect(inst, 4, solver, branching=5)
        assert count_rounds(wide, 5) <= count_rounds(narrow, 1)

    def test_branching_one_probe_count_matches_standard(self, small_instance):
        standard = bisect_target_makespan(small_instance, 4, solver)
        spec = speculative_bisect(small_instance, 4, solver, branching=1)
        assert len(spec.iterations) == len(standard.iterations)

    def test_trace_is_complete(self, small_instance):
        spec = speculative_bisect(small_instance, 4, solver, branching=3)
        assert spec.iterations
        # The final entry's target equals the certified target.
        feasible_targets = [it.target for it in spec.iterations if it.feasible]
        assert spec.final_target == min(feasible_targets)

    @given(small_instances(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=40)
    def test_property_equivalent_to_standard(self, inst, branching):
        standard = bisect_target_makespan(inst, 3, solver)
        spec = speculative_bisect(inst, 3, solver, branching=branching)
        assert spec.final_target == standard.final_target
        assert spec.dp_result.opt == standard.dp_result.opt


class TestSimulatedStudy:
    def make_study(self, branching: int = 4, workers: int = 16):
        from repro.core.speculative import simulate_speculative_ptas

        inst = Instance([97, 83, 51, 42, 38, 21, 13, 8, 5, 3], num_machines=3)
        return simulate_speculative_ptas(inst, 0.3, workers, branching)

    def test_same_answer_both_strategies(self):
        study = self.make_study()
        assert study.final_target == study.standard_final_target

    def test_rounds_fewer_than_probes(self):
        study = self.make_study(branching=4)
        assert study.speculative_rounds <= study.standard_probes

    def test_speedups_positive(self):
        study = self.make_study()
        assert study.standard_speedup > 0
        assert study.speculative_speedup > 0

    def test_branching_one_close_to_standard(self):
        """g=1 uses the same probes on the same machine size, so the two
        strategies cost the same."""
        study = self.make_study(branching=1, workers=8)
        assert study.speculative_parallel_ops == pytest.approx(
            study.standard_parallel_ops, rel=0.01
        )

    def test_rejects_more_probes_than_workers(self):
        from repro.core.speculative import simulate_speculative_ptas

        inst = Instance([5, 4, 3], num_machines=2)
        with pytest.raises(ValueError, match="processor per concurrent probe"):
            simulate_speculative_ptas(inst, 0.3, 2, 4)


class TestConcurrentProbes:
    """Executor-backed probes and pipelined certification must certify
    the same target as the sequential strategies."""

    def decision_solver(self, problem: DPProblem, m: int) -> DPResult:
        return solve(problem, "table", limit=m, track_schedule=False)

    @pytest.mark.parametrize("branching", [2, 3])
    def test_thread_executor_same_target(self, small_instance, branching):
        from repro.parallel.executor import make_executor, shutdown_pools

        standard = bisect_target_makespan(small_instance, 4, solver)
        ex = make_executor("thread", branching, reuse=True)
        try:
            spec = speculative_bisect(
                small_instance, 4, solver, branching=branching, executor=ex
            )
        finally:
            ex.close()
            shutdown_pools()
        assert spec.final_target == standard.final_target
        assert spec.dp_result.opt == standard.dp_result.opt

    def test_decision_solver_with_pipelined_certification(self, small_instance):
        from repro.parallel.executor import SerialExecutor

        standard = bisect_target_makespan(small_instance, 4, solver)
        spec = speculative_bisect(
            small_instance,
            4,
            solver,
            branching=3,
            executor=SerialExecutor(3),
            decision_solver=self.decision_solver,
        )
        assert spec.final_target == standard.final_target
        # Certification ran the full solver: the witness is present.
        assert spec.dp_result.machine_configs

    @given(small_instances(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=25)
    def test_property_executor_equivalent_to_plain(self, inst, branching):
        from repro.parallel.executor import SerialExecutor

        plain = speculative_bisect(inst, 3, solver, branching=branching)
        pooled = speculative_bisect(
            inst,
            3,
            solver,
            branching=branching,
            executor=SerialExecutor(branching),
            decision_solver=self.decision_solver,
        )
        assert pooled.final_target == plain.final_target

    def test_win_waste_counters_recorded(self):
        from repro.core.context import SolveContext
        from repro.service.metrics import MetricsRegistry

        inst = Instance([97, 83, 51, 42, 38, 21, 13, 8, 5, 3], num_machines=3)
        registry = MetricsRegistry()
        ctx = SolveContext(warm_start=False, metrics=registry)
        outcome = speculative_bisect(inst, 4, solver, branching=3, ctx=ctx)
        counters = registry.snapshot()["counters"]
        assert counters["speculative.rounds"] >= 1
        assert counters["speculative.probes"] >= len(outcome.iterations) - 1
        wins = counters.get("speculative.probe_wins", 0)
        waste = counters.get("speculative.probe_waste", 0)
        assert wins + waste == counters["speculative.probes"]
