"""Unit tests for :mod:`repro.parallel.partition`."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel.partition import (
    block_partition,
    max_chunk_size,
    round_robin_partition,
)


class TestRoundRobin:
    def test_basic(self):
        assert round_robin_partition([0, 1, 2, 3, 4], 2) == [[0, 2, 4], [1, 3]]

    def test_alg3_semantics(self):
        """Iteration i goes to processor i mod P."""
        chunks = round_robin_partition(list(range(10)), 3)
        for w, chunk in enumerate(chunks):
            for item in chunk:
                assert item % 3 == w

    def test_fewer_items_than_workers(self):
        assert round_robin_partition([7], 4) == [[7], [], [], []]

    def test_empty(self):
        assert round_robin_partition([], 3) == [[], [], []]

    def test_single_worker(self):
        assert round_robin_partition([1, 2, 3], 1) == [[1, 2, 3]]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            round_robin_partition([1], 0)


class TestBlock:
    def test_basic(self):
        assert block_partition([0, 1, 2, 3, 4], 2) == [[0, 1, 2], [3, 4]]

    def test_sizes_differ_by_at_most_one(self):
        chunks = block_partition(list(range(17)), 5)
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_preserves_order(self):
        chunks = block_partition(list(range(9)), 4)
        flat = [x for c in chunks for x in c]
        assert flat == list(range(9))

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            block_partition([1], 0)


class TestMaxChunkSize:
    def test_exact_division(self):
        assert max_chunk_size(12, 4) == 3

    def test_ceiling(self):
        assert max_chunk_size(13, 4) == 4

    def test_zero_items(self):
        assert max_chunk_size(0, 4) == 0

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            max_chunk_size(5, 0)


@given(
    st.lists(st.integers(), max_size=50),
    st.integers(min_value=1, max_value=10),
)
def test_property_partitions_cover_items(items, workers):
    """Both schemes partition the items exactly, and chunk sizes respect
    the Alg. 3 bound ceil(q/P)."""
    for scheme in (round_robin_partition, block_partition):
        chunks = scheme(items, workers)
        assert len(chunks) == workers
        assert sorted(x for c in chunks for x in c) == sorted(items)
        bound = max_chunk_size(len(items), workers)
        assert all(len(c) <= bound for c in chunks)
