"""Tests for usable-CPU detection (:mod:`repro.parallel.cpus`)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.parallel.cpus import cgroup_cpu_quota, resolve_workers, usable_cpus


def _write(tmp_path: Path, name: str, text: str) -> Path:
    path = tmp_path / name
    path.write_text(text)
    return path


class TestCgroupQuota:
    def test_v2_limited(self, tmp_path):
        cpu_max = _write(tmp_path, "cpu.max", "200000 100000\n")
        assert cgroup_cpu_quota(cpu_max=cpu_max) == 2

    def test_v2_rounds_fractional_quota_up(self, tmp_path):
        cpu_max = _write(tmp_path, "cpu.max", "150000 100000\n")
        assert cgroup_cpu_quota(cpu_max=cpu_max) == 2

    def test_v2_unlimited(self, tmp_path):
        cpu_max = _write(tmp_path, "cpu.max", "max 100000\n")
        assert cgroup_cpu_quota(cpu_max=cpu_max) is None

    def test_v2_garbage_is_no_limit(self, tmp_path):
        cpu_max = _write(tmp_path, "cpu.max", "banana split\n")
        assert cgroup_cpu_quota(cpu_max=cpu_max) is None

    def test_v2_present_wins_over_v1(self, tmp_path):
        cpu_max = _write(tmp_path, "cpu.max", "100000 100000\n")
        quota = _write(tmp_path, "cpu.cfs_quota_us", "400000\n")
        period = _write(tmp_path, "cpu.cfs_period_us", "100000\n")
        assert (
            cgroup_cpu_quota(cpu_max=cpu_max, quota_us=quota, period_us=period)
            == 1
        )

    def test_v1_fallback(self, tmp_path):
        missing = tmp_path / "absent"
        quota = _write(tmp_path, "cpu.cfs_quota_us", "300000\n")
        period = _write(tmp_path, "cpu.cfs_period_us", "100000\n")
        assert (
            cgroup_cpu_quota(cpu_max=missing, quota_us=quota, period_us=period)
            == 3
        )

    def test_v1_unlimited(self, tmp_path):
        missing = tmp_path / "absent"
        quota = _write(tmp_path, "cpu.cfs_quota_us", "-1\n")
        period = _write(tmp_path, "cpu.cfs_period_us", "100000\n")
        assert (
            cgroup_cpu_quota(cpu_max=missing, quota_us=quota, period_us=period)
            is None
        )

    def test_nothing_readable(self, tmp_path):
        missing = tmp_path / "absent"
        assert (
            cgroup_cpu_quota(
                cpu_max=missing, quota_us=missing, period_us=missing
            )
            is None
        )

    def test_quota_always_at_least_one(self, tmp_path):
        cpu_max = _write(tmp_path, "cpu.max", "10000 100000\n")
        assert cgroup_cpu_quota(cpu_max=cpu_max) == 1


class TestUsableCpus:
    def test_at_least_one(self):
        assert usable_cpus() >= 1

    def test_no_more_than_installed(self):
        import os

        installed = os.cpu_count()
        if installed:
            assert usable_cpus() <= installed


class TestResolveWorkers:
    def test_auto_resolves_to_usable(self):
        assert resolve_workers("auto") == usable_cpus()

    def test_auto_is_case_insensitive(self):
        assert resolve_workers("  AUTO ") == usable_cpus()

    def test_none_defaults_to_usable(self):
        assert resolve_workers(None) == usable_cpus()

    def test_none_with_explicit_default(self):
        assert resolve_workers(None, default=7) == 7

    def test_auto_ignores_default(self):
        assert resolve_workers("auto", default=7) == usable_cpus()

    def test_int_passthrough(self):
        assert resolve_workers(3) == 3

    def test_integer_string(self):
        assert resolve_workers("5") == 5

    @pytest.mark.parametrize("bad", ["many", "", "2.5"])
    def test_rejects_non_integer_strings(self, bad):
        with pytest.raises(ValueError, match="auto"):
            resolve_workers(bad)

    @pytest.mark.parametrize("bad", [0, -1, "0"])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError, match=">= 1"):
            resolve_workers(bad)
