"""Tests for the configuration-IP packing solver (:mod:`repro.core.dp_ilp`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.dp import DPProblem, solve_table
from repro.core.dp_ilp import solve_config_ilp

from conftest import dp_problems
from test_dp_engines import check_witness


class TestConfigILP:
    def test_paper_example(self, paper_example_problem):
        result = solve_config_ilp(paper_example_problem)
        assert result.opt == 2
        assert result.engine == "config-ilp"
        check_witness(paper_example_problem, 2, result.machine_configs)

    def test_empty_problem(self):
        assert solve_config_ilp(DPProblem((), (), 5)).opt == 0

    def test_zero_counts(self):
        assert solve_config_ilp(DPProblem((3,), (0,), 5)).opt == 0

    def test_one_job_per_machine(self):
        result = solve_config_ilp(DPProblem((7,), (4,), 10))
        assert result.opt == 4

    def test_limit_semantics(self):
        p = DPProblem((7,), (4,), 10)
        assert solve_config_ilp(p, limit=3).opt is None
        assert solve_config_ilp(p, limit=4).opt == 4

    def test_collect_stats(self, paper_example_problem):
        result = solve_config_ilp(paper_example_problem, collect_stats=True)
        assert result.stats is not None
        assert result.stats.num_configs == 7

    def test_scales_past_table_dp(self):
        """A problem whose table has ~10^8 entries is instant as an IP."""
        p = DPProblem((11, 13, 17, 19), (99, 99, 99, 99), 60)
        result = solve_config_ilp(p, track_schedule=False)
        assert result.opt is not None
        # Work bound sanity: total load / target <= opt <= jobs.
        total = 99 * (11 + 13 + 17 + 19)
        assert -(-total // 60) <= result.opt <= 4 * 99

    @given(dp_problems())
    @settings(max_examples=30)
    def test_property_agrees_with_table_dp(self, problem: DPProblem):
        reference = solve_table(problem, track_schedule=False)
        result = solve_config_ilp(problem)
        assert result.opt == reference.opt
        if result.opt:
            check_witness(problem, result.opt, result.machine_configs)
