"""Crash recovery end-to-end tests (:mod:`repro.store.recovery`).

The acceptance scenario of the durability subsystem: a server killed
mid-flight (SIGKILL, no cleanup) leaves a write-ahead journal with
uncommitted entries; a restart against the same ``--store`` directory
replays them; the recovered results byte-match a fresh solve's canonical
form and every recovered schedule passes full verification.  A second
scenario corrupts a segment on disk and demands ``repro-pcmax store
verify`` detect and quarantine it.

Unit tests drive :func:`repro.store.recover` in-process with stub
solvers; the e2e tests boot the real CLI server in a subprocess.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.model.verify import verify_schedule
from repro.service.cache import canonical_key, canonicalize_result, localize_result
from repro.service.registry import solve_to_result
from repro.service.requests import SolveRequest, SolveResult
from repro.store import (
    ResultStore,
    WriteAheadJournal,
    recover,
    recover_all,
    result_fingerprint,
    worker_journal_name,
)
from repro.store.journal import JOURNAL_NAME
from repro.store.segment import QUARANTINE_SUFFIX, list_segments

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"

#: Pinned instance whose PTAS solve takes a couple of seconds — long
#: enough that a SIGKILL lands between the journal ``begin`` and the
#: solve finishing, deterministic enough to re-solve for the byte-match.
SLOW_TIMES = (
    132, 49, 21, 43, 169, 28, 191, 197, 41, 45,
    110, 80, 24, 27, 24, 108, 185, 179, 143, 177,
    138, 58, 43, 66, 49, 23, 148, 144, 83, 36,
    190, 158, 139, 37, 173, 192, 42, 151, 168, 31,
)  # fmt: skip


def _slow_request(request_id: str = "crash-1") -> SolveRequest:
    return SolveRequest(
        times=SLOW_TIMES,
        machines=6,
        engine="ptas",
        eps=0.15,
        request_id=request_id,
    )


def _req(times, machines=2, engine="lpt", **kwargs) -> SolveRequest:
    return SolveRequest(times=tuple(times), machines=machines, engine=engine, **kwargs)


# ----------------------------------------------------------------------
# recover() unit tests (stub solvers, no subprocess)
# ----------------------------------------------------------------------
class TestRecoverUnit:
    def test_replays_uncommitted_entry(self, tmp_path):
        request = _req([9, 7, 5, 5, 3, 2], engine="ptas")
        journal = WriteAheadJournal(tmp_path)
        journal.begin(request)
        del journal  # crash

        store = ResultStore(tmp_path)
        reopened = WriteAheadJournal(tmp_path)
        report = recover(store, reopened)
        assert report.ok
        assert report.entries == 1 and report.replayed == 1
        stored = store.get(canonical_key(request))
        assert stored is not None
        # Byte-for-byte identical to a fresh solve's canonical form.
        fresh = canonicalize_result(request, solve_to_result(request))
        assert result_fingerprint(stored) == result_fingerprint(fresh)
        assert reopened.uncommitted() == []
        reopened.close()
        store.close()
        assert (tmp_path / JOURNAL_NAME).read_bytes() == b""

    def test_already_stored_entry_is_committed_without_solving(self, tmp_path):
        request = _req([4, 4, 2], engine="lpt")
        key = canonical_key(request)
        store = ResultStore(tmp_path)
        store.put(key, canonicalize_result(request, solve_to_result(request)))
        journal = WriteAheadJournal(tmp_path)
        journal.begin(request)

        def must_not_solve(_req: SolveRequest) -> SolveResult:
            raise AssertionError("recovery re-solved an already-stored entry")

        report = recover(store, journal, solve=must_not_solve)
        assert report.ok
        assert report.already_stored == 1 and report.replayed == 0
        journal.close()
        store.close()

    def test_poison_entry_is_aborted_not_looped(self, tmp_path):
        request = _req([5, 5, 5], engine="lpt")
        journal = WriteAheadJournal(tmp_path)
        journal.begin(request)

        def boom(_req: SolveRequest) -> SolveResult:
            raise RuntimeError("engine exploded")

        store = ResultStore(tmp_path)
        report = recover(store, journal, solve=boom)
        assert not report.ok
        assert len(report.aborted) == 1 and "exploded" in report.aborted[0]
        # The abort is durable: a second recovery pass sees nothing.
        journal.close()
        rejournal = WriteAheadJournal(tmp_path)
        second = recover(store, rejournal, solve=boom)
        assert second.entries == 0
        rejournal.close()
        store.close()

    def test_failed_solve_status_is_aborted(self, tmp_path):
        request = _req([1, 2, 3], engine="lpt")
        journal = WriteAheadJournal(tmp_path)
        journal.begin(request)

        def errored(req: SolveRequest) -> SolveResult:
            return SolveResult(status="error", request_id=req.request_id, error="nope")

        store = ResultStore(tmp_path)
        report = recover(store, journal, solve=errored)
        assert not report.ok and len(report.aborted) == 1
        assert store.get(canonical_key(request)) is None
        journal.close()
        store.close()


class TestRecoverAllTornJournal:
    """A pool crash can tear one worker's journal mid-write while its
    sibling's is intact; ``recover_all`` must replay the clean journal
    and tolerate the torn tail instead of refusing the whole root."""

    def test_clean_journal_replays_while_torn_tail_is_tolerated(self, tmp_path):
        clean_request = _req([9, 7, 5, 5, 3, 2], engine="ptas")
        committed_request = _req([4, 4, 2], engine="lpt")
        torn_request = _req([8, 6, 6, 1], engine="lpt")

        # Worker 0: one admitted-but-unanswered entry (the crash victim).
        clean = WriteAheadJournal(tmp_path, name=worker_journal_name(0))
        clean.begin(clean_request)
        del clean  # crash: no commit, no close

        # Worker 1: one full begin/commit cycle, then a begin whose
        # journal line the crash cut short (a mid-write tear).
        torn = WriteAheadJournal(tmp_path, name=worker_journal_name(1))
        entry = torn.begin(committed_request)
        torn.commit(entry)
        torn.begin(torn_request)
        del torn
        torn_path = tmp_path / worker_journal_name(1)
        data = torn_path.read_bytes()
        torn_path.write_bytes(data[:-20])  # tear the last record mid-line

        # The torn journal opens flagged but functional: the cut line is
        # dropped (it never became a durable fact), nothing is pending.
        probe = WriteAheadJournal(tmp_path, name=worker_journal_name(1))
        assert probe.torn_tail
        assert probe.uncommitted() == []
        del probe  # no close: leave the torn bytes for recover_all

        store = ResultStore(tmp_path)
        report = recover_all(store, tmp_path)
        assert report.ok, report.aborted
        # Only worker 0's entry is recoverable; the torn line never
        # reached the disk as a fact, so it is not replayed (the client
        # never got an admission for it either — fsync orders begin
        # before the solve starts).
        assert report.entries == 1 and report.replayed == 1
        assert store.get(canonical_key(clean_request)) is not None
        assert store.get(canonical_key(torn_request)) is None
        store.close()

        # Recovery's checkpoint compacted the torn journal: it reopens
        # clean, with the torn bytes gone for good.
        reopened = WriteAheadJournal(tmp_path, name=worker_journal_name(1))
        assert not reopened.torn_tail
        assert reopened.uncommitted() == []
        reopened.close()

    def test_mid_file_tear_is_not_tolerated(self, tmp_path):
        """Only a *tail* tear is crash-consistent; damage before the
        last line means something other than a crash wrote the file."""
        journal = WriteAheadJournal(tmp_path, name=worker_journal_name(0))
        entry = journal.begin(_req([4, 4, 2]))
        journal.commit(entry)
        journal.begin(_req([5, 5, 5]))
        del journal
        path = tmp_path / worker_journal_name(0)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[0] = lines[0][:-10] + b"\n"  # corrupt a non-final record
        path.write_bytes(b"".join(lines))
        with pytest.raises(Exception):
            WriteAheadJournal(tmp_path, name=worker_journal_name(0))


# ----------------------------------------------------------------------
# Subprocess helpers
# ----------------------------------------------------------------------
def _env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _start_server(store_dir: Path, port: int) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            str(port),
            "--store",
            str(store_dir),
            "--log-interval",
            "0",
        ],
        env=_env(),
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _wait_port(port: int, proc: subprocess.Popen, timeout: float = 180.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"server exited early ({proc.returncode}): {proc.stdout.read()}"
            )
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=0.25):
                return
        except OSError:
            time.sleep(0.05)
    raise AssertionError(f"server on port {port} never came up")


def _send_line(port: int, payload: str) -> socket.socket:
    """Send one protocol line and return the open socket (caller reads
    or abandons it)."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=10.0)
    sock.sendall(payload.encode("utf-8") + b"\n")
    return sock


def _shutdown(port: int, proc: subprocess.Popen) -> int:
    with _send_line(port, json.dumps({"op": "shutdown"})) as sock:
        sock.settimeout(30.0)
        sock.makefile().readline()
    return proc.wait(timeout=60.0)


# ----------------------------------------------------------------------
# The acceptance e2e: SIGKILL mid-flight, restart, replay, byte-match
# ----------------------------------------------------------------------
class TestCrashRecoveryEndToEnd:
    def test_kill_replay_bytematch_verify(self, tmp_path):
        store_dir = tmp_path / "store"
        request = _slow_request()
        journal_path = store_dir / JOURNAL_NAME

        # --- boot, submit, and kill the server mid-solve ---------------
        port = _free_port()
        proc = _start_server(store_dir, port)
        try:
            _wait_port(port, proc)
            sock = _send_line(port, request.to_json())
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if journal_path.exists() and b'"begin"' in journal_path.read_bytes():
                    break
                time.sleep(0.01)
            else:
                raise AssertionError("journal never recorded the admitted request")
            proc.send_signal(signal.SIGKILL)  # crash: no flush, no cleanup
            proc.wait(timeout=30.0)
            sock.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30.0)

        # --- the journal must hold the uncommitted entry ----------------
        journal = WriteAheadJournal(store_dir)
        uncommitted = journal.uncommitted()
        assert len(uncommitted) == 1
        assert sorted(uncommitted[0].request.times) == sorted(SLOW_TIMES)
        journal.close()  # checkpoint keeps the open entry on disk
        assert b'"begin"' in journal_path.read_bytes()

        # --- restart against the same --store: recovery must replay -----
        port2 = _free_port()
        proc2 = _start_server(store_dir, port2)
        try:
            _wait_port(port2, proc2)  # recovery runs before listening
            exit_code = _shutdown(port2, proc2)
        finally:
            if proc2.poll() is None:
                proc2.kill()
                proc2.wait(timeout=30.0)
        output = proc2.stdout.read()
        assert exit_code == 0, output
        assert "recovery: 1 uncommitted entry, 1 replayed" in output

        # --- recovered result: present, byte-identical, verified --------
        assert journal_path.read_bytes() == b""  # clean exit, empty journal
        store = ResultStore(store_dir)
        key = canonical_key(request)
        recovered = store.get(key)
        assert recovered is not None and recovered.ok

        fresh = canonicalize_result(request, solve_to_result(request))
        assert result_fingerprint(recovered) == result_fingerprint(fresh)

        localized = localize_result(request, recovered)
        inst = request.instance()
        report = verify_schedule(localized.schedule(inst), inst)
        assert report.ok, report.violations

        audit = store.verify(deep=True)
        store.close()
        assert audit.ok
        assert audit.schedules_verified >= 1


# ----------------------------------------------------------------------
# Deliberate corruption: store verify must quarantine, never serve
# ----------------------------------------------------------------------
def _populated_store(root: Path) -> SolveRequest:
    request = _req([9, 7, 5, 5, 3, 2], machines=2, engine="ptas")
    filler = _req([6, 6, 4, 1], machines=2, engine="lpt")
    with ResultStore(root) as store:
        store.put(
            canonical_key(request),
            canonicalize_result(request, solve_to_result(request)),
        )
        store.put(
            canonical_key(filler),
            canonicalize_result(filler, solve_to_result(filler)),
        )
    return request


def _run_store_verify(root: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", "store", "verify", str(root)],
        env=_env(),
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestCorruptionDetection:
    @pytest.mark.parametrize("damage", ["bitflip", "truncate"])
    def test_store_verify_quarantines_damage(self, tmp_path, damage):
        request = _populated_store(tmp_path)
        segment = list_segments(tmp_path / "segments")[0]
        data = bytearray(segment.read_bytes())
        if damage == "bitflip":
            data[12] ^= 0x08  # flip one bit inside the first record
        else:
            # Mid-file truncation: splice bytes out of the first record
            # (its newline survives, so this is NOT a tolerable torn tail).
            first_newline = data.index(b"\n")
            del data[first_newline - 50 : first_newline - 10]
        segment.write_bytes(bytes(data))

        proc = _run_store_verify(tmp_path)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "QUARANTINED" in proc.stdout
        quarantined = [
            p
            for p in (tmp_path / "segments").iterdir()
            if p.name.endswith(QUARANTINE_SUFFIX)
        ]
        assert quarantined, "damaged segment was not quarantined"

        # The damaged bytes are never served again.
        with ResultStore(tmp_path) as store:
            assert store.get(canonical_key(request)) is None

        # A second audit of the (now empty) store is clean.
        second = _run_store_verify(tmp_path)
        assert second.returncode == 0, second.stdout + second.stderr

    def test_clean_store_verifies_ok(self, tmp_path):
        _populated_store(tmp_path)
        proc = _run_store_verify(tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK: store is clean" in proc.stdout
        assert "2 schedule(s)" in proc.stdout
