"""Tests for the ASCII Gantt renderer (:mod:`repro.model.gantt`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.model.gantt import render_gantt, render_load_histogram
from repro.model.instance import Instance
from repro.model.schedule import Schedule

from conftest import medium_instances


@pytest.fixture
def sched() -> Schedule:
    inst = Instance([6, 4, 3, 2], num_machines=2)
    return Schedule(inst, [[0, 2], [1, 3]])


class TestGantt:
    def test_one_row_per_machine_plus_axis(self, sched):
        out = render_gantt(sched)
        lines = out.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("machine   0")
        assert "makespan 9" in lines[-1]

    def test_loads_shown(self, sched):
        out = render_gantt(sched)
        assert "load 9" in out
        assert "load 6" in out

    def test_job_glyphs_present(self, sched):
        out = render_gantt(sched)
        # jobs 0 and 2 on machine 0; glyphs are the job indices.
        assert "0" in out.splitlines()[0]
        assert "2" in out.splitlines()[0]

    def test_proportional_widths(self, sched):
        row = render_gantt(sched, width=30).splitlines()[0]
        bar = row.split("|")[1]
        # Job 0 (t=6) should occupy about twice the cells of job 2 (t=3).
        assert bar.count("0") >= bar.count("2") * 1.5

    def test_rejects_tiny_width(self, sched):
        with pytest.raises(ValueError):
            render_gantt(sched, width=5)

    def test_empty_machine_renders(self):
        inst = Instance([4], num_machines=2)
        out = render_gantt(Schedule(inst, [[0], []]))
        assert out.splitlines()[1].startswith("machine   1")

    @given(medium_instances(max_jobs=15, max_machines=4))
    @settings(max_examples=25)
    def test_property_renders_every_schedule(self, inst):
        from repro.algorithms.lpt import lpt

        out = render_gantt(lpt(inst))
        assert len(out.splitlines()) == inst.num_machines + 1


class TestLoadHistogram:
    def test_bars_proportional(self, sched):
        out = render_load_histogram(sched, width=18)
        lines = out.splitlines()
        assert lines[0].count("#") == 18  # machine 0 has the peak load 9
        assert lines[1].count("#") == 12  # 6/9 * 18

    def test_row_per_machine(self, sched):
        assert len(render_load_histogram(sched).splitlines()) == 2
