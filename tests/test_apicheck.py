"""The API-stability checker (`python -m repro.apicheck`)."""

from __future__ import annotations

from pathlib import Path

from repro.apicheck import compute_surface, diff_surface, main


class TestSurface:
    def test_live_surface_matches_the_pin(self):
        pinned = Path("docs/api-surface.txt").read_text()
        assert diff_surface(pinned, compute_surface()) == []

    def test_surface_is_deterministic(self):
        assert compute_surface() == compute_surface()

    def test_surface_covers_the_facade_and_variants(self):
        surface = compute_surface()
        assert "repro.solve: function" in surface
        assert "repro.QInstance: class" in surface
        assert "repro.service.UnsupportedProblemError: class" in surface
        assert "repro.service.PROTOCOL_VERSION: int = 2" in surface

    def test_diff_reports_both_directions(self):
        live = compute_surface()
        mutated = live.replace(
            "repro.solve: function", "repro.solve_renamed: function"
        )
        problems = diff_surface(mutated, live)
        assert any(p.startswith("- repro.solve_renamed") for p in problems)
        assert any(p.startswith("+ repro.solve:") for p in problems)


class TestMain:
    def test_check_passes_against_fresh_pin(self, tmp_path, capsys):
        pin = tmp_path / "surface.txt"
        assert main(["--write", "--surface", str(pin)]) == 0
        assert main(["--surface", str(pin)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_drift_fails_with_diff(self, tmp_path, capsys):
        pin = tmp_path / "surface.txt"
        main(["--write", "--surface", str(pin)])
        pin.write_text(
            pin.read_text().replace(
                "repro.solve: function", "repro.gone: function (x)"
            )
        )
        assert main(["--surface", str(pin)]) == 1
        out = capsys.readouterr().out
        assert "- repro.gone" in out
        assert "+ repro.solve" in out

    def test_missing_pin_fails_pointing_at_write(self, tmp_path, capsys):
        assert main(["--surface", str(tmp_path / "nope.txt")]) == 1
        assert "--write" in capsys.readouterr().out
