"""Regression tests for the integral-rounding guarantee gap.

Found by hypothesis during this reproduction: the algorithm *as printed*
(machine configurations constrained by weight only, Eq. 3) can exceed
its ``(1 + eps)`` guarantee on integer instances, because a long job may
round *below* ``T/k`` (``unit = ceil(T/k^2)`` need not divide ``T/k``),
letting one machine pack ``k`` or more long jobs whose un-rounding
overshoots ``(1 + 1/k) T``.

The fix (``guarantee_fix=True``, the default): cap configurations at
``k - 1`` jobs.  Sound — any true schedule of makespan ``<= T`` has
fewer than ``k`` long jobs per machine since each strictly exceeds
``T/k`` — and sufficient: per-machine un-rounding error is then at most
``(k-1)(unit-1) <= (k-1) T / k^2 < T/k``.

The witness instance below is kept verbatim so the gap (and its closure)
never regresses silently.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ptas import parallel_ptas, ptas
from repro.core.reference import algorithm1
from repro.exact.brute import brute_force
from repro.model.instance import Instance

from conftest import small_instances

#: The hypothesis-found witness: OPT = 25, printed algorithm returns 39
#: at eps = 0.5 (ratio 1.56 > 1.5).  One machine receives three jobs of
#: 13 (each rounds 13 -> 7 at T=25, unit=7; 3x7=21 <= 25 passes the
#: weight check; un-rounded load 39).
WITNESS = Instance([1, 1, 3, 12, 12, 12, 13, 13, 13, 17], num_machines=4)
WITNESS_OPT = 25
WITNESS_EPS = 0.5


class TestTheGap:
    def test_witness_optimum(self):
        assert brute_force(WITNESS).makespan == WITNESS_OPT

    def test_printed_algorithm_violates_guarantee(self):
        """The gap exists — in the verbatim pipeline and the literal
        transcription alike.  If this ever starts passing the guarantee,
        the printed semantics changed: investigate."""
        unfixed = ptas(WITNESS, WITNESS_EPS, engine="table", guarantee_fix=False)
        assert unfixed.makespan > (1 + WITNESS_EPS) * WITNESS_OPT
        reference = algorithm1(WITNESS, WITNESS_EPS)
        assert reference.makespan > (1 + WITNESS_EPS) * WITNESS_OPT

    def test_fix_restores_guarantee_on_witness(self):
        fixed = ptas(WITNESS, WITNESS_EPS, engine="table")
        assert fixed.makespan <= (1 + WITNESS_EPS) * WITNESS_OPT + 1e-9

    def test_fix_applies_to_parallel_pipeline(self):
        fixed = parallel_ptas(WITNESS, WITNESS_EPS, num_workers=4)
        assert fixed.makespan <= (1 + WITNESS_EPS) * WITNESS_OPT + 1e-9

    @pytest.mark.parametrize(
        "engine", ["table", "memo", "frontier", "dominance", "numpy"]
    )
    def test_fix_works_on_every_engine(self, engine):
        fixed = ptas(WITNESS, WITNESS_EPS, engine=engine)
        assert fixed.makespan <= (1 + WITNESS_EPS) * WITNESS_OPT + 1e-9


class TestFixedPipelineProperties:
    @given(small_instances(), st.sampled_from([0.2, 0.3, 0.5, 0.8]))
    @settings(max_examples=80)
    def test_property_guarantee_holds_with_fix(self, inst, eps):
        """The tight (1+eps) guarantee across eps values, engines default."""
        opt = brute_force(inst).makespan
        result = ptas(inst, eps)
        assert result.makespan <= (1 + eps) * opt + 1e-9

    @given(small_instances())
    @settings(max_examples=40)
    def test_property_fix_never_worsens_certified_target(self, inst):
        """The cap never cuts off a true schedule: the certified target
        with the fix is still a valid lower bound on OPT."""
        opt = brute_force(inst).makespan
        fixed = ptas(inst, 0.5)
        assert fixed.final_target <= opt

    @given(small_instances())
    @settings(max_examples=40)
    def test_property_parallel_equals_sequential_with_fix(self, inst):
        seq = ptas(inst, 0.5, engine="table")
        par = parallel_ptas(inst, 0.5, num_workers=3, backend="serial")
        assert par.schedule.assignment == seq.schedule.assignment
