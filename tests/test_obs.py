"""Tests for the observability layer (:mod:`repro.obs`): span trees,
export round-trips, schema validation, profiling, and the traced solver
stack."""

from __future__ import annotations

import json
import time

import pytest

from repro.core import SolveContext, parallel_ptas, ptas
from repro.model.instance import Instance
from repro.obs import (
    NULL_TRACER,
    SPAN_KINDS,
    SamplingProfiler,
    TraceSchemaError,
    Tracer,
    load_trace,
    publish_phase_summary,
    save_trace,
    trace_to_payload,
    validate_trace,
    validate_trace_file,
)
from repro.obs.export import payload_to_trace
from repro.obs.schema import _check, load_schema
from repro.obs.trace import _NULL_SPAN
from repro.service.metrics import MetricsRegistry
from repro.workloads.suites import suite

INSTANCE = Instance([7, 7, 6, 6, 5, 4, 4, 3, 9, 2, 11, 5], num_machines=3)


class TestTracer:
    def test_span_nesting_and_walk(self):
        tracer = Tracer()
        with tracer.span("solve") as root:
            with tracer.span("probe", target=10):
                with tracer.span("round"):
                    pass
            with tracer.span("probe", target=5):
                pass
        assert [s.kind for s in root.walk()] == ["solve", "probe", "round", "probe"]
        assert len(tracer.find("probe")) == 2
        assert root.end is not None and root.end >= root.start

    def test_counters_accumulate(self):
        tracer = Tracer()
        tracer.count("probes")
        tracer.count("probes")
        tracer.count("configs_enumerated", 41)
        assert tracer.counters == {"probes": 2, "configs_enumerated": 41}

    def test_late_attrs_via_set(self):
        tracer = Tracer()
        with tracer.span("probe", target=9) as sp:
            sp.set(feasible=True)
        assert sp.attrs == {"target": 9, "feasible": True}

    def test_phase_summary_counts_and_seconds(self):
        clock_values = iter([0.0, 1.0, 3.0, 4.0])
        tracer = Tracer(clock=lambda: next(clock_values))
        with tracer.span("solve"):
            with tracer.span("probe"):
                pass
        summary = tracer.phase_summary()
        assert summary["solve"] == {"count": 1, "seconds": 4.0}
        assert summary["probe"] == {"count": 1, "seconds": 2.0}

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.span("probe", target=1)
        assert span is _NULL_SPAN
        with span as sp:
            sp.set(anything=1)  # silently dropped
        NULL_TRACER.count("probes")  # no state anywhere to assert on


class TestNullTracerOverhead:
    def test_noop_span_cost_is_negligible(self):
        """The no-op tracer must make instrumentation effectively free.

        Generous bound (5 µs per span open/close on a shared CI box);
        the real cost is ~100 ns.  This is the smoke test backing the
        <2 % tier-1 overhead requirement.
        """
        n = 20_000
        t0 = time.perf_counter()
        for _ in range(n):
            with NULL_TRACER.span("level", level=1):
                pass
            NULL_TRACER.count("levels")
        per_span = (time.perf_counter() - t0) / n
        assert per_span < 5e-6


class TestTracedSolvers:
    def test_ptas_probe_spans_match_bisection_trace(self):
        tracer = Tracer()
        result = ptas(INSTANCE, 0.3, ctx=SolveContext(tracer=tracer))
        probes = tracer.find("probe")
        assert len(probes) == result.outcome.num_iterations
        assert tracer.counters["probes"] == len(probes)
        # One solve root wrapping everything.
        assert len(tracer.roots) == 1
        assert tracer.roots[0].kind == "solve"
        assert tracer.roots[0].attrs["algorithm"] == "ptas"
        # Every probe carries one round span and its recorded attrs
        # mirror the BisectionIteration trace.
        for span, it in zip(probes, result.outcome.iterations):
            assert span.attrs["target"] == it.target
            assert span.attrs["feasible"] == it.feasible
            assert len(span.find("round")) == 1

    def test_parallel_ptas_level_spans_nest_under_probes(self):
        tracer = Tracer()
        result = parallel_ptas(
            INSTANCE, 0.3, 4, backend="numpy-serial", ctx=SolveContext(tracer=tracer)
        )
        probes = tracer.find("probe")
        assert len(probes) == result.outcome.num_iterations
        levels = tracer.find("level")
        assert levels and tracer.counters["levels"] == len(levels)
        # Every level span sits under exactly one probe span (via a dp span).
        for level in levels:
            owners = [p for p in probes if level in list(p.walk())]
            assert len(owners) == 1
        # And dp spans tag the engine.
        for dp in tracer.find("dp"):
            assert dp.attrs["engine"] == "parallel-numpy-serial"

    def test_all_emitted_kinds_are_in_taxonomy(self):
        tracer = Tracer()
        parallel_ptas(INSTANCE, 0.3, 2, backend="serial", ctx=SolveContext(tracer=tracer))
        assert {s.kind for s in tracer.walk()} <= set(SPAN_KINDS)

    def test_level_spans_cover_dp_wall_time(self):
        """Acceptance: on a workload-suite instance the per-level spans
        account for >= 90 % of the traced DP wall time.

        Uses a paper-speedup grid instance (``u_10n`` at ``m=10, n=50``)
        — big enough that the table fill dominates the DP span's fixed
        overhead (level-index build + table allocation).  Wall-clock
        ratios jitter under full-suite load, so the best of three runs
        must clear the bar."""
        item = next(
            it
            for it in suite("paper-speedup")
            if it.kind == "u_10n" and (it.m, it.n) == (10, 50)
        )
        best_share = 0.0
        for _ in range(3):
            tracer = Tracer()
            parallel_ptas(
                item.instance,
                0.3,
                4,
                backend="numpy-serial",
                ctx=SolveContext(tracer=tracer),
            )
            summary = tracer.phase_summary()
            share = summary["level"]["seconds"] / summary["dp"]["seconds"]
            best_share = max(best_share, share)
            if best_share >= 0.9:
                break
        assert best_share >= 0.9
        # ... and the emitted payload is schema-valid.
        assert validate_trace(trace_to_payload(tracer)) == []


class TestExportRoundTrip:
    def _traced(self) -> Tracer:
        tracer = Tracer()
        parallel_ptas(
            INSTANCE, 0.3, 2, backend="numpy-serial", ctx=SolveContext(tracer=tracer)
        )
        return tracer

    def test_payload_shape(self):
        tracer = self._traced()
        payload = trace_to_payload(tracer)
        assert payload["schema"] == "repro-trace-v1"
        assert payload["traceEvents"][0]["args"]["parent"] == 0
        assert all(e["ph"] == "X" for e in payload["traceEvents"])
        assert payload["otherData"]["counters"]["probes"] >= 1

    def test_save_load_round_trip(self, tmp_path):
        tracer = self._traced()
        path = save_trace(tracer, tmp_path / "trace.json")
        validate_trace_file(path)
        loaded = load_trace(path)
        original = [(s.kind, len(s.children)) for s in tracer.walk()]
        reloaded = [(s.kind, len(s.children)) for s in loaded.walk()]
        assert original == reloaded
        assert loaded.counters == tracer.counters
        # Attributes and durations survive (timestamps are re-based to
        # the trace origin; durations keep microsecond resolution).
        for a, b in zip(tracer.walk(), loaded.walk()):
            assert b.attrs == a.attrs
            assert b.duration == pytest.approx(a.duration, abs=1e-5)

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other", "traceEvents": []}))
        with pytest.raises(ValueError, match="schema"):
            load_trace(path)

    def test_payload_rejects_unknown_parent(self):
        payload = trace_to_payload(self._traced())
        payload["traceEvents"][0]["args"]["parent"] = 999
        with pytest.raises(ValueError, match="parent"):
            payload_to_trace(payload)


class TestSchemaValidation:
    def _valid_payload(self) -> dict:
        tracer = Tracer()
        with tracer.span("solve"):
            with tracer.span("probe", target=3):
                pass
        return trace_to_payload(tracer)

    def test_valid_payload_passes(self):
        assert validate_trace(self._valid_payload()) == []

    def test_unknown_span_kind_fails(self):
        payload = self._valid_payload()
        payload["traceEvents"][1]["args"]["kind"] = "mystery"
        payload["traceEvents"][1]["name"] = "mystery"
        errors = validate_trace(payload)
        assert errors and any("mystery" in e for e in errors)

    def test_missing_required_key_fails(self):
        payload = self._valid_payload()
        del payload["traceEvents"][0]["args"]["id"]
        assert validate_trace(payload)

    def test_duplicate_ids_fail(self):
        payload = self._valid_payload()
        payload["traceEvents"][1]["args"]["id"] = payload["traceEvents"][0]["args"][
            "id"
        ]
        payload["traceEvents"][1]["args"]["parent"] = 0
        assert any("duplicate" in e for e in validate_trace(payload))

    def test_forward_parent_reference_fails(self):
        payload = self._valid_payload()
        payload["traceEvents"][0]["args"]["parent"] = payload["traceEvents"][1][
            "args"
        ]["id"]
        assert any("parent" in e for e in validate_trace(payload))

    def test_schema_enum_matches_span_kinds(self):
        schema = load_schema()
        enum = schema["properties"]["traceEvents"]["items"]["properties"]["args"][
            "properties"
        ]["kind"]["enum"]
        assert tuple(enum) == SPAN_KINDS

    def test_handrolled_validator_agrees_on_bad_kind(self):
        """The zero-dependency fallback validator must also reject
        unknown kinds (CI has no jsonschema installed)."""
        payload = self._valid_payload()
        payload["traceEvents"][0]["args"]["kind"] = "mystery"
        errors: list[str] = []
        _check(payload, load_schema(), "$", errors)
        assert any("mystery" in e for e in errors)

    def test_validate_trace_file_raises_with_all_violations(self, tmp_path):
        payload = self._valid_payload()
        payload["traceEvents"][0]["args"]["kind"] = "mystery"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(TraceSchemaError, match="mystery"):
            validate_trace_file(path)


class TestSamplingProfiler:
    def test_slow_span_gets_profile(self):
        profiler = SamplingProfiler(interval=0.002, threshold=0.02)
        tracer = Tracer(profiler=profiler)
        with tracer.span("probe", target=1):
            deadline = time.perf_counter() + 0.1
            while time.perf_counter() < deadline:
                sum(range(100))
        (probe,) = tracer.find("probe")
        assert probe.attrs["profile_samples"] >= 1
        assert probe.attrs["profile"][0]["count"] >= 1
        assert ":" in probe.attrs["profile"][0]["stack"]

    def test_fast_span_keeps_no_profile(self):
        profiler = SamplingProfiler(interval=0.001, threshold=10.0)
        tracer = Tracer(profiler=profiler)
        with tracer.span("probe", target=1):
            time.sleep(0.005)
        (probe,) = tracer.find("probe")
        assert "profile" not in probe.attrs

    def test_unprofiled_kinds_do_not_sample(self):
        profiler = SamplingProfiler(kinds=("probe",))
        tracer = Tracer(profiler=profiler)
        with tracer.span("level", level=1):
            pass
        (level,) = tracer.find("level")
        assert "profile" not in level.attrs


class TestPublishPhaseSummary:
    def test_summary_lands_in_metrics(self):
        tracer = Tracer()
        ptas(INSTANCE, 0.3, ctx=SolveContext(tracer=tracer))
        metrics = MetricsRegistry()
        summary = publish_phase_summary(tracer, metrics)
        snap = metrics.snapshot()
        assert snap["counters"]["trace.spans.probe"] == summary["probe"]["count"]
        assert snap["counters"]["trace.counters.probes"] == tracer.counters["probes"]
        assert (
            snap["histograms"]["trace.phase.dp.seconds"]["count"] == 1
        )
