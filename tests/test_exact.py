"""Tests for the exact solvers (:mod:`repro.exact`) — the CPLEX stand-ins."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.exact.api import solve_exact
from repro.exact.branch_and_bound import branch_and_bound
from repro.exact.brute import brute_force
from repro.exact.ilp import ilp_solve
from repro.model.instance import Instance

from conftest import small_instances


class TestBruteForce:
    def test_known_optimum(self):
        assert brute_force(Instance([5, 4, 3, 3, 3], 2)).makespan == 9

    def test_single_machine(self):
        assert brute_force(Instance([1, 2, 3], 1)).makespan == 6

    def test_one_job(self):
        assert brute_force(Instance([42], 5)).makespan == 42

    def test_perfect_split(self):
        assert brute_force(Instance([3, 3, 3, 3], 2)).makespan == 6

    def test_respects_job_limit(self):
        with pytest.raises(ValueError, match="limited"):
            brute_force(Instance([1] * 25, 2))

    def test_returns_valid_schedule(self):
        sched = brute_force(Instance([7, 5, 4, 4, 2], 3))
        assert sched.is_valid()

    def test_lower_bound_attained_when_divisible(self):
        inst = Instance([2, 2, 2, 2, 2, 2], 3)
        assert brute_force(inst).makespan == 4


class TestBranchAndBound:
    def test_matches_brute(self):
        inst = Instance([9, 7, 6, 5, 4, 3, 2], 3)
        assert branch_and_bound(inst).makespan == brute_force(inst).makespan

    def test_reports_optimal(self):
        res = branch_and_bound(Instance([5, 4, 3, 3, 3], 2))
        assert res.optimal
        assert res.makespan == 9
        assert res.lower_bound <= res.makespan

    def test_lpt_optimal_shortcut(self):
        """When LPT hits the lower bound, zero nodes are explored."""
        inst = Instance([4, 4, 4, 4], 2)
        res = branch_and_bound(inst)
        assert res.optimal
        assert res.nodes_explored == 0

    def test_budget_exhaustion_returns_incumbent(self):
        inst = Instance([13, 11, 9, 8, 7, 7, 6, 5, 4, 3, 3, 2], 4)
        res = branch_and_bound(inst, node_budget=1)
        assert res.schedule.is_valid()
        # With one node the incumbent is LPT's schedule (or proven optimal).
        from repro.algorithms.lpt import lpt

        assert res.makespan <= lpt(inst).makespan

    def test_handles_larger_instance(self):
        inst = Instance(list(range(1, 21)), 4)  # 20 jobs
        res = branch_and_bound(inst)
        assert res.optimal
        assert res.makespan == 53  # total 210 / 4 = 52.5 -> 53

    @given(small_instances())
    @settings(max_examples=50)
    def test_property_matches_brute(self, inst: Instance):
        assert branch_and_bound(inst).makespan == brute_force(inst).makespan


class TestILP:
    def test_matches_brute(self):
        inst = Instance([9, 7, 6, 5, 4, 3, 2], 3)
        res = ilp_solve(inst)
        assert res.optimal
        assert res.makespan == brute_force(inst).makespan

    def test_schedule_valid(self):
        res = ilp_solve(Instance([5, 4, 3, 3, 3], 2))
        assert res.schedule.is_valid()
        assert res.makespan == 9

    def test_objective_matches_makespan(self):
        res = ilp_solve(Instance([6, 5, 4], 2))
        assert res.objective == pytest.approx(res.makespan)

    def test_without_symmetry_breaking(self):
        inst = Instance([8, 7, 6, 5], 2)
        a = ilp_solve(inst, symmetry_breaking=True)
        b = ilp_solve(inst, symmetry_breaking=False)
        assert a.makespan == b.makespan == 13

    def test_single_machine(self):
        assert ilp_solve(Instance([3, 4], 1)).makespan == 7

    @given(small_instances(max_jobs=8, max_machines=3, max_time=15))
    @settings(max_examples=25)
    def test_property_matches_brute(self, inst: Instance):
        res = ilp_solve(inst)
        assert res.optimal
        assert res.makespan == brute_force(inst).makespan


class TestSolveExactAPI:
    @pytest.mark.parametrize("method", ["ilp", "bnb", "brute"])
    def test_all_methods_agree(self, method):
        inst = Instance([9, 8, 5, 4, 3, 2], 3)  # total 31 -> LB ceil(31/3)=11
        res = solve_exact(inst, method)
        assert res.makespan == 11
        assert res.optimal
        assert res.method == method

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown exact method"):
            solve_exact(Instance([1], 1), "sat")

    def test_default_is_ilp(self):
        res = solve_exact(Instance([2, 2], 2))
        assert res.method == "ilp"
