"""Tests for the :mod:`repro.qa` differential fuzzing subsystem.

The centerpiece is the acceptance test: a scratch engine with a
deliberately planted off-by-one prune rides the fuzzer via
``FuzzConfig.extra_engines``, the cross-engine oracle catches it, and
ddmin shrinks the find to a handful of jobs.  Around it: unit tests for
the reducer, the corpus format, each oracle class on known-good
engines, and the CLI round trip.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.model.instance import Instance
from repro.model.qinstance import QInstance
from repro.model.schedule import Schedule
from repro.qa import (
    FuzzConfig,
    ReproCase,
    cross_engine_violations,
    ddmin,
    draw_case,
    load_repro,
    metamorphic_violations,
    replay_file,
    run_engines,
    run_fuzz,
    service_equivalence_violations,
    shrink_case,
    write_repro,
)
from repro.service.registry import EngineSpec, available_engines, get_engine

import numpy as np


def _registry_engines(problem: str) -> list[tuple[str, EngineSpec]]:
    return [
        (name, get_engine(name))
        for name in available_engines()
        if problem in get_engine(name).problems and name != "ilp"
    ]


def _buggy_bnb_solve(instance, request, ctx):
    """Exhaustive search with a planted off-by-one prune: branches whose
    load reaches ``best - 1`` are discarded, so an improvement of
    exactly 1 over the LPT incumbent is never found."""
    times = instance.processing_times
    order = sorted(range(instance.num_jobs), key=lambda j: -times[j])
    m = instance.num_machines
    loads = [0] * m
    assign = [0] * instance.num_jobs
    for j in order:
        i = min(range(m), key=lambda k: (loads[k], k))
        loads[i] += times[j]
        assign[j] = i
    best = [max(loads)]
    best_assign = [list(assign)]
    cur = [0] * m
    cur_assign = [0] * instance.num_jobs

    def dfs(pos: int) -> None:
        if pos == len(order):
            if max(cur) < best[0]:
                best[0] = max(cur)
                best_assign[0] = list(cur_assign)
            return
        j = order[pos]
        seen = set()
        for i in range(m):
            if cur[i] in seen:
                continue
            seen.add(cur[i])
            if cur[i] + times[j] >= best[0] - 1:  # BUG: should be >= best[0]
                continue
            cur[i] += times[j]
            cur_assign[j] = i
            dfs(pos + 1)
            cur[i] -= times[j]

    dfs(0)
    machines = [[] for _ in range(m)]
    for j, i in enumerate(best_assign[0]):
        machines[i].append(j)
    return Schedule(instance, [tuple(ms) for ms in machines])


BUGGY_SPEC = EngineSpec(
    name="buggy_bnb",
    description="scratch engine with a planted off-by-one prune",
    guarantee=lambda req: 1.0,
    solve=_buggy_bnb_solve,
    exact=True,
)


class TestDdmin:
    def test_minimizes_to_the_failing_pair(self):
        assert ddmin(
            [1, 2, 3, 4, 5, 6], lambda xs: 4 in xs and 2 in xs
        ) == [2, 4]

    def test_single_failing_element(self):
        assert ddmin(list(range(20)), lambda xs: 13 in xs) == [13]

    def test_everything_needed_stays(self):
        items = [1, 2, 3]
        assert ddmin(items, lambda xs: xs == items) == items


class TestReproCase:
    def test_round_trip(self):
        case = ReproCase(
            problem="q_cmax", times=(3, 1, 2), machines=2, speeds=(2, 1)
        )
        again = ReproCase.from_dict(json.loads(json.dumps(case.to_dict())))
        assert again == case
        assert again.fingerprint() == case.fingerprint()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown repro-case fields"):
            ReproCase.from_dict({"problem": "p_cmax", "times": [1],
                                 "machines": 1, "bogus": True})

    def test_q_needs_matching_speeds(self):
        with pytest.raises(ValueError, match="one speed per machine"):
            ReproCase(problem="q_cmax", times=(1,), machines=2, speeds=(1,))

    def test_p_forbids_speeds(self):
        with pytest.raises(ValueError, match="does not take speeds"):
            ReproCase(problem="p_cmax", times=(1,), machines=1, speeds=(1,))

    def test_instance_types(self):
        p = ReproCase(problem="p_cmax", times=(1, 2), machines=2)
        q = ReproCase(
            problem="q_cmax", times=(1, 2), machines=2, speeds=(1, 3)
        )
        assert isinstance(p.instance(), Instance)
        assert isinstance(q.instance(), QInstance)


class TestCorpusFiles:
    def test_write_and_load(self, tmp_path):
        case = ReproCase(problem="p_cmax", times=(5, 5, 4), machines=2)
        original = ReproCase(
            problem="p_cmax", times=(5, 5, 4, 1, 1), machines=2
        )
        path = write_repro(
            tmp_path, case, ["something broke"],
            oracle="cross_engine", original=original, seed=7,
        )
        assert path.name == f"qa-cross_engine-{case.fingerprint()}.json"
        record = load_repro(path)
        assert record["case"] == case
        assert record["original"] == original
        assert record["minimized"] is True
        assert record["seed"] == 7

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="is not a"):
            load_repro(path)


class TestShrinkCase:
    def test_shrinks_job_count_and_times(self):
        case = ReproCase(
            problem="p_cmax",
            times=(33, 89, 30, 1, 68, 15, 3, 91),
            machines=3,
        )
        # Failure: "at least two jobs with time >= 50 are present".
        minimized = shrink_case(
            case,
            lambda c: sum(1 for t in c.times if t >= 50) >= 2,
        )
        assert minimized.num_jobs == 2
        assert all(t >= 50 for t in minimized.times)
        assert minimized.machines == 1

    def test_non_reproducing_case_returned_unchanged(self):
        case = ReproCase(problem="p_cmax", times=(1, 2), machines=2)
        assert shrink_case(case, lambda c: False) == case


class TestOracles:
    def test_cross_engine_clean_on_registry(self):
        inst = Instance([9, 8, 7, 6, 5, 5, 4, 3, 2, 1], 3)
        runs = run_engines(_registry_engines("p_cmax"), inst, 0.3)
        assert cross_engine_violations(inst, runs) == []

    def test_cross_engine_clean_on_q(self):
        inst = QInstance([9, 8, 7, 6, 5], (2, 1, 1))
        runs = run_engines(_registry_engines("q_cmax"), inst, 0.3)
        assert cross_engine_violations(inst, runs) == []

    def test_cross_engine_catches_disagreement(self):
        inst = Instance([3, 3, 2, 2, 2], 2)  # OPT 6; buggy engine says 7
        engines = _registry_engines("p_cmax") + [("buggy_bnb", BUGGY_SPEC)]
        runs = run_engines(engines, inst, 0.3)
        violations = cross_engine_violations(inst, runs)
        assert any(v.check == "exact_disagreement" for v in violations)

    def test_metamorphic_clean_on_registry(self):
        inst = Instance([12, 11, 6, 21, 22, 5], 3)
        violations = metamorphic_violations(
            _registry_engines("p_cmax"), inst, 0.3,
            rng=np.random.default_rng(0),
        )
        assert violations == []

    def test_service_equivalence_clean(self):
        inst = Instance([9, 8, 7, 6, 5], 2)
        assert service_equivalence_violations(inst, "lpt", 0.3) == []


class TestFuzzer:
    def test_draw_case_is_deterministic(self):
        config = FuzzConfig(seed=11, budget=5)
        assert [draw_case(config, i) for i in range(5)] == [
            draw_case(config, i) for i in range(5)
        ]

    def test_clean_run_on_registry_engines(self, tmp_path):
        config = FuzzConfig(
            seed=0, budget=25, corpus_dir=tmp_path, service_every=12
        )
        report = run_fuzz(config)
        assert report.ok, report.summary()
        assert report.cases == 25
        assert not list(tmp_path.iterdir())
        covered = {engine for engine, _ in report.pairs_covered}
        assert {"lpt", "ls", "bnb", "cp", "multifit"} <= covered

    def test_acceptance_off_by_one_is_caught_and_shrunk(self, tmp_path):
        """The issue's acceptance bar: a planted off-by-one in a scratch
        engine is caught by the differential oracle and ddmin shrinks
        the find to at most 6 jobs."""
        config = FuzzConfig(
            seed=0,
            budget=200,
            problem="p_cmax",
            corpus_dir=tmp_path,
            extra_engines={"buggy_bnb": BUGGY_SPEC},
            service=False,
            max_failures=3,
        )
        report = run_fuzz(config)
        assert not report.ok
        for failure in report.failures:
            assert failure.oracle == "cross_engine"
            assert failure.case.num_jobs <= 6
            assert failure.case.num_jobs <= failure.original.num_jobs
            assert failure.path.exists()
            record = load_repro(failure.path)
            assert record["minimized"] is True
            assert any(
                "buggy_bnb" in line for line in record["violations"]
            )

    def test_replay_file_clean_after_fix(self, tmp_path):
        """A repro recorded against a scratch engine no longer fails
        once the engine is gone from the registry — replay reports
        clean, the cue to turn the file into a regression test."""
        config = FuzzConfig(
            seed=0,
            budget=200,
            problem="p_cmax",
            corpus_dir=tmp_path,
            extra_engines={"buggy_bnb": BUGGY_SPEC},
            service=False,
            max_failures=1,
        )
        report = run_fuzz(config)
        assert report.failures
        record, violations = replay_file(report.failures[0].path)
        assert record["oracle"] == "cross_engine"
        assert violations == []


class TestCLI:
    def test_fuzz_exit_zero_when_clean(self, tmp_path, capsys):
        code = main([
            "qa", "fuzz", "--seed", "0", "--budget", "10",
            "--corpus", str(tmp_path), "--no-service",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "10 cases" in out
        assert "0 failure(s)" in out

    def test_replay_cli_round_trip(self, tmp_path, capsys):
        case = ReproCase(problem="p_cmax", times=(5, 5, 4), machines=2)
        path = write_repro(
            tmp_path, case, ["planted"], oracle="cross_engine"
        )
        code = main(["qa", "replay", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean" in out
