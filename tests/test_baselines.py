"""Tests for LS, LPT and MULTIFIT (:mod:`repro.algorithms`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.algorithms.list_scheduling import (
    list_scheduling,
    list_scheduling_worst_case_ratio,
)
from repro.algorithms.lpt import lpt, lpt_worst_case_ratio
from repro.algorithms.multifit import ffd_pack, multifit, multifit_worst_case_ratio
from repro.exact.brute import brute_force
from repro.model.instance import Instance
from repro.workloads.generator import lpt_worst_case_exact

from conftest import small_instances


class TestListScheduling:
    def test_input_order(self):
        inst = Instance([2, 3, 4, 6], num_machines=2)
        assert list_scheduling(inst).machine_loads == (6, 9)

    def test_custom_order(self):
        inst = Instance([2, 3, 4, 6], num_machines=2)
        sched = list_scheduling(inst, order=[3, 2, 1, 0])
        assert sched.makespan == 8  # LPT order

    def test_rejects_bad_order(self):
        inst = Instance([1, 2], num_machines=1)
        with pytest.raises(ValueError, match="permutation"):
            list_scheduling(inst, order=[0, 0])

    def test_single_machine(self):
        inst = Instance([1, 2, 3], num_machines=1)
        assert list_scheduling(inst).makespan == 6

    def test_graham_adversarial(self):
        """The classic LS bad case: many small jobs then one big one."""
        m = 4
        inst = Instance([1] * (m * (m - 1)) + [m], num_machines=m)
        sched = list_scheduling(inst)
        assert sched.makespan == 2 * m - 1  # vs optimal m
        assert brute_force(Instance([1] * 6 + [3], 3)).makespan == 3

    def test_worst_case_ratio_formula(self):
        assert list_scheduling_worst_case_ratio(4) == pytest.approx(1.75)
        with pytest.raises(ValueError):
            list_scheduling_worst_case_ratio(0)

    @given(small_instances())
    @settings(max_examples=60)
    def test_property_two_approximation(self, inst: Instance):
        opt = brute_force(inst).makespan
        ratio = list_scheduling(inst).makespan / opt
        assert ratio <= 2.0 - 1.0 / inst.num_machines + 1e-9


class TestLPT:
    def test_simple(self):
        inst = Instance([2, 3, 4, 6], num_machines=2)
        assert lpt(inst).makespan == 8

    def test_beats_or_ties_ls_usually(self):
        inst = Instance([1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 4], 4)
        assert lpt(inst).makespan <= list_scheduling(inst).makespan

    def test_graham_tight_example(self):
        """LPT = 4m-1 vs OPT = 3m on the classical worst case."""
        for m in (2, 3, 4):
            inst = lpt_worst_case_exact(m)
            assert lpt(inst).makespan == 4 * m - 1
            ratio = (4 * m - 1) / (3 * m)
            assert ratio == pytest.approx(lpt_worst_case_ratio(m))

    def test_worst_case_ratio_formula(self):
        assert lpt_worst_case_ratio(1) == pytest.approx(1.0)
        assert lpt_worst_case_ratio(2) == pytest.approx(4 / 3 - 1 / 6)

    @given(small_instances())
    @settings(max_examples=60)
    def test_property_four_thirds_approximation(self, inst: Instance):
        opt = brute_force(inst).makespan
        ratio = lpt(inst).makespan / opt
        assert ratio <= 4 / 3 - 1 / (3 * inst.num_machines) + 1e-9


class TestFFD:
    def test_packs_within_capacity(self):
        inst = Instance([6, 4, 3, 2], num_machines=2)
        bins = ffd_pack(inst, 8)
        assert bins is not None
        t = inst.processing_times
        for b in bins:
            assert sum(t[j] for j in b) <= 8

    def test_fails_when_over_m_bins(self):
        inst = Instance([6, 6, 6], num_machines=2)
        assert ffd_pack(inst, 6) is None

    def test_fails_when_job_exceeds_capacity(self):
        inst = Instance([10], num_machines=1)
        assert ffd_pack(inst, 9) is None

    def test_all_jobs_packed(self):
        inst = Instance([5, 4, 3, 3, 2, 1], num_machines=3)
        bins = ffd_pack(inst, 7)
        assert bins is not None
        assert sorted(j for b in bins for j in b) == list(range(6))


class TestMultifit:
    def test_simple(self):
        inst = Instance([2, 3, 4, 6], num_machines=2)
        assert multifit(inst).makespan == 8

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            multifit(Instance([1], 1), iterations=0)

    def test_more_iterations_never_worse(self):
        inst = Instance([19, 17, 13, 11, 7, 5, 3, 2], num_machines=3)
        coarse = multifit(inst, iterations=1).makespan
        fine = multifit(inst, iterations=12).makespan
        assert fine <= coarse

    def test_worst_case_ratio_formula(self):
        assert multifit_worst_case_ratio(0) == pytest.approx(2.22)
        assert multifit_worst_case_ratio(10) == pytest.approx(1.22, abs=1e-2)

    @given(small_instances())
    @settings(max_examples=60)
    def test_property_multifit_guarantee(self, inst: Instance):
        opt = brute_force(inst).makespan
        sched = multifit(inst, iterations=10)
        assert sched.is_valid()
        assert sched.makespan / opt <= 1.23 + 2e-3

    @given(small_instances())
    @settings(max_examples=40)
    def test_property_multifit_vs_lpt(self, inst: Instance):
        """Not a theorem, but on tiny instances MULTIFIT should stay
        within LPT's guarantee envelope too."""
        opt = brute_force(inst).makespan
        assert multifit(inst).makespan <= (4 / 3) * opt + 1 + 1e-9
