"""Cross-module property-based tests — the library's global invariants.

Each test here spans several subsystems (rounding → configurations → DP →
reconstruction → baselines → exact solvers) and pins an invariant stated
in DESIGN.md §8.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.list_scheduling import list_scheduling
from repro.algorithms.lpt import lpt
from repro.algorithms.multifit import multifit
from repro.core.bounds import makespan_bounds
from repro.core.dp import DPProblem, solve
from repro.core.parallel_dp import parallel_dp
from repro.core.ptas import parallel_ptas, ptas
from repro.core.rounding import round_instance
from repro.exact.branch_and_bound import branch_and_bound
from repro.exact.brute import brute_force
from repro.exact.ilp import ilp_solve
from repro.model.instance import Instance

from conftest import medium_instances, small_instances


@given(small_instances())
@settings(max_examples=40)
def test_all_exact_solvers_agree(inst: Instance):
    """brute == B&B == ILP on every small instance."""
    opt = brute_force(inst).makespan
    assert branch_and_bound(inst).makespan == opt
    ilp = ilp_solve(inst)
    assert ilp.optimal and ilp.makespan == opt


@given(small_instances())
@settings(max_examples=50)
def test_algorithm_hierarchy(inst: Instance):
    """OPT <= every heuristic's makespan <= its guarantee * OPT, and
    each schedule is a valid partition."""
    opt = brute_force(inst).makespan
    m = inst.num_machines
    checks = [
        (list_scheduling(inst), 2.0 - 1.0 / m),
        (lpt(inst), 4.0 / 3.0 - 1.0 / (3.0 * m)),
        (multifit(inst), 1.23),
        (ptas(inst, 0.3).schedule, 1.3),
    ]
    for schedule, factor in checks:
        assert schedule.is_valid()
        assert opt <= schedule.makespan <= factor * opt + 1e-9


@given(medium_instances(max_jobs=25, max_machines=6, max_time=40))
@settings(max_examples=30)
def test_ptas_within_bounds_without_oracle(inst: Instance):
    """On instances too big for brute force: PTAS stays within the
    trivial bounds and at most (1+eps) times the LB."""
    result = ptas(inst, 0.3)
    b = makespan_bounds(inst)
    assert result.makespan <= b.upper
    assert result.makespan <= 1.3 * b.upper  # trivial but type-checks flow
    assert result.makespan >= b.lower or result.makespan >= inst.max_time


@given(medium_instances(max_jobs=20, max_machines=5, max_time=30))
@settings(max_examples=20)
def test_parallel_ptas_deterministic_across_backends(inst: Instance):
    """serial / thread / simulated backends and any worker count produce
    byte-identical schedules."""
    reference = parallel_ptas(inst, 0.3, num_workers=1, backend="serial")
    for backend, workers in (("serial", 4), ("thread", 2), ("simulated", 8)):
        other = parallel_ptas(inst, 0.3, num_workers=workers, backend=backend)
        assert other.schedule.assignment == reference.schedule.assignment


@given(medium_instances(max_jobs=18, max_machines=5, max_time=25),
       st.integers(min_value=2, max_value=6))
@settings(max_examples=25)
def test_dp_decision_monotone_in_bisection(inst: Instance, k: int):
    """For any two targets T1 < T2 in [LB, UB]: feasibility at T1 implies
    feasibility at T2 (the property bisection relies on)."""
    b = makespan_bounds(inst)
    if b.width < 2:
        return
    t1 = b.lower + b.width // 3
    t2 = b.lower + (2 * b.width) // 3
    if t1 >= t2:
        return
    m = inst.num_machines

    def feasible(target: int) -> bool:
        r = round_instance(inst, target, k)
        problem = DPProblem(r.class_sizes, r.class_counts, target)
        return solve(problem, "dominance", limit=m, track_schedule=False).opt is not None

    if feasible(t1):
        assert feasible(t2), f"monotonicity violated between {t1} and {t2}"


@given(medium_instances(max_jobs=15, max_machines=4, max_time=20))
@settings(max_examples=20)
def test_parallel_dp_equals_sequential_on_rounded_instances(inst: Instance):
    """End-to-end: DP problems arising from real rounding (not just the
    synthetic strategy) agree across sequential and wavefront engines."""
    target = makespan_bounds(inst).midpoint()
    r = round_instance(inst, target, 4)
    problem = DPProblem(r.class_sizes, r.class_counts, target)
    seq = solve(problem, "table")
    par = parallel_dp(problem, 3, "serial")
    assert par.opt == seq.opt
    assert par.machine_configs == seq.machine_configs


@given(small_instances(), st.sampled_from([1, 2, 3, 5, 8]))
@settings(max_examples=30)
def test_makespan_weakly_decreasing_in_machines(inst: Instance, extra: int):
    """Adding machines never hurts the optimum (sanity of the model and
    the exact solvers together)."""
    base = brute_force(inst).makespan
    more = brute_force(inst.with_machines(inst.num_machines + extra)).makespan
    assert more <= base


@given(small_instances())
@settings(max_examples=30)
def test_optimum_invariant_under_job_permutation(inst: Instance):
    """OPT depends only on the multiset of processing times."""
    shuffled = Instance(tuple(reversed(inst.processing_times)), inst.num_machines)
    assert brute_force(inst).makespan == brute_force(shuffled).makespan


@given(small_instances(), st.integers(min_value=2, max_value=4))
@settings(max_examples=30)
def test_optimum_scales_with_processing_times(inst: Instance, factor: int):
    """Scaling all times by c scales OPT by exactly c (integral scaling
    is lossless)."""
    scaled = Instance([t * factor for t in inst.processing_times], inst.num_machines)
    assert brute_force(scaled).makespan == factor * brute_force(inst).makespan
