"""Tests for experiment manifests (:mod:`repro.experiments.manifest`)."""

from __future__ import annotations

import json

import pytest

import repro
from repro.experiments.harness import ExperimentConfig
from repro.experiments.manifest import (
    FORMAT_NAME,
    build_manifest,
    read_manifest,
    write_manifest,
)

GRID = [("u_10", 3, 8), ("u_100", 10, 30)]


@pytest.fixture
def manifest():
    return build_manifest(
        experiment="campaign",
        grid=GRID,
        instances_per_type=20,
        base_seed=7,
        config=ExperimentConfig(cores=(2, 4)),
        extra={"note": "unit test"},
    )


class TestBuild:
    def test_core_fields(self, manifest):
        assert manifest["format"] == FORMAT_NAME
        assert manifest["library_version"] == repro.__version__
        assert manifest["grid"] == [["u_10", 3, 8], ["u_100", 10, 30]]
        assert manifest["base_seed"] == 7
        assert manifest["extra"]["note"] == "unit test"

    def test_config_serialized(self, manifest):
        assert manifest["config"]["cores"] == (2, 4)
        assert "cost_model" in manifest["config"]
        assert manifest["config"]["cost_model"]["barrier_ops"] == 5.0

    def test_json_serializable(self, manifest):
        json.dumps(manifest)  # must not raise


class TestRoundtrip:
    def test_write_and_read(self, manifest, tmp_path):
        path = write_manifest(tmp_path, manifest)
        assert path.name == "manifest.json"
        loaded = read_manifest(path)
        assert loaded["experiment"] == "campaign"
        assert loaded["grid"] == [["u_10", 3, 8], ["u_100", 10, 30]]

    def test_read_accepts_directory(self, manifest, tmp_path):
        write_manifest(tmp_path, manifest)
        assert read_manifest(tmp_path)["base_seed"] == 7

    def test_rejects_garbage(self, tmp_path):
        p = tmp_path / "manifest.json"
        p.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            read_manifest(p)

    def test_rejects_wrong_format(self, tmp_path):
        p = tmp_path / "manifest.json"
        p.write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError, match="not a repro-pcmax-manifest"):
            read_manifest(p)

    def test_rejects_wrong_version(self, manifest, tmp_path):
        manifest["version"] = 99
        p = write_manifest(tmp_path, manifest)
        with pytest.raises(ValueError, match="version"):
            read_manifest(p)

    def test_rejects_missing_keys(self, manifest, tmp_path):
        del manifest["grid"]
        p = write_manifest(tmp_path, manifest)
        with pytest.raises(ValueError, match="missing key"):
            read_manifest(p)


class TestCLIIntegration:
    def test_experiment_writes_manifest(self, tmp_path, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "experiment",
                    "--grid",
                    "u_10:2:5",
                    "--instances",
                    "1",
                    "--cores",
                    "2",
                    "--ip-time-limit",
                    "5",
                    "--csv-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        loaded = read_manifest(tmp_path)
        assert loaded["grid"] == [["u_10", 2, 5]]
        assert loaded["instances_per_type"] == 1
