"""Tests for the service wire types (:mod:`repro.service.requests`)."""

from __future__ import annotations

import pytest

from repro.model.instance import Instance
from repro.model.qinstance import QInstance, QSchedule
from repro.service.requests import (
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOLS,
    DeadlineExceeded,
    SolveRequest,
    SolveResult,
    StreamRequest,
    deadline_checker,
)


class TestSolveRequest:
    def test_round_trip_json(self):
        req = SolveRequest(
            times=(5, 4, 3),
            machines=2,
            engine="parallel_ptas",
            eps=0.25,
            deadline=1.5,
            workers=8,
            backend="thread",
            request_id="abc",
        )
        again = SolveRequest.from_json(req.to_json())
        assert again == req

    def test_instance_validation(self):
        req = SolveRequest(times=(5, 4, 3), machines=2)
        inst = req.instance()
        assert inst == Instance((5, 4, 3), 2)
        bad = SolveRequest(times=(0,), machines=1)
        with pytest.raises(ValueError):
            bad.instance()

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="machines"):
            SolveRequest.from_json('{"times": [1, 2]}')

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            SolveRequest.from_json('{"times": [1], "machines": 1, "bogus": 2}')

    def test_malformed_json_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            SolveRequest.from_json("{not json")

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            SolveRequest(times=(1,), machines=1, deadline=-1.0)

    def test_non_positive_eps_rejected(self):
        with pytest.raises(ValueError, match="eps"):
            SolveRequest(times=(1,), machines=1, eps=0.0)


class TestProtocolVersioning:
    def test_constants(self):
        assert PROTOCOL_VERSION == 2
        assert SUPPORTED_PROTOCOLS == (1, 2)

    def test_wire_request_without_protocol_is_v1(self):
        req = SolveRequest.from_json('{"times": [5, 4], "machines": 2}')
        assert req.protocol == 1
        assert req.problem == "p_cmax"

    def test_internal_constructor_defaults_to_current(self):
        assert SolveRequest(times=(1,), machines=1).protocol == PROTOCOL_VERSION

    def test_v2_q_round_trip(self):
        req = SolveRequest(
            times=(6, 4, 3, 2),
            machines=2,
            problem="q_cmax",
            speeds=(3, 1),
            engine="lpt",
            request_id="q1",
        )
        again = SolveRequest.from_json(req.to_json())
        assert again == req
        assert again.protocol == 2
        inst = again.instance()
        assert isinstance(inst, QInstance)
        assert inst.speeds == (3, 1)

    def test_v1_round_trip_unchanged(self):
        payload = '{"times": [5, 4, 3], "machines": 2, "engine": "ptas"}'
        req = SolveRequest.from_json(payload)
        again = SolveRequest.from_json(req.to_json())
        assert again == req
        assert isinstance(req.instance(), Instance)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="supports versions 1, 2"):
            SolveRequest.from_json(
                '{"times": [1], "machines": 1, "protocol": 3}'
            )

    def test_problem_field_requires_v2(self):
        with pytest.raises(ValueError, match="protocol version 2"):
            SolveRequest.from_json(
                '{"times": [1], "machines": 1, "problem": "q_cmax", "speeds": [1]}'
            )

    def test_q_requires_speeds_matching_machines(self):
        with pytest.raises(ValueError):
            SolveRequest(times=(1,), machines=2, problem="q_cmax", speeds=(1,))
        with pytest.raises(ValueError):
            SolveRequest(times=(1,), machines=1, problem="q_cmax")

    def test_p_forbids_speeds(self):
        with pytest.raises(ValueError, match="speeds"):
            SolveRequest(times=(1,), machines=1, speeds=(1,))

    def test_unknown_problem_rejected(self):
        with pytest.raises(ValueError, match="r_cmax"):
            SolveRequest(times=(1,), machines=1, problem="r_cmax")

    def test_stream_request_versioning(self):
        req = StreamRequest.from_dict(
            {"op": "stream", "action": "open_session", "tenant": "t", "machines": 2}
        )
        assert req.protocol == 1
        assert req.problem == "p_cmax"
        with pytest.raises(ValueError, match="protocol"):
            StreamRequest.from_dict(
                {
                    "op": "stream",
                    "action": "open_session",
                    "tenant": "t",
                    "machines": 2,
                    "protocol": 99,
                }
            )

    def test_q_result_schedule_dispatches(self):
        req = SolveRequest(
            times=(6, 4, 3, 2),
            machines=2,
            problem="q_cmax",
            speeds=(3, 1),
            engine="lpt",
        )
        result = SolveResult(
            request_id="", makespan=4.0, assignment=((0, 1, 3), (2,)), engine="lpt"
        )
        sched = result.schedule(req.instance())
        assert isinstance(sched, QSchedule)
        assert sched.makespan == 4.0


class TestSolveResult:
    def test_round_trip_json(self):
        res = SolveResult(
            request_id="r1",
            status="ok",
            engine="ptas",
            makespan=14,
            assignment=((0, 1), (2,)),
            guarantee=1.3,
            elapsed=0.01,
        )
        again = SolveResult.from_json(res.to_json())
        assert again == res

    def test_schedule_reconstruction_validates(self):
        inst = Instance((5, 4, 3), 2)
        res = SolveResult(
            status="ok", makespan=8, assignment=((0, 2), (1,)), engine="lpt"
        )
        sched = res.schedule(inst)
        assert sched.makespan == 8
        with pytest.raises(ValueError):
            SolveResult(status="rejected").schedule(inst)

    def test_rejected_round_trip(self):
        res = SolveResult(status="rejected", retry_after=0.5, error="queue full")
        again = SolveResult.from_json(res.to_json())
        assert again.retry_after == 0.5
        assert not again.ok


class TestDeadlineChecker:
    def test_passes_before_and_raises_after(self):
        now = [0.0]
        check = deadline_checker(1.0, clock=lambda: now[0])
        check()  # t=0, fine
        now[0] = 0.999
        check()
        now[0] = 1.001
        with pytest.raises(DeadlineExceeded):
            check()


class TestWorkersAndMode:
    def test_auto_workers_accepted(self):
        req = SolveRequest(times=(3, 2, 1), machines=2, workers="auto")
        assert req.workers == "auto"

    def test_auto_workers_round_trips(self):
        req = SolveRequest(
            times=(3, 2, 1), machines=2, workers="auto", mode="speculative"
        )
        back = SolveRequest.from_json(req.to_json())
        assert back.workers == "auto"
        assert back.mode == "speculative"

    def test_mode_defaults_to_wavefront(self):
        assert SolveRequest(times=(1,), machines=1).mode == "wavefront"

    def test_rejects_non_auto_worker_strings(self):
        with pytest.raises(ValueError, match="auto"):
            SolveRequest(times=(1,), machines=1, workers="many")

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError, match=">= 1"):
            SolveRequest(times=(1,), machines=1, workers=0)
