"""Tests for the service wire types (:mod:`repro.service.requests`)."""

from __future__ import annotations

import pytest

from repro.model.instance import Instance
from repro.service.requests import (
    DeadlineExceeded,
    SolveRequest,
    SolveResult,
    deadline_checker,
)


class TestSolveRequest:
    def test_round_trip_json(self):
        req = SolveRequest(
            times=(5, 4, 3),
            machines=2,
            engine="parallel_ptas",
            eps=0.25,
            deadline=1.5,
            workers=8,
            backend="thread",
            request_id="abc",
        )
        again = SolveRequest.from_json(req.to_json())
        assert again == req

    def test_instance_validation(self):
        req = SolveRequest(times=(5, 4, 3), machines=2)
        inst = req.instance()
        assert inst == Instance((5, 4, 3), 2)
        bad = SolveRequest(times=(0,), machines=1)
        with pytest.raises(ValueError):
            bad.instance()

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="machines"):
            SolveRequest.from_json('{"times": [1, 2]}')

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            SolveRequest.from_json('{"times": [1], "machines": 1, "bogus": 2}')

    def test_malformed_json_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            SolveRequest.from_json("{not json")

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            SolveRequest(times=(1,), machines=1, deadline=-1.0)

    def test_non_positive_eps_rejected(self):
        with pytest.raises(ValueError, match="eps"):
            SolveRequest(times=(1,), machines=1, eps=0.0)


class TestSolveResult:
    def test_round_trip_json(self):
        res = SolveResult(
            request_id="r1",
            status="ok",
            engine="ptas",
            makespan=14,
            assignment=((0, 1), (2,)),
            guarantee=1.3,
            elapsed=0.01,
        )
        again = SolveResult.from_json(res.to_json())
        assert again == res

    def test_schedule_reconstruction_validates(self):
        inst = Instance((5, 4, 3), 2)
        res = SolveResult(
            status="ok", makespan=8, assignment=((0, 2), (1,)), engine="lpt"
        )
        sched = res.schedule(inst)
        assert sched.makespan == 8
        with pytest.raises(ValueError):
            SolveResult(status="rejected").schedule(inst)

    def test_rejected_round_trip(self):
        res = SolveResult(status="rejected", retry_after=0.5, error="queue full")
        again = SolveResult.from_json(res.to_json())
        assert again.retry_after == 0.5
        assert not again.ok


class TestDeadlineChecker:
    def test_passes_before_and_raises_after(self):
        now = [0.0]
        check = deadline_checker(1.0, clock=lambda: now[0])
        check()  # t=0, fine
        now[0] = 0.999
        check()
        now[0] = 1.001
        with pytest.raises(DeadlineExceeded):
            check()


class TestWorkersAndMode:
    def test_auto_workers_accepted(self):
        req = SolveRequest(times=(3, 2, 1), machines=2, workers="auto")
        assert req.workers == "auto"

    def test_auto_workers_round_trips(self):
        req = SolveRequest(
            times=(3, 2, 1), machines=2, workers="auto", mode="speculative"
        )
        back = SolveRequest.from_json(req.to_json())
        assert back.workers == "auto"
        assert back.mode == "speculative"

    def test_mode_defaults_to_wavefront(self):
        assert SolveRequest(times=(1,), machines=1).mode == "wavefront"

    def test_rejects_non_auto_worker_strings(self):
        with pytest.raises(ValueError, match="auto"):
            SolveRequest(times=(1,), machines=1, workers="many")

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError, match=">= 1"):
            SolveRequest(times=(1,), machines=1, workers=0)
