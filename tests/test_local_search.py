"""Tests for local-search post-optimization (:mod:`repro.algorithms.local_search`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.algorithms.local_search import (
    LocalSearchResult,
    improve,
    lpt_with_local_search,
)
from repro.algorithms.lpt import lpt
from repro.exact.brute import brute_force
from repro.model.instance import Instance
from repro.model.schedule import Schedule

from conftest import medium_instances, small_instances


class TestImprove:
    def test_fixes_obvious_imbalance(self):
        inst = Instance([4, 3, 3], num_machines=2)
        bad = Schedule(inst, [[0, 1, 2], []])  # load 10 vs 0
        result = improve(bad)
        assert result.makespan <= 6
        assert result.moves_applied + result.swaps_applied >= 1

    def test_optimal_input_untouched(self):
        inst = Instance([5, 5], num_machines=2)
        opt = Schedule(inst, [[0], [1]])
        result = improve(opt)
        assert result.makespan == 5
        assert result.moves_applied == result.swaps_applied == 0

    def test_swap_needed_case(self):
        # Move alone cannot fix (10, 5+4): swapping 5 and 4 can't help...
        # use the LPT-suboptimal case [5,4,3,3,3] m=2 -> swap lands at 9.
        inst = Instance([5, 4, 3, 3, 3], num_machines=2)
        result = improve(lpt(inst))
        assert result.makespan == 9
        assert result.swaps_applied >= 1

    def test_respects_round_cap(self):
        inst = Instance([4, 3, 3], num_machines=2)
        bad = Schedule(inst, [[0, 1, 2], []])
        result = improve(bad, max_rounds=0)
        assert result.makespan == bad.makespan

    def test_result_is_valid_schedule(self):
        inst = Instance([9, 7, 5, 3, 2, 2, 1], num_machines=3)
        assert improve(lpt(inst)).schedule.is_valid()


class TestLptWithLocalSearch:
    def test_never_worse_than_lpt(self):
        inst = Instance([13, 11, 9, 8, 7, 7, 6, 5], num_machines=3)
        assert lpt_with_local_search(inst).makespan <= lpt(inst).makespan

    @given(small_instances())
    @settings(max_examples=60)
    def test_property_sandwich(self, inst):
        """OPT <= LPT+LS <= LPT, and the result is valid."""
        opt = brute_force(inst).makespan
        improved = lpt_with_local_search(inst)
        assert improved.is_valid()
        assert opt <= improved.makespan <= lpt(inst).makespan

    @given(medium_instances(max_jobs=25, max_machines=5))
    @settings(max_examples=25)
    def test_property_terminates_and_improves(self, inst):
        result = improve(lpt(inst))
        assert isinstance(result, LocalSearchResult)
        assert result.makespan <= lpt(inst).makespan
        assert result.schedule.is_valid()
