"""Tests for the simulated-machine report rendering (:mod:`repro.simcore.report`)."""

from __future__ import annotations

from repro.core.parallel_dp import parallel_dp
from repro.simcore.costmodel import CostModel
from repro.simcore.machine import SimulatedMachine
from repro.simcore.report import summarize, utilization_timeline


def run_machine(paper_example_problem, workers: int = 4) -> SimulatedMachine:
    machine = SimulatedMachine(workers, CostModel())
    parallel_dp(paper_example_problem, workers, "simulated", machine=machine)
    return machine


class TestTimeline:
    def test_empty_machine(self):
        assert "(no traces recorded)" in utilization_timeline(SimulatedMachine(2))

    def test_row_per_level(self, paper_example_problem):
        machine = run_machine(paper_example_problem)
        out = utilization_timeline(machine)
        lines = out.splitlines()
        # header + D-array row + 6 levels
        assert len(lines) == 8
        assert "D-arr" in lines[1]

    def test_subsampling(self, paper_example_problem):
        machine = run_machine(paper_example_problem)
        out = utilization_timeline(machine, max_rows=2)
        assert len(out.splitlines()) <= 5

    def test_utilization_bounded(self, paper_example_problem):
        machine = run_machine(paper_example_problem)
        for trace in machine.traces:
            assert 0.0 <= trace.utilization <= 1.0 + 1e-9


class TestSummary:
    def test_contains_key_numbers(self, paper_example_problem):
        machine = run_machine(paper_example_problem)
        out = summarize(machine)
        assert "4 processors" in out
        assert "speedup" in out
        assert "levels narrower than P" in out

    def test_single_processor(self, paper_example_problem):
        machine = run_machine(paper_example_problem, workers=1)
        out = summarize(machine)
        assert "1 processors" in out
        assert "Karp-Flatt" not in out
