"""Tests for the seeded traffic-replay harness (:mod:`repro.online.replay`)."""

from __future__ import annotations

import pytest

from repro.online.replay import ReplayConfig, generate_events, run_replay


def small_config(**overrides) -> ReplayConfig:
    base = dict(
        family="u_10",
        machines=3,
        eps=0.2,
        num_events=20,
        arrival="poisson",
        rate=2.0,
        depart_prob=0.3,
        seed=7,
    )
    base.update(overrides)
    return ReplayConfig(**base)


class TestGenerateEvents:
    def test_deterministic_for_a_seed(self):
        config = small_config()
        assert generate_events(config) == generate_events(config)
        assert generate_events(config) != generate_events(
            small_config(seed=8)
        )

    def test_trace_shape(self):
        events = generate_events(small_config())
        assert len(events) == 20
        assert events[0].kind == "add"  # never start with a departure
        live: set[str] = set()
        for event in events:
            if event.kind == "add":
                for job_id, time in event.jobs:
                    assert time >= 1
                    assert job_id not in live
                    live.add(job_id)
            else:
                for job_id in event.job_ids:
                    assert job_id in live  # only live jobs depart
                    live.remove(job_id)

    def test_burst_arrivals(self):
        events = generate_events(
            small_config(arrival="burst", burst_size=5, burst_every=4)
        )
        sizes = [len(e.jobs) for e in events if e.kind == "add"]
        assert max(sizes) == 5  # the periodic bursts show up

    def test_config_validation(self):
        with pytest.raises(ValueError, match="arrival"):
            small_config(arrival="lognormal")
        with pytest.raises(ValueError, match="num_events"):
            small_config(num_events=0)


class TestRunReplay:
    def test_modes_reach_equal_quality_with_fewer_solves(self):
        config = small_config(num_events=30)
        events = generate_events(config)
        inc = run_replay(
            events, machines=config.machines, eps=config.eps,
            mode="incremental", verify_every=5,
        )
        scr = run_replay(
            events, machines=config.machines, eps=config.eps,
            mode="scratch", verify_every=5,
        )
        # Scratch re-solves every event (except ones that leave the
        # schedule empty); incremental only on drift, and both settle to
        # a certified 1 + eps schedule at the end.
        assert scr.resolves >= 25
        assert inc.full_solves < scr.full_solves
        # settled flags whether the final settle had to re-solve; either
        # way both modes must end at or under the certified guarantee.
        assert inc.ratio_within_guarantee and scr.ratio_within_guarantee
        assert inc.final_ratio <= 1.0 + config.eps + 1e-6
        assert scr.final_ratio <= 1.0 + config.eps + 1e-6
        assert inc.final_jobs == scr.final_jobs
        assert inc.snapshots_verified > 0 and scr.snapshots_verified > 0

    def test_report_round_trips_to_dict(self):
        config = small_config(num_events=10)
        report = run_replay(
            generate_events(config), machines=config.machines,
            eps=config.eps, mode="incremental",
        )
        payload = report.to_dict()
        assert payload["mode"] == "incremental"
        assert payload["num_events"] == 10
        assert payload["full_solves"] == report.full_solves

    def test_rejects_unknown_mode(self):
        config = small_config(num_events=5)
        with pytest.raises(ValueError, match="mode"):
            run_replay(
                generate_events(config), machines=config.machines,
                eps=config.eps, mode="magic",
            )
