"""Property tests for the Q||Cmax baselines (`repro.algorithms.related`).

Three of the ISSUE's pinned properties live here:

* `q_lpt` / `q_list_scheduling` respect their stated worst-case ratio
  against brute-force OPT on random tiny instances and speed vectors;
* with all speeds equal, the Q path reproduces the identical-machine
  path byte for byte — schedules AND canonical cache keys;
* the registry rejects unsupported (engine, problem) pairs with a
  message listing the valid ones.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.list_scheduling import list_scheduling
from repro.algorithms.lpt import lpt
from repro.algorithms.related import (
    q_list_scheduling,
    q_list_worst_case_ratio,
    q_lpt,
    q_lpt_worst_case_ratio,
)
from repro.model.instance import Instance
from repro.model.qinstance import QInstance
from repro.model.verify import verify_qschedule
from repro.service.cache import canonical_key
from repro.service.registry import UnsupportedProblemError, get_engine
from repro.service.requests import SolveRequest


def brute_force_q_opt(instance: QInstance) -> Fraction:
    """Exact Q||Cmax optimum by enumerating all machine assignments
    (exponential — tiny instances only)."""
    t = instance.processing_times
    s = instance.speeds
    m = instance.num_machines
    best = None
    for assign in product(range(m), repeat=len(t)):
        loads = [0] * m
        for j, i in enumerate(assign):
            loads[i] += t[j]
        span = max(Fraction(loads[i], s[i]) for i in range(m))
        if best is None or span < best:
            best = span
    assert best is not None
    return best


tiny_q_instances = st.builds(
    QInstance,
    st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=7),
    st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=3),
)

q_instances = st.builds(
    QInstance,
    st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=25),
    st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=6),
)


class TestBoundsAgainstBruteForce:
    @settings(max_examples=60)
    @given(tiny_q_instances)
    def test_q_lpt_within_stated_bound_of_opt(self, inst):
        opt = brute_force_q_opt(inst)
        sched = q_lpt(inst)
        assert verify_qschedule(sched, inst).ok
        bound = q_lpt_worst_case_ratio(inst.speeds)
        assert max(sched.exact_completion_times()) <= bound * opt + Fraction(1, 10**9)

    @settings(max_examples=60)
    @given(tiny_q_instances)
    def test_q_list_within_stated_bound_of_opt(self, inst):
        opt = brute_force_q_opt(inst)
        sched = q_list_scheduling(inst)
        assert verify_qschedule(sched, inst).ok
        bound = q_list_worst_case_ratio(inst.speeds)
        assert max(sched.exact_completion_times()) <= bound * opt + Fraction(1, 10**9)


class TestInvariants:
    @settings(max_examples=80)
    @given(q_instances)
    def test_schedules_verify_and_respect_trivial_lb(self, inst):
        for sched in (q_lpt(inst), q_list_scheduling(inst)):
            assert verify_qschedule(sched, inst).ok
            assert sched.makespan >= inst.trivial_lower_bound() - 1e-9
            assert sched.makespan <= inst.trivial_upper_bound() + 1e-9

    def test_bound_collapses_at_unit_speeds(self):
        assert q_list_worst_case_ratio([1] * 4) == pytest.approx(2 - 1 / 4)
        from repro.algorithms.lpt import dcs_lpt_bound

        assert q_lpt_worst_case_ratio([2, 2, 2]) == pytest.approx(dcs_lpt_bound(3))


class TestEqualSpeedsDegenerateToP:
    @settings(max_examples=80)
    @given(
        st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=25),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=5),
    )
    def test_assignments_byte_identical(self, times, m, speed):
        p = Instance(times, m)
        q = QInstance(times, speeds=[speed] * m)
        assert q_lpt(q).assignment == lpt(p).assignment
        assert q_list_scheduling(q).assignment == list_scheduling(p).assignment

    @settings(max_examples=60)
    @given(
        st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=20),
        st.integers(min_value=1, max_value=5),
    )
    def test_unit_speed_canonical_keys_byte_identical(self, times, m):
        p_request = SolveRequest(times=tuple(times), machines=m, engine="lpt")
        q_request = SolveRequest(
            times=tuple(times),
            machines=m,
            problem="q_cmax",
            speeds=(1,) * m,
            engine="lpt",
        )
        assert canonical_key(q_request) == canonical_key(p_request)

    def test_non_unit_equal_speeds_do_not_share_p_namespace(self):
        # Speeds (2,2) scale every makespan by 1/2: the assignment is
        # the p_cmax one but the cached result is not, so the key must
        # live in the q_cmax namespace.
        p_request = SolveRequest(times=(5, 4, 3), machines=2, engine="lpt")
        q_request = SolveRequest(
            times=(5, 4, 3),
            machines=2,
            problem="q_cmax",
            speeds=(2, 2),
            engine="lpt",
        )
        assert canonical_key(q_request) != canonical_key(p_request)


class TestRegistryRejection:
    def test_rejection_lists_valid_pairs(self):
        with pytest.raises(UnsupportedProblemError) as exc:
            get_engine("ptas", problem="q_cmax")
        message = str(exc.value)
        assert "ptas" in message
        assert "p_cmax" in message  # what the engine does solve
        assert "lpt" in message and "ls" in message  # who solves q_cmax

    @pytest.mark.parametrize("engine", ["lpt", "ls"])
    def test_q_capable_engines_resolve(self, engine):
        assert get_engine(engine, problem="q_cmax").supports_problem("q_cmax")

    @pytest.mark.parametrize(
        "engine", ["ptas", "parallel_ptas", "multifit", "ilp", "bnb", "brute"]
    )
    def test_p_only_engines_reject_q(self, engine):
        with pytest.raises(UnsupportedProblemError):
            get_engine(engine, problem="q_cmax")
