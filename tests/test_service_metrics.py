"""Tests for the metrics registry (:mod:`repro.service.metrics`)."""

from __future__ import annotations

import pytest

from repro.core.dp import DPProblem, solve
from repro.service.metrics import (
    Histogram,
    MetricsRegistry,
    dp_cache_stats,
    record_dp_cache,
)


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        assert reg.counter("a").value == 5
        with pytest.raises(ValueError):
            reg.counter("a").inc(-1)

    def test_gauge(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(3)
        reg.gauge("depth").add(-1)
        assert reg.gauge("depth").value == 2.0

    def test_histogram_summary(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == pytest.approx(10.0)
        assert s["mean"] == pytest.approx(2.5)
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert 1.0 <= s["p50"] <= 4.0

    def test_histogram_reservoir_bounds_memory(self):
        h = Histogram(reservoir_size=16)
        for v in range(1000):
            h.observe(float(v))
        assert h.count == 1000
        # Percentiles come from recent values only.
        assert h.percentile(0) >= 1000 - 16

    def test_empty_percentile_is_none(self):
        assert Histogram().percentile(50) is None


class TestRegistry:
    def test_snapshot_is_json_safe(self):
        import json

        reg = MetricsRegistry()
        reg.counter("requests_total").inc()
        reg.gauge("pool_utilization").set(0.5)
        reg.histogram("latency").observe(0.1)
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["counters"]["requests_total"] == 1
        assert snap["gauges"]["pool_utilization"] == 0.5
        assert snap["histograms"]["latency"]["count"] == 1

    def test_render_line(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(2)
        line = reg.render_line()
        assert line.startswith("metrics:")
        assert "hits=2" in line

    def test_set_many_prefixes(self):
        reg = MetricsRegistry()
        reg.set_many("cache", {"hits": 3.0, "misses": 1.0})
        assert reg.gauge("cache.hits").value == 3.0


class TestDPCacheStats:
    def test_reflects_configuration_cache(self):
        before = dp_cache_stats()
        assert set(before) == {"hits", "misses", "currsize", "maxsize"}
        # Solving twice with the same class structure must register
        # activity in the shared configuration cache.
        problem = DPProblem((6, 11), (2, 3), 30)
        solve(problem, "table")
        solve(problem, "table")
        after = dp_cache_stats()
        assert after["hits"] + after["misses"] > before["hits"] + before["misses"]
        assert after["currsize"] >= 1

    def test_record_publishes_gauges(self):
        reg = MetricsRegistry()
        stats = record_dp_cache(reg)
        snap = reg.snapshot()["gauges"]
        assert snap["dp_config_cache.hits"] == float(stats["hits"])
        assert snap["dp_config_cache.currsize"] == float(stats["currsize"])
