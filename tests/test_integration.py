"""End-to-end integration tests: public API, examples, and doctests."""

from __future__ import annotations

import doctest
import importlib
import subprocess
import sys
from pathlib import Path

import pytest

import repro

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

DOCTEST_MODULES = [
    "repro",
    "repro.model.instance",
    "repro.model.schedule",
    "repro.core.dp",
    "repro.core.configurations",
    "repro.core.ptas",
    "repro.algorithms.list_scheduling",
    "repro.algorithms.lpt",
    "repro.algorithms.multifit",
    "repro.exact.brute",
    "repro.exact.branch_and_bound",
    "repro.exact.ilp",
    "repro.workloads.generator",
    "repro.parallel.partition",
    "repro.experiments.reporting",
]


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_end_to_end_workflow(self):
        """The README workflow, executed."""
        inst = repro.make_instance("u_100", m=4, n=16, seed=5)
        result = repro.parallel_ptas(inst, eps=0.3, num_workers=4)
        exact = repro.solve_exact(inst, "bnb")
        assert exact.optimal
        assert exact.makespan <= result.makespan <= 1.3 * exact.makespan
        assert result.schedule.is_valid()
        assert repro.lpt(inst).is_valid()
        assert repro.list_scheduling(inst).is_valid()
        assert repro.multifit(inst).is_valid()

    def test_schedule_roundtrips_through_public_types(self):
        inst = repro.Instance([5, 4, 3], num_machines=2)
        sched = repro.Schedule(inst, [[0], [1, 2]])
        assert sched.makespan == 7


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module)
    assert result.failed == 0, (
        f"{result.failed} doctest failure(s) in {module_name}"
    )


@pytest.mark.slow
@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "cluster_scheduling.py", "epsilon_tradeoff.py",
     "speedup_study.py", "adversarial_lpt.py", "campaign_analysis.py"],
)
def test_examples_run(script):
    """Every example script executes cleanly."""
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{script} produced no output"
