"""Tests for the table experiments (:mod:`repro.experiments.tables`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dp import DPProblem
from repro.experiments.tables import (
    RATIO_POOL,
    RatioRecord,
    TABLE1_PROBLEM,
    TableResult,
    _select,
    level_histogram,
    run_table1,
)


class TestTable1:
    def test_matches_paper(self):
        """Table I of the paper, verbatim."""
        result = run_table1()
        assert result.opt == 2
        assert result.grid == (
            (0, 1, 1, 2),
            (1, 1, 1, 2),
            (1, 1, 2, 2),
        )
        assert result.level_sizes == (1, 2, 3, 3, 2, 1)

    def test_render_contains_grid(self):
        out = run_table1().render()
        assert "Table I" in out
        assert "v2=3" in out
        assert "anti-diagonal" in out

    def test_problem_constants(self):
        assert TABLE1_PROBLEM.class_sizes == (6, 11)
        assert TABLE1_PROBLEM.counts == (2, 3)
        assert TABLE1_PROBLEM.target == 30


class TestSelection:
    def make_record(self, rid: str, par: float, lpt: float) -> RatioRecord:
        return RatioRecord(
            instance_id=rid,
            family_label="fam",
            m=10,
            n=30,
            ratio_parallel=par,
            ratio_lpt=lpt,
            ratio_ls=lpt + 0.1,
            ip_optimal=True,
        )

    def test_best_sorts_by_gap_descending(self):
        records = [
            self.make_record("a", 1.0, 1.3),   # gap 0.3
            self.make_record("b", 1.05, 1.1),  # gap 0.05
            self.make_record("c", 1.0, 1.5),   # gap 0.5
        ]
        best = _select(records, best=True, count=2)
        assert [r.lpt_gap for r in best] == pytest.approx([0.5, 0.3])
        # Relabeled I1, I2 in rank order.
        assert [r.instance_id for r in best] == ["I1", "I2"]

    def test_worst_sorts_ascending(self):
        records = [
            self.make_record("a", 1.0, 1.3),
            self.make_record("b", 1.2, 1.1),  # gap -0.1 (LPT wins)
        ]
        worst = _select(records, best=False, count=1)
        assert worst[0].lpt_gap == pytest.approx(-0.1)

    def test_render(self):
        result = TableResult("T", [self.make_record("I1", 1.0, 1.2)])
        out = result.render()
        assert "I1" in out and "LPT" in out

    def test_pool_includes_special_families(self):
        kinds = {kind for kind, _, _ in RATIO_POOL}
        assert "lpt_adversarial" in kinds
        assert "u_narrow" in kinds


class TestLevelHistogram:
    def test_matches_stats(self):
        p = DPProblem((3, 5), (2, 4), 20)
        from repro.core.dp import solve_table

        stats = solve_table(p, collect_stats=True, track_schedule=False).stats
        assert stats is not None
        np.testing.assert_array_equal(
            level_histogram(p), np.array(stats.level_sizes)
        )

    def test_symmetry(self):
        """q_l is symmetric around the middle anti-diagonal."""
        p = DPProblem((3, 5, 7), (2, 3, 2), 30)
        hist = level_histogram(p)
        np.testing.assert_array_equal(hist, hist[::-1])
