"""Tests for the sequential DP engines (:mod:`repro.core.dp`).

The central invariant: every engine computes the same ``OPT(N)``, and
every witness is a multiset of feasible configurations summing exactly
to ``N`` with ``len == OPT``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dp import (
    DPProblem,
    SEQUENTIAL_ENGINES,
    level_of,
    solve,
    solve_dominance,
    solve_frontier,
    solve_memo,
    solve_numpy,
    solve_table,
    unrank,
)

from conftest import dp_problems

ENGINES = sorted(SEQUENTIAL_ENGINES)


def check_witness(problem: DPProblem, opt: int, configs) -> None:
    """A valid witness: one feasible config per machine, exact cover."""
    assert len(configs) == opt
    total = [0] * len(problem.counts)
    for cfg in configs:
        weight = sum(s * c for s, c in zip(problem.class_sizes, cfg))
        assert weight <= problem.target, f"config {cfg} overloads T"
        assert any(cfg), "zero configuration in witness"
        for i, c in enumerate(cfg):
            total[i] += c
    assert tuple(total) == problem.counts, "witness does not cover N exactly"


class TestDPProblem:
    def test_dims_and_sigma(self, paper_example_problem):
        assert paper_example_problem.dims == (3, 4)
        assert paper_example_problem.table_size == 12
        assert paper_example_problem.num_long_jobs == 5

    def test_strides_row_major(self, paper_example_problem):
        assert paper_example_problem.strides() == (4, 1)

    def test_three_dim_strides(self):
        p = DPProblem((2, 3, 5), (1, 2, 3), 20)
        assert p.strides() == (12, 4, 1)
        assert p.table_size == 2 * 3 * 4

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            DPProblem((2, 3), (1,), 10)

    def test_rejects_oversized_class(self):
        with pytest.raises(ValueError, match="exceeds target"):
            DPProblem((50,), (1,), 10)

    def test_oversized_class_with_zero_count_ok(self):
        p = DPProblem((50,), (0,), 10)
        assert p.table_size == 1

    def test_unrank_roundtrip(self):
        p = DPProblem((2, 3, 5), (1, 2, 3), 20)
        strides = p.strides()
        for flat in range(p.table_size):
            v = unrank(flat, p.dims, strides)
            assert sum(c * s for c, s in zip(v, strides)) == flat

    def test_level_of(self):
        assert level_of((2, 3)) == 5
        assert level_of(()) == 0


class TestPaperExample:
    """§III worked example: sizes (6, 11), N = (2, 3), T = 30."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_opt_is_two(self, paper_example_problem, engine):
        result = solve(paper_example_problem, engine)
        assert result.opt == 2
        check_witness(paper_example_problem, 2, result.machine_configs)

    def test_table_i_values(self, paper_example_problem):
        """Every entry of Table I, via sub-problems."""
        expected = {
            (0, 0): 0, (0, 1): 1, (0, 2): 1, (0, 3): 2,
            (1, 0): 1, (1, 1): 1, (1, 2): 1, (1, 3): 2,
            (2, 0): 1, (2, 1): 1, (2, 2): 2, (2, 3): 2,
        }
        for (v1, v2), want in expected.items():
            sub = DPProblem((6, 11), (v1, v2), 30)
            got = solve_table(sub, track_schedule=False).opt
            assert got == want, f"OPT({v1},{v2}) = {got}, expected {want}"


class TestEdgeCases:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_problem(self, engine):
        result = solve(DPProblem((), (), 10), engine)
        assert result.opt == 0
        assert result.machine_configs == ()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_all_zero_counts(self, engine):
        result = solve(DPProblem((3, 4), (0, 0), 10), engine)
        assert result.opt == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_single_job(self, engine):
        result = solve(DPProblem((7,), (1,), 10), engine)
        assert result.opt == 1
        check_witness(DPProblem((7,), (1,), 10), 1, result.machine_configs)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_one_job_per_machine(self, engine):
        # Size 7, target 10: no two jobs fit together.
        p = DPProblem((7,), (4,), 10)
        assert solve(p, engine).opt == 4

    @pytest.mark.parametrize("engine", ENGINES)
    def test_perfect_packing(self, engine):
        # Two 5s fill a machine of 10 exactly.
        p = DPProblem((5,), (6,), 10)
        assert solve(p, engine).opt == 3

    @pytest.mark.parametrize("engine", ENGINES)
    def test_limit_infeasible(self, engine):
        p = DPProblem((7,), (4,), 10)  # OPT = 4
        result = solve(p, engine, limit=3)
        assert result.opt is None
        assert not result.feasible_within

    @pytest.mark.parametrize("engine", ENGINES)
    def test_limit_exactly_met(self, engine):
        p = DPProblem((7,), (4,), 10)
        result = solve(p, engine, limit=4)
        assert result.opt == 4

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown DP engine"):
            solve(DPProblem((1,), (1,), 1), "bogus")


class TestStats:
    def test_table_stats(self, paper_example_problem):
        res = solve_table(paper_example_problem, collect_stats=True)
        assert res.stats is not None
        assert res.stats.sigma == 12
        assert res.stats.num_levels == 6
        assert res.stats.level_sizes == (1, 2, 3, 3, 2, 1)
        assert res.stats.states_computed == 12
        assert res.stats.num_configs == 7
        # Full scan: every non-zero state scans all configurations.
        assert res.stats.config_scans == 11 * 7
        assert res.stats.total_ops == res.stats.config_scans

    def test_dominance_scans_fewer(self, paper_example_problem):
        full = solve_table(paper_example_problem, collect_stats=True)
        dom = solve_dominance(paper_example_problem, collect_stats=True)
        assert dom.stats is not None and full.stats is not None
        assert dom.stats.config_scans <= full.stats.config_scans

    def test_level_sizes_sum_to_sigma(self):
        p = DPProblem((2, 3, 5), (2, 1, 2), 20)
        res = solve_table(p, collect_stats=True, track_schedule=False)
        assert res.stats is not None
        assert sum(res.stats.level_sizes) == p.table_size
        assert res.stats.num_levels == p.num_long_jobs + 1


@given(dp_problems())
@settings(max_examples=60)
def test_property_engines_agree(problem: DPProblem):
    """All five engines return the same OPT and valid witnesses."""
    reference = solve_table(problem, track_schedule=True)
    assert reference.opt is not None
    check_witness(problem, reference.opt, reference.machine_configs)
    for name, fn in (
        ("memo", solve_memo),
        ("frontier", solve_frontier),
        ("dominance", solve_dominance),
        ("numpy", solve_numpy),
    ):
        result = fn(problem)
        assert result.opt == reference.opt, (
            f"{name} disagrees with table: {result.opt} != {reference.opt}"
        )
        check_witness(problem, result.opt, result.machine_configs)


@given(dp_problems(), st.integers(min_value=1, max_value=4))
@settings(max_examples=40)
def test_property_engines_agree_under_job_cap(problem: DPProblem, cap: int):
    """The guarantee-fix job cap preserves engine agreement and witness
    validity (witness configs must respect the cap too)."""
    capped = DPProblem(
        problem.class_sizes, problem.counts, problem.target, job_cap=cap
    )
    if capped.num_long_jobs == 0:
        return
    reference = solve_table(capped, track_schedule=True)
    assert reference.opt is not None
    check_witness(capped, reference.opt, reference.machine_configs)
    for cfg in reference.machine_configs:
        assert sum(cfg) <= cap
    for fn in (solve_memo, solve_frontier, solve_dominance, solve_numpy):
        result = fn(capped)
        assert result.opt == reference.opt
        for cfg in result.machine_configs:
            assert sum(cfg) <= cap


@given(dp_problems())
@settings(max_examples=30)
def test_property_cap_never_below_uncapped_opt(problem: DPProblem):
    """Capping configurations can only increase the machine count."""
    if problem.num_long_jobs == 0:
        return
    uncapped = solve_table(problem, track_schedule=False).opt
    capped = solve_table(
        DPProblem(problem.class_sizes, problem.counts, problem.target, job_cap=2),
        track_schedule=False,
    ).opt
    assert uncapped is not None and capped is not None
    assert capped >= uncapped


@given(dp_problems())
@settings(max_examples=40)
def test_property_opt_bounds(problem: DPProblem):
    """OPT is between the work bound and the number of jobs."""
    result = solve_table(problem, track_schedule=False)
    n_jobs = problem.num_long_jobs
    assert result.opt is not None
    if n_jobs == 0:
        assert result.opt == 0
        return
    total = sum(s * c for s, c in zip(problem.class_sizes, problem.counts))
    work_bound = -(-total // problem.target) if problem.target > 0 else n_jobs
    assert max(1, work_bound) <= result.opt <= n_jobs


@given(dp_problems())
@settings(max_examples=30)
def test_property_monotone_in_target(problem: DPProblem):
    """A larger target never needs more machines."""
    if not problem.counts or problem.num_long_jobs == 0:
        return
    base = solve_table(problem, track_schedule=False).opt
    bigger = DPProblem(problem.class_sizes, problem.counts, problem.target + 5)
    relaxed = solve_table(bigger, track_schedule=False).opt
    assert relaxed is not None and base is not None
    assert relaxed <= base
