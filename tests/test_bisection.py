"""Tests for the bisection driver (:mod:`repro.core.bisection`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.algorithms.lpt import lpt
from repro.core.bisection import _RoundingCache, bisect_target_makespan
from repro.core.context import SolveContext
from repro.core.bounds import makespan_bounds
from repro.core.dp import DPProblem, DPResult, solve
from repro.core.rounding import round_instance
from repro.exact.brute import brute_force
from repro.model.instance import Instance

from conftest import small_instances


def make_solver(engine: str = "table", calls: list | None = None):
    def solver(problem: DPProblem, m: int) -> DPResult:
        if calls is not None:
            calls.append(problem.target)
        return solve(problem, engine, limit=m)

    return solver


class TestBisection:
    def test_terminates_with_feasible_target(self, small_instance):
        outcome = bisect_target_makespan(small_instance, 4, make_solver())
        bounds = makespan_bounds(small_instance)
        assert bounds.lower <= outcome.final_target <= bounds.upper
        assert outcome.dp_result.opt is not None
        assert outcome.dp_result.opt <= small_instance.num_machines

    def test_final_target_is_minimal_feasible(self, small_instance):
        """Every probe strictly below the final target must have been
        infeasible (monotonicity of the decision problem)."""
        outcome = bisect_target_makespan(small_instance, 4, make_solver())
        for it in outcome.iterations:
            if it.target < outcome.final_target:
                assert not it.feasible

    def test_iteration_count_logarithmic(self, small_instance):
        outcome = bisect_target_makespan(small_instance, 4, make_solver())
        width = makespan_bounds(small_instance).width
        # log2(width) + a couple of extra probes (final certification).
        assert outcome.num_iterations <= width.bit_length() + 2

    def test_trace_records_probes(self, small_instance):
        calls: list[int] = []
        outcome = bisect_target_makespan(
            small_instance, 4, make_solver(calls=calls)
        )
        assert [it.target for it in outcome.iterations] == calls

    def test_fallback_certifies_upper_bound(self):
        """If every probe below UB reports infeasible, the driver must run
        one certification probe at UB itself (which is always feasible)."""
        inst = Instance([5, 4, 3, 2], num_machines=2)
        ub = makespan_bounds(inst).upper

        def stubborn(problem: DPProblem, m: int) -> DPResult:
            if problem.target < ub:
                return DPResult(opt=None)
            return solve(problem, "table", limit=m)

        outcome = bisect_target_makespan(inst, 4, stubborn)
        assert outcome.final_target == ub
        assert outcome.iterations[-1].target == ub
        assert outcome.iterations[-1].feasible

    def test_k1_no_long_jobs(self):
        inst = Instance([5, 4, 3], num_machines=2)
        outcome = bisect_target_makespan(inst, 1, make_solver())
        assert outcome.rounded.num_long_jobs == 0
        assert outcome.dp_result.opt == 0

    @pytest.mark.parametrize("engine", ["table", "frontier", "dominance"])
    def test_engines_reach_same_target(self, small_instance, engine):
        base = bisect_target_makespan(small_instance, 4, make_solver("table"))
        other = bisect_target_makespan(small_instance, 4, make_solver(engine))
        assert other.final_target == base.final_target


class TestWarmStart:
    """The warm-started search must certify an equally valid target —
    the acceptance bar for the deviation.

    Equality of the *exact* final target with the faithful search is too
    strong a property: feasibility of the rounded DP is monotone only in
    the sense that every ``T >= OPT`` is feasible — below ``OPT`` the
    rounding bucket changes with ``T``, so probes in different brackets
    can legitimately converge to different (all valid, all ``<= OPT``)
    certified targets.  What must hold: both searches certify a feasible
    target inside the Eq. 1–2 bounds and never above the true optimum,
    and the warm search pays at most one extra probe (the final
    certification of a never-probed upper bound)."""

    def test_same_final_target_on_fixture(self, small_instance):
        faithful = bisect_target_makespan(small_instance, 4, make_solver())
        warm = bisect_target_makespan(
            small_instance, 4, make_solver(), ctx=SolveContext(warm_start=True)
        )
        assert warm.final_target == faithful.final_target
        assert warm.dp_result.opt == faithful.dp_result.opt

    def test_lpt_seed_tightens_first_probe(self):
        inst = Instance([9, 8, 7, 6, 5, 5, 4, 3, 2, 1], num_machines=3)
        seed = min(makespan_bounds(inst).upper, lpt(inst).makespan)
        warm = bisect_target_makespan(inst, 4, make_solver(), ctx=SolveContext(warm_start=True))
        assert warm.iterations[0].upper == seed
        faithful = bisect_target_makespan(inst, 4, make_solver())
        assert warm.num_iterations <= faithful.num_iterations

    def test_faithful_search_never_reuses_roundings(self, small_instance):
        outcome = bisect_target_makespan(small_instance, 4, make_solver())
        assert outcome.rounding_reuses == 0

    def test_rounding_cache_reuses_same_bucket(self):
        # k = 2, times below: 15/14/13 are long and 2 short for both
        # targets, and ceil(20/4) == ceil(19/4) == 5 — same bucket.
        inst = Instance([15, 14, 13, 2], num_machines=3)
        cache = _RoundingCache(inst, 2)
        first = cache.round(20)
        second = cache.round(19)
        assert cache.reuses == 1
        assert second.target == 19
        assert second.unit == first.unit
        assert second.class_sizes == first.class_sizes
        assert second.class_counts == first.class_counts
        # Reuse must be indistinguishable from rounding from scratch.
        fresh = round_instance(inst, 19, 2)
        assert second.class_sizes == fresh.class_sizes
        assert second.class_counts == fresh.class_counts
        assert second.short_jobs == fresh.short_jobs

    def test_rounding_cache_rejects_bucket_change(self):
        inst = Instance([15, 14, 13, 2], num_machines=3)
        cache = _RoundingCache(inst, 2)
        cache.round(20)
        # ceil(24/4) == 6 != 5: new quantum, must re-round.
        cache.round(24)
        assert cache.reuses == 0

    @given(small_instances())
    @settings(max_examples=40)
    def test_property_warm_as_valid_as_faithful(self, inst: Instance):
        opt = brute_force(inst).makespan
        bounds = makespan_bounds(inst)
        for k in (2, 3, 4):
            faithful = bisect_target_makespan(inst, k, make_solver())
            warm = bisect_target_makespan(
                inst, k, make_solver(), ctx=SolveContext(warm_start=True)
            )
            for outcome in (faithful, warm):
                assert bounds.lower <= outcome.final_target, k
                assert outcome.final_target <= min(bounds.upper, opt), k
                # Any probe at the certified target must have been
                # feasible (the last recorded probe may be the
                # infeasible midpoint that pinned lb to a ub already
                # certified by the LPT seed).
                for it in outcome.iterations:
                    if it.target == outcome.final_target:
                        assert it.feasible, k
            # The warm interval is never wider, so the bisection loop
            # probes no more often; certifying an unprobed UB costs at
            # most one extra solve.
            assert warm.num_iterations <= faithful.num_iterations + 1, k


@given(small_instances())
@settings(max_examples=40)
def test_property_final_target_bounds_optimum(inst: Instance):
    """The certified rounded target never exceeds UB and is never below
    LB; and the true optimum is at least LB (so the (1+eps) argument can
    anchor on T*)."""
    outcome = bisect_target_makespan(inst, 3, make_solver())
    bounds = makespan_bounds(inst)
    assert bounds.lower <= outcome.final_target <= bounds.upper
    opt = brute_force(inst).makespan
    # The rounded decision relaxes the true one, so the minimal feasible
    # rounded target cannot exceed the true optimum.
    assert outcome.final_target <= opt


class TestCheckDeadline:
    """The ``check_deadline`` hook (service satellite): invoked between
    probes so a caller can abort a long search without killing the
    worker thread."""

    def test_called_at_least_once_per_probe(self, small_instance):
        ticks: list[int] = []
        calls: list[int] = []
        outcome = bisect_target_makespan(
            small_instance,
            3,
            make_solver(calls=calls),
            ctx=SolveContext(warm_start=False, check_deadline=lambda: ticks.append(1)),
        )
        assert len(ticks) >= len(calls) >= outcome.num_iterations

    def test_raising_aborts_search(self, small_instance):
        class Boom(Exception):
            pass

        def check() -> None:
            raise Boom

        calls: list[int] = []
        with pytest.raises(Boom):
            bisect_target_makespan(
                small_instance,
                3,
                make_solver(calls=calls),
                ctx=SolveContext(warm_start=False, check_deadline=check),
            )
        # The hook fires before the first probe, so no DP ran.
        assert calls == []

    def test_none_is_default_and_harmless(self, small_instance):
        plain = bisect_target_makespan(small_instance, 3, make_solver())
        hooked = bisect_target_makespan(
            small_instance,
            3,
            make_solver(),
            ctx=SolveContext(warm_start=False, check_deadline=lambda: None),
        )
        assert hooked.final_target == plain.final_target
        assert hooked.num_iterations == plain.num_iterations
