"""Tests for the ASCII line plots (:mod:`repro.experiments.plots`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.plots import line_plot, speedup_plot


class TestLinePlot:
    def test_contains_marks_and_legend(self):
        out = line_plot([1, 2, 3], {"a": [1.0, 2.0, 3.0]})
        assert "legend: * a" in out
        assert "*" in out

    def test_title_first_line(self):
        out = line_plot([0, 1], {"s": [0.0, 1.0]}, title="My plot")
        assert out.splitlines()[0] == "My plot"

    def test_axis_ticks_present(self):
        out = line_plot([2, 16], {"s": [1.0, 10.0]})
        assert "10.0" in out
        assert "0.0" in out
        assert "2" in out and "16" in out

    def test_multiple_series_distinct_marks(self):
        out = line_plot(
            [1, 2], {"a": [1.0, 2.0], "b": [2.0, 1.0]}
        )
        assert "* a" in out and "o b" in out
        assert "o" in out

    def test_monotone_series_rises_left_to_right(self):
        out = line_plot([1, 2, 3, 4], {"up": [1.0, 2.0, 3.0, 4.0]}, height=8)
        rows = [
            line.split("|", 1)[1]
            for line in out.splitlines()
            if "|" in line
        ]
        first_mark_rows = {}
        for r, row in enumerate(rows):
            for c, ch in enumerate(row):
                if ch == "*" and c not in first_mark_rows:
                    first_mark_rows[c] = r
        cols = sorted(first_mark_rows)
        # Later columns appear at the same height or higher (smaller row).
        assert first_mark_rows[cols[0]] >= first_mark_rows[cols[-1]]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            line_plot([], {"a": []})
        with pytest.raises(ValueError):
            line_plot([1], {"a": [1.0, 2.0]})
        with pytest.raises(ValueError):
            line_plot([1], {}, width=60)
        with pytest.raises(ValueError):
            line_plot([1], {"a": [1.0]}, width=5)

    def test_flat_series_renders(self):
        out = line_plot([1, 2, 3], {"flat": [2.0, 2.0, 2.0]})
        assert "*" in out

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=8
        )
    )
    @settings(max_examples=40)
    def test_property_any_series_renders(self, ys):
        xs = list(range(len(ys)))
        out = line_plot(xs, {"s": ys})
        assert isinstance(out, str)
        # Plot body has exactly `height` grid rows.
        assert sum(1 for line in out.splitlines() if "|" in line) == 16


class TestGroupedBars:
    def test_basic_shape(self):
        from repro.experiments.plots import grouped_bars

        out = grouped_bars(
            ["I1", "I2"],
            {"PTAS": [1.0, 1.1], "LPT": [1.2, 1.3]},
            baseline=1.0,
        )
        lines = out.splitlines()
        assert lines[0] == "I1:"
        assert sum(1 for line in lines if "|" in line) == 4
        assert "1.300" in out

    def test_baseline_zeroes_optimal_bar(self):
        from repro.experiments.plots import grouped_bars

        out = grouped_bars(["a"], {"x": [1.0]}, baseline=1.0)
        bar_line = [l for l in out.splitlines() if "|" in l][0]
        assert "#" not in bar_line  # ratio 1.0 -> zero-length bar

    def test_longest_bar_is_max_value(self):
        from repro.experiments.plots import grouped_bars

        out = grouped_bars(
            ["a"], {"small": [1.1], "big": [1.5]}, baseline=1.0, width=20
        )
        lines = [l for l in out.splitlines() if "|" in l]
        assert lines[1].count("#") == 20
        assert 0 < lines[0].count("#") < 20

    def test_rejects_bad_input(self):
        from repro.experiments.plots import grouped_bars

        with pytest.raises(ValueError):
            grouped_bars([], {"x": []})
        with pytest.raises(ValueError):
            grouped_bars(["a"], {"x": [1.0, 2.0]})

    def test_used_by_figure5_render(self):
        from repro.experiments.figures import Figure5Result
        from repro.experiments.tables import RatioRecord, TableResult

        rec = RatioRecord("I1", "fam", 4, 10, 1.0, 1.2, 1.25, True)
        table = TableResult("t", [rec])
        out = Figure5Result(best=table, worst=table).render()
        assert "(a) as bars" in out and "(b) as bars" in out
        assert "parallel PTAS" in out


class TestSpeedupPlot:
    def test_includes_ideal_line(self):
        out = speedup_plot([2, 4], {"fam": [1.9, 3.5]}, "t")
        assert "* ideal" in out
        assert "o fam" in out

    def test_used_by_figure_render(self):
        """FigureResult.render embeds the chart panel."""
        from repro.experiments.figures import _run_speedup_figure

        fig = _run_speedup_figure(
            "t", "d", m=2, n=5, scale="smoke", cores=(2,)
        )
        assert "(a) as a chart" in fig.render()
