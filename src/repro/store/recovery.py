"""Crash recovery: replay the write-ahead journal into the result store.

:func:`recover` is what ``repro-pcmax serve --store DIR`` runs before it
starts listening (and what ``repro-pcmax store replay`` runs offline):
for every journal entry that was begun but never committed — a request
the crashed process admitted but never answered —

1. if the store already holds the canonical result (a permuted twin got
   there first, or the crash hit between the store append and the
   commit mark), just commit the entry;
2. otherwise re-solve the request through the engine registry, persist
   the canonicalized result, and commit;
3. a replay that raises is *aborted* (journaled as poison) so one bad
   request cannot crash-loop the service, and the failure is reported.

Afterwards the journal is checkpointed, so a successful recovery leaves
it empty.  Replayed results are canonical by construction — solved from
the journaled request and canonicalized exactly the way the live write
path does — which is why the e2e test can demand byte-equality between
a recovered record and a fresh solve's canonical form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.service.cache import canonical_key, canonicalize_result
from repro.service.registry import solve_to_result
from repro.service.requests import SolveRequest, SolveResult
from repro.store.journal import WriteAheadJournal, list_journals
from repro.store.resultstore import ResultStore


@dataclass
class RecoveryReport:
    """What a recovery pass did, entry by entry."""

    entries: int = 0
    replayed: int = 0
    already_stored: int = 0
    aborted: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Clean iff nothing had to be abandoned as poison."""
        return not self.aborted

    def render(self) -> str:
        """One human-readable summary line."""
        return (
            f"recovery: {self.entries} uncommitted entr"
            f"{'y' if self.entries == 1 else 'ies'}, "
            f"{self.replayed} replayed, {self.already_stored} already stored, "
            f"{len(self.aborted)} aborted"
        )


def recover(
    store: ResultStore,
    journal: WriteAheadJournal,
    *,
    solve: Callable[[SolveRequest], SolveResult] | None = None,
) -> RecoveryReport:
    """Drain the journal's uncommitted backlog into *store*.

    ``solve`` defaults to the registry's synchronous
    :func:`~repro.service.registry.solve_to_result`; tests inject a stub
    to exercise the bookkeeping without solving.
    """
    solver = solve if solve is not None else solve_to_result
    report = RecoveryReport()
    for entry in journal.uncommitted():
        report.entries += 1
        key = canonical_key(entry.request)
        if store.get(key) is not None:
            journal.commit(entry)
            report.already_stored += 1
            continue
        try:
            result = solver(entry.request)
            if not result.ok:
                raise RuntimeError(result.error or f"status={result.status}")
            store.put(key, canonicalize_result(entry.request, result))
        except Exception as exc:  # noqa: BLE001 - poison entries must not loop
            journal.abort(entry)
            report.aborted.append(f"{entry.entry_id}: {exc}")
            continue
        journal.commit(entry)
        report.replayed += 1
    journal.checkpoint()
    return report


def recover_all(
    store: ResultStore,
    root: str | Path,
    *,
    solve: Callable[[SolveRequest], SolveResult] | None = None,
) -> RecoveryReport:
    """Replay *every* journal found in *root* into *store*.

    A sharded solver pool leaves one journal per worker process
    (:func:`repro.store.journal.worker_journal_name`) next to the
    supervisor's own; a crash of any subset of processes may strand
    uncommitted entries across several files.  This drains them all —
    each journal is opened, recovered exactly as :func:`recover` would,
    and closed — and returns one merged report.
    """
    merged = RecoveryReport()
    for path in list_journals(root):
        journal = WriteAheadJournal(root, name=path.name)
        try:
            report = recover(store, journal, solve=solve)
        finally:
            journal.close()
        merged.entries += report.entries
        merged.replayed += report.replayed
        merged.already_stored += report.already_stored
        merged.aborted.extend(
            f"{path.name}:{line}" for line in report.aborted
        )
    return merged
