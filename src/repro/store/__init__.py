"""repro.store — durable results, write-ahead journal, crash recovery.

Everything the service computes can outlive the process that computed
it: a zero-dependency persistence subsystem (``docs/persistence.md``)
built from

* :mod:`repro.store.records` — the checksummed JSONL line format (CRC-32
  over a canonical serialization);
* :mod:`repro.store.segment` — append-only segment files with fsync'd
  appends, torn-tail tolerance, and quarantine of damaged files;
* :mod:`repro.store.resultstore` — :class:`ResultStore`, a
  content-addressed map from the service cache's canonical instance
  keys to canonical solve results, with checksum- and
  schedule-verified reads, TTL expiry, compaction, and trace archival;
* :mod:`repro.store.journal` — :class:`WriteAheadJournal`, begin/commit
  marks around every admitted request;
* :mod:`repro.store.recovery` — :func:`recover`, the startup replay
  that re-solves whatever a crash interrupted.

The service wires these up when ``repro-pcmax serve --store DIR`` is
given; ``repro-pcmax store {stats,verify,compact,replay}`` operates on
a store directory offline.
"""

from repro.store.journal import (
    JournalEntry,
    WriteAheadJournal,
    list_journals,
    worker_journal_name,
)
from repro.store.records import RecordError, decode_record, encode_record
from repro.store.recovery import RecoveryReport, recover, recover_all
from repro.store.resultstore import (
    CompactionReport,
    ResultStore,
    StoreVerifyReport,
    key_address,
    result_fingerprint,
)

__all__ = [
    "ResultStore",
    "WriteAheadJournal",
    "JournalEntry",
    "RecoveryReport",
    "recover",
    "recover_all",
    "list_journals",
    "worker_journal_name",
    "CompactionReport",
    "StoreVerifyReport",
    "RecordError",
    "encode_record",
    "decode_record",
    "key_address",
    "result_fingerprint",
]
