"""The checksummed JSONL record format of :mod:`repro.store`.

Every line the store writes — result-store segments and the write-ahead
journal alike — is one JSON object of the shape::

    {"kind": "<record kind>", ... payload fields ..., "crc": <crc32>}

``crc`` is the CRC-32 of the record's *canonical body*: the object
without the ``crc`` field, serialized with sorted keys and compact
separators.  Canonical serialization makes the checksum (and therefore
the content address of a result record) independent of field order, so
two processes that store the same canonical result write byte-identical
lines — the property the crash-recovery test pins down.

:func:`decode_record` distinguishes three failure modes a reader cares
about:

* a *torn tail* (the line does not end in ``}`` / does not parse) —
  expected after a crash mid-append; the last line of a segment may be
  dropped silently,
* a *checksum mismatch* (parses, ``crc`` disagrees) — bit rot or a
  partial overwrite; never silently dropped,
* a *malformed record* (parses, but has no ``crc``/``kind``) — a
  foreign or corrupted file.

All three raise :class:`RecordError` with ``torn`` marking the first
case, so callers can tolerate exactly the failure crash-consistency
allows and quarantine everything else.
"""

from __future__ import annotations

import json
import zlib
from typing import Any


class RecordError(ValueError):
    """A line that is not a valid store record.

    ``torn`` is true when the damage is consistent with a crash during
    an append (truncated tail); only then may a reader drop the record
    without quarantining the file.
    """

    def __init__(self, message: str, *, torn: bool = False) -> None:
        super().__init__(message)
        self.torn = torn


def canonical_json(body: dict[str, Any]) -> str:
    """The canonical single-line serialization the checksum covers."""
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def record_crc(body: dict[str, Any]) -> int:
    """CRC-32 of the canonical body (the ``crc`` field's value)."""
    return zlib.crc32(canonical_json(body).encode("utf-8"))


def encode_record(kind: str, body: dict[str, Any]) -> str:
    """One store line: *body* plus ``kind`` and its checksum."""
    full = dict(body)
    full["kind"] = kind
    full["crc"] = record_crc({k: v for k, v in full.items() if k != "crc"})
    return canonical_json(full)


def decode_record(line: str) -> dict[str, Any]:
    """Parse and checksum-verify one line; inverse of :func:`encode_record`.

    Raises
    ------
    RecordError
        With ``torn=True`` for a truncated tail, ``torn=False`` for a
        checksum mismatch or a structurally foreign record.
    """
    text = line.strip()
    if not text:
        raise RecordError("empty line", torn=True)
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise RecordError(f"unparseable record: {exc}", torn=True) from None
    if not isinstance(data, dict):
        raise RecordError(f"record is {type(data).__name__}, not an object")
    if "crc" not in data or "kind" not in data:
        raise RecordError("record lacks 'crc'/'kind' fields")
    stated = data["crc"]
    actual = record_crc({k: v for k, v in data.items() if k != "crc"})
    if stated != actual:
        raise RecordError(f"checksum mismatch: stored {stated}, computed {actual}")
    return data
