"""Append-only JSONL segments: the on-disk unit of the result store.

A store directory holds numbered segment files::

    <root>/segments/seg-00000001.jsonl
    <root>/segments/seg-00000002.jsonl          ← active (appended)
    <root>/segments/seg-00000001.jsonl.quarantined  ← failed verification

Writes only ever append to the highest-numbered segment
(:class:`SegmentWriter`); when it outgrows ``max_bytes`` the writer
rolls to a fresh file.  Reads go through :func:`scan_segment`, which
checksum-verifies every record and classifies damage:

* a torn final line of a segment (crash mid-append) is reported but
  tolerated — it is the one write the crash interrupted;
* any other damage (bit flip, mid-file truncation, foreign content)
  marks the segment corrupt, and :func:`quarantine_segment` renames it
  aside (``.quarantined`` suffix) so the store never serves bytes it
  cannot vouch for while preserving the evidence for forensics.

Compaction (:func:`repro.store.resultstore.ResultStore.compact`)
rewrites the live records into a fresh segment via an atomic replace
and deletes the superseded files.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.io.atomic import append_line, fsync_dir
from repro.store.records import RecordError, decode_record, encode_record

#: Segment file name layout; the number orders segments by age.  The
#: optional *writer tag* (``seg-w0-00000001.jsonl``) gives each process
#: of a multi-process pool its own append namespace: one writer per
#: file, so fsync ordering and torn-tail semantics are never shared
#: between processes (docs/persistence.md).
SEGMENT_PATTERN = re.compile(r"seg-(?:(?P<tag>[A-Za-z0-9]+)-)?(?P<seq>\d{8})\.jsonl$")

#: Suffix a corrupt segment is renamed with.
QUARANTINE_SUFFIX = ".quarantined"


def segment_name(seq: int, tag: str | None = None) -> str:
    """File name of segment number *seq* (optionally writer-tagged)."""
    if tag is None:
        return f"seg-{seq:08d}.jsonl"
    if not re.fullmatch(r"[A-Za-z0-9]+", tag):
        raise ValueError(f"writer tag must be alphanumeric, got {tag!r}")
    return f"seg-{tag}-{seq:08d}.jsonl"


def list_segments(segments_dir: Path) -> list[Path]:
    """The live (non-quarantined) segment files, oldest first."""
    if not segments_dir.is_dir():
        return []
    found = [
        p
        for p in segments_dir.iterdir()
        if p.is_file() and SEGMENT_PATTERN.search(p.name)
    ]
    return sorted(found, key=lambda p: p.name)


def segment_seq(path: Path) -> int:
    """The sequence number encoded in a segment file name."""
    match = SEGMENT_PATTERN.search(path.name)
    if match is None:
        raise ValueError(f"{path} is not a segment file")
    return int(match.group("seq"))


def segment_tag(path: Path) -> str | None:
    """The writer tag encoded in a segment file name (``None`` untagged)."""
    match = SEGMENT_PATTERN.search(path.name)
    if match is None:
        raise ValueError(f"{path} is not a segment file")
    return match.group("tag")


@dataclass
class ScanResult:
    """Outcome of checksumming one segment end to end.

    ``records`` holds every valid ``(offset, record)`` pair in file
    order; ``torn_tail`` flags a crash-truncated final line (tolerated);
    ``errors`` lists non-tail damage (not tolerated — quarantine).
    """

    path: Path
    records: list[tuple[int, dict[str, Any]]] = field(default_factory=list)
    torn_tail: bool = False
    errors: list[str] = field(default_factory=list)

    @property
    def corrupt(self) -> bool:
        """True when the segment must not be trusted (non-tail damage)."""
        return bool(self.errors)


def scan_segment(path: Path) -> ScanResult:
    """Read and verify every record of one segment file."""
    result = ScanResult(path=path)
    offset = 0
    lines: list[tuple[int, bytes]] = []
    with open(path, "rb") as fh:
        for raw in fh:
            lines.append((offset, raw))
            offset += len(raw)
    for i, (start, raw) in enumerate(lines):
        last = i == len(lines) - 1
        try:
            record = decode_record(raw.decode("utf-8", errors="replace"))
        except RecordError as exc:
            if last and exc.torn:
                result.torn_tail = True
            else:
                result.errors.append(f"{path.name}@{start}: {exc}")
            continue
        if last and not raw.endswith(b"\n"):
            # A record that parses but was never newline-terminated is
            # still a torn append: the fsync covering it never returned.
            result.torn_tail = True
            continue
        result.records.append((start, record))
    return result


def quarantine_segment(path: Path, reason: str) -> Path:
    """Move a corrupt segment aside and drop a note explaining why.

    The data file is renamed ``<name>.quarantined`` (never deleted) and
    a sibling ``<name>.quarantined.reason`` records the violations, so
    ``repro-pcmax store verify`` output survives for forensics.
    """
    target = path.with_name(path.name + QUARANTINE_SUFFIX)
    os.replace(path, target)
    target.with_name(target.name + ".reason").write_text(reason + "\n")
    fsync_dir(path.parent)
    return target


def read_record_at(path: Path, offset: int) -> dict[str, Any]:
    """Checksum-verified point read of the record starting at *offset*."""
    with open(path, "rb") as fh:
        fh.seek(offset)
        line = fh.readline()
    return decode_record(line.decode("utf-8", errors="replace"))


class SegmentWriter:
    """Appends records to the active segment, rolling on size.

    Every append is flushed and fsync'd before the new ``(path,
    offset)`` is returned, so an acknowledged write is durable.  The
    writer owns only the *active* file; older segments are immutable.

    ``tag`` scopes the writer to its own file-name namespace
    (``seg-<tag>-<seq>.jsonl``): a multi-process solver pool gives each
    worker a distinct tag, so concurrent processes never append to the
    same file and every segment still has exactly one writer.
    """

    def __init__(
        self,
        segments_dir: Path,
        *,
        max_bytes: int = 4 << 20,
        tag: str | None = None,
    ) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.segments_dir = segments_dir
        self.max_bytes = max_bytes
        self.tag = tag
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        own = [p for p in list_segments(self.segments_dir) if segment_tag(p) == tag]
        self._seq = segment_seq(own[-1]) if own else 0
        self._fh = None  # opened lazily on first append

    def _name(self, seq: int) -> str:
        return segment_name(seq, self.tag)

    @property
    def active_path(self) -> Path:
        """The file the next append lands in."""
        return self.segments_dir / self._name(max(self._seq, 1))

    def _ensure_open(self):
        if self._fh is None:
            if self._seq == 0:
                self._seq = 1
            self._fh = open(self.segments_dir / self._name(self._seq), "ab")
            self._fh.seek(0, os.SEEK_END)  # 'a' mode tell() is platform-defined
            fsync_dir(self.segments_dir)
        return self._fh

    def _roll(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._seq += 1

    def append(self, kind: str, body: dict[str, Any]) -> tuple[Path, int]:
        """Durably append one record; returns its ``(path, offset)``."""
        fh = self._ensure_open()
        if fh.tell() >= self.max_bytes:
            self._roll()
            fh = self._ensure_open()
        path = self.segments_dir / self._name(self._seq)
        offset = append_line(fh, encode_record(kind, body))
        return path, offset

    def close(self) -> None:
        """Flush and close the active segment file."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def iter_live_records(
    segments_dir: Path,
) -> Iterator[tuple[Path, int, dict[str, Any]]]:
    """Yield ``(path, offset, record)`` across all live segments, oldest
    first — corrupt segments raise via :class:`ScanResult` semantics in
    the caller; this helper simply skips them after counting."""
    for path in list_segments(segments_dir):
        scan = scan_segment(path)
        if scan.corrupt:
            continue
        for offset, record in scan.records:
            yield path, offset, record
