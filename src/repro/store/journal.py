"""Write-ahead journal: crash consistency for the scheduling service.

The service journals every admitted :class:`SolveRequest` *before* the
solve starts and marks it finished *after* a response was determined::

    {"kind": "begin",  "id": "00000001-5f2a…", "request": {...}, "crc": …}
    {"kind": "commit", "id": "00000001-5f2a…", "crc": …}

(``abort`` is the third mark — written when replaying an entry fails,
so a poison request cannot crash the service on every restart.)

An entry with a ``begin`` but neither ``commit`` nor ``abort`` is
*uncommitted*: the process died between admission and response.  On
startup, :func:`repro.store.recovery.recover` re-solves exactly those
entries into the result store, which is what turns "the cache died with
the process" into "the service restarts warm and owes no client an
answer it already admitted".

Properties:

* ``begin`` is fsync'd before it returns — a request the solver ever
  saw is on disk;
* marks are idempotent and the file is append-only, so a crash at any
  byte leaves at worst one torn final line (tolerated by the record
  layer, it is the one write the crash interrupted);
* a clean :meth:`close` with nothing uncommitted truncates the file, so
  a graceful shutdown leaves an *empty* journal — the invariant the
  SIGTERM test pins.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.io.atomic import append_line, atomic_write, fsync_dir
from repro.service.requests import SolveRequest
from repro.store.records import RecordError, decode_record, encode_record
from repro.store.resultstore import key_address

#: Journal file name inside a store root.
JOURNAL_NAME = "journal.jsonl"


def worker_journal_name(worker_id: int) -> str:
    """Journal file name owned by pool worker *worker_id*.

    Each worker process of the sharded solver pool journals its own
    admitted requests into its own file (``journal-w3.jsonl``), so the
    begin-fsync-before-solve guarantee never crosses a process boundary.
    :func:`repro.store.recovery.recover_all` replays every journal in a
    store root, whichever process wrote it.
    """
    return f"journal-w{int(worker_id)}.jsonl"


def list_journals(root: str | Path) -> list[Path]:
    """Every journal file in a store root (supervisor's plus any
    per-worker ones), sorted by name."""
    root = Path(root)
    if not root.is_dir():
        return []
    return sorted(
        p
        for p in root.iterdir()
        if p.is_file()
        and p.name.endswith(".jsonl")
        and p.name.startswith("journal")
    )


@dataclass(frozen=True)
class JournalEntry:
    """One admitted request as recorded in the journal."""

    entry_id: str
    request: SolveRequest


class WriteAheadJournal:
    """Append-only begin/commit log of admitted solve requests.

    Thread-safety note: callers serialize access (the service writes
    from the event loop; recovery runs before the loop starts).

    ``name`` selects the journal file inside *root*; pool workers pass
    :func:`worker_journal_name` so each process owns its file alone.
    """

    def __init__(self, root: str | Path, *, name: str = JOURNAL_NAME) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / name
        self.torn_tail = False
        self._open_entries: dict[str, SolveRequest] = {}
        self._seq = 0
        self.begins = 0
        self.commits = 0
        self.aborts = 0
        self._replay_file()
        self._fh = open(self.path, "ab")
        self._fh.seek(0, os.SEEK_END)

    def _replay_file(self) -> None:
        """Rebuild the open-entry set from the journal's surviving lines."""
        if not self.path.exists():
            return
        with open(self.path, "rb") as fh:
            lines = fh.readlines()
        for i, raw in enumerate(lines):
            try:
                record = decode_record(raw.decode("utf-8", errors="replace"))
            except RecordError as exc:
                if i == len(lines) - 1 and exc.torn:
                    self.torn_tail = True
                    continue
                raise RecordError(
                    f"{self.path}: corrupt journal line {i + 1}: {exc}"
                ) from None
            kind = record.get("kind")
            entry_id = str(record.get("id", ""))
            if kind == "begin":
                self._open_entries[entry_id] = SolveRequest.from_dict(
                    record["request"]
                )
            elif kind in ("commit", "abort"):
                self._open_entries.pop(entry_id, None)
            seq = entry_id.split("-", 1)[0]
            if seq.isdigit():
                self._seq = max(self._seq, int(seq))

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def begin(self, request: SolveRequest) -> JournalEntry:
        """Durably record an admitted request; returns its entry."""
        from repro.service.cache import canonical_key

        self._seq += 1
        entry_id = f"{self._seq:08d}-{key_address(canonical_key(request))[:12]}"
        append_line(
            self._fh,
            encode_record(
                "begin", {"id": entry_id, "request": request.to_dict()}
            ),
        )
        self._open_entries[entry_id] = request
        self.begins += 1
        return JournalEntry(entry_id=entry_id, request=request)

    def _mark(self, entry: JournalEntry, kind: str) -> None:
        if entry.entry_id not in self._open_entries:
            return  # idempotent: already committed/aborted
        append_line(self._fh, encode_record(kind, {"id": entry.entry_id}))
        self._open_entries.pop(entry.entry_id, None)

    def commit(self, entry: JournalEntry) -> None:
        """Mark an entry answered; it will never replay."""
        self._mark(entry, "commit")
        self.commits += 1

    def abort(self, entry: JournalEntry) -> None:
        """Mark an entry permanently failed (poison); it will never
        replay again."""
        self._mark(entry, "abort")
        self.aborts += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def uncommitted(self) -> list[JournalEntry]:
        """Entries begun but neither committed nor aborted, oldest first."""
        return [
            JournalEntry(entry_id=eid, request=req)
            for eid, req in sorted(self._open_entries.items())
        ]

    def __len__(self) -> int:
        return len(self._open_entries)

    def stats(self) -> dict[str, Any]:
        """Counter snapshot plus the current uncommitted backlog."""
        return {
            "begins": self.begins,
            "commits": self.commits,
            "aborts": self.aborts,
            "uncommitted": len(self._open_entries),
            "bytes": self.path.stat().st_size if self.path.exists() else 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Rewrite the journal keeping only open entries (atomic).

        Called after recovery has drained the backlog and on clean
        shutdown — a journal that only ever grows would replay history
        forever.
        """
        self._fh.close()
        lines = [
            encode_record("begin", {"id": eid, "request": req.to_dict()})
            for eid, req in sorted(self._open_entries.items())
        ]
        data = ("\n".join(lines) + "\n").encode("utf-8") if lines else b""
        atomic_write(self.path, data)
        self._fh = open(self.path, "ab")
        self._fh.seek(0, os.SEEK_END)

    def close(self) -> None:
        """Flush, checkpoint, and close — a clean exit with no open
        entries leaves an empty journal file."""
        self.checkpoint()
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        fsync_dir(self.root)
