"""Content-addressed durable result store for solver answers.

The store persists *canonical* solve results — the same representation
the service cache keeps in memory (:mod:`repro.service.cache`): times
sorted ascending, the assignment expressed over sorted positions (and,
under machine speeds, canonical sorted-speed machine order).  Its
address space is therefore exactly the cache's key space: the SHA-256
of the canonical key ``(problem, sorted times, sorted speeds, m,
engine, eps)``, so any permutation of a stored instance resolves to the
same record and the caller-side remapping machinery of the cache works
unchanged on top.

Migration note (problem-variant keys): the in-memory key gained a
``problem`` tag and a speed multiset, but the *hashed address body* for
``p_cmax`` keys is unchanged — exactly the historical ``{"times",
"machines", "engine", "eps"}`` JSON.  Only non-default problems
(``q_cmax``) add ``problem``/``speeds`` fields to the hashed body and
the stored record.  Pre-existing segments therefore keep their
addresses and keep hitting after an upgrade; no rewrite is needed, and
a ``q_cmax`` answer can never collide with a ``p_cmax`` record because
its hashed body (hence address) carries the problem tag.

Layout under the store root::

    <root>/segments/seg-*.jsonl   append-only record segments
    <root>/journal.jsonl          write-ahead journal (repro.store.journal)

Record kinds (see :mod:`repro.store.records` for the line format):

``result``
    ``{"address", "times", "machines", "engine", "eps", "result",
    "stored_at"}`` — the canonical :class:`SolveResult` payload.  The
    *latest* record per address wins (a store is a log; overwrites
    append).
``trace``
    ``{"address", "name", "trace"}`` — an archived observability trace
    (:func:`archive_trace`), linked to the solve it explains.
``tombstone``
    reserved for deletion; compaction drops tombstoned addresses.

Safety properties:

* every append is fsync'd before it is acknowledged (durable once
  stored);
* every read is checksum-verified (:func:`repro.store.records`) and the
  decoded schedule is re-verified against its instance via
  :func:`repro.model.verify.verify_schedule` before being served —
  corrupt bytes can fail a read but can never produce a wrong answer;
* a segment with non-tail damage is quarantined (renamed aside with the
  reason recorded), never silently skipped.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.io.atomic import atomic_write, fsync_dir
from repro.model.instance import Instance
from repro.model.problem import P_CMAX, Q_CMAX
from repro.model.qinstance import QInstance, QSchedule
from repro.model.schedule import Schedule
from repro.model.verify import verify_schedule
from repro.service.requests import SolveResult
from repro.store.records import RecordError, canonical_json, encode_record
from repro.store.segment import (
    QUARANTINE_SUFFIX,
    SegmentWriter,
    list_segments,
    quarantine_segment,
    read_record_at,
    scan_segment,
    segment_name,
    segment_seq,
)

#: ``(problem, sorted times, sorted speeds, machines, engine, eps)`` —
#: identical to :data:`repro.service.cache.CacheKey`.
StoreKey = tuple[str, tuple[int, ...], tuple[int, ...], int, str, float]


def _address_body(key: StoreKey) -> dict[str, Any]:
    """The canonical JSON body a key's address hashes over.

    ``p_cmax`` keys keep the historical four-field body so pre-existing
    segments stay addressable (see the module migration note); other
    problems add their tag and speed multiset, which namespaces them
    away from every legacy address.
    """
    problem, times, speeds, machines, engine, eps = key
    body: dict[str, Any] = {
        "times": list(times),
        "machines": int(machines),
        "engine": engine,
        "eps": eps,
    }
    if problem != P_CMAX:
        body["problem"] = problem
        body["speeds"] = list(speeds)
    return body


def key_address(key: StoreKey) -> str:
    """The content address (SHA-256 hex) of a canonical key."""
    return hashlib.sha256(
        canonical_json(_address_body(key)).encode("utf-8")
    ).hexdigest()


def result_fingerprint(result: SolveResult) -> str:
    """The canonical byte form of a stored result (what "byte-match"
    means in the recovery tests): its dict serialized canonically."""
    return canonical_json(result.to_dict())


@dataclass
class StoreVerifyReport:
    """Outcome of ``repro-pcmax store verify``: per-segment findings."""

    segments_checked: int = 0
    records_checked: int = 0
    schedules_verified: int = 0
    torn_tails: int = 0
    quarantined: list[str] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Clean iff nothing was quarantined and no schedule failed."""
        return not self.quarantined and not self.violations


@dataclass
class CompactionReport:
    """Outcome of one compaction pass."""

    segments_before: int = 0
    segments_after: int = 0
    records_kept: int = 0
    records_dropped: int = 0
    expired_dropped: int = 0
    bytes_before: int = 0
    bytes_after: int = 0


class StoreCorruptionError(RuntimeError):
    """A read hit bytes that failed checksum or schedule verification."""


class ResultStore:
    """Durable, content-addressed map from canonical keys to results.

    Parameters
    ----------
    root:
        Store directory (created on demand).
    ttl:
        Seconds a stored result stays servable (wall clock, so it
        survives restarts), or ``None`` for no expiry.  Expired entries
        are refused by :meth:`get` and dropped by :meth:`compact`.
    segment_max_bytes:
        Roll the active segment beyond this size.
    clock:
        Injectable wall clock (tests freeze it).
    verify_reads:
        Re-verify each served schedule via
        :func:`repro.model.verify.verify_schedule` (on by default; the
        cost is linear in the instance and tiny next to a solve).
    writer_tag:
        Append namespace for this process's writes (``seg-<tag>-*``).
        Each worker of a multi-process solver pool opens the *same* root
        with its own tag, so the store is a shared read tier while every
        segment file keeps exactly one writer (docs/persistence.md).
    """

    def __init__(
        self,
        root: str | Path,
        *,
        ttl: float | None = None,
        segment_max_bytes: int = 4 << 20,
        clock: Callable[[], float] = time.time,
        verify_reads: bool = True,
        writer_tag: str | None = None,
    ) -> None:
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None)")
        self.root = Path(root)
        self.segments_dir = self.root / "segments"
        self.ttl = ttl
        self._clock = clock
        self.verify_reads = verify_reads
        self.writer_tag = writer_tag
        self._writer = SegmentWriter(
            self.segments_dir, max_bytes=segment_max_bytes, tag=writer_tag
        )
        # The store is touched from the event loop (write-through cache)
        # and from worker threads (trace archival), so mutations lock.
        self._lock = threading.Lock()
        # address -> (segment path, byte offset) of the *latest* record.
        self._index: dict[str, tuple[Path, int]] = {}
        self._trace_index: dict[str, tuple[Path, int]] = {}
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.expirations = 0
        self.evictions = 0
        self.verify_failures = 0
        self.quarantined_segments = 0
        # Damage found (and quarantined) while building the index; the
        # next verify() drains this so the finding is reported once.
        self._quarantined_at_load: list[tuple[str, str]] = []
        self._load_index()

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    def _load_index(self) -> None:
        """Scan all segments, quarantining damaged ones, and point the
        index at the newest record per address (the log's last word)."""
        for path in list_segments(self.segments_dir):
            scan = scan_segment(path)
            if scan.corrupt:
                reason = "\n".join(scan.errors)
                target = quarantine_segment(path, reason)
                self.quarantined_segments += 1
                self._quarantined_at_load.append((target.name, reason))
                continue
            for offset, record in scan.records:
                kind = record.get("kind")
                address = record.get("address")
                if not isinstance(address, str):
                    continue
                if kind == "result":
                    self._index[address] = (path, offset)
                elif kind == "trace":
                    name = record.get("name")
                    if isinstance(name, str):
                        self._trace_index[name] = (path, offset)
                elif kind == "tombstone":
                    self._index.pop(address, None)

    # ------------------------------------------------------------------
    # Read / write path
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: StoreKey) -> bool:
        return key_address(key) in self._index

    def put(self, key: StoreKey, result: SolveResult) -> str:
        """Durably store a *canonical* result under *key*.

        *result* must already be in canonical coordinates (what
        :func:`repro.service.cache.canonicalize_result` produces) —
        the store never re-sorts; it trusts and records.  Returns the
        content address.
        """
        address = key_address(key)
        body = dict(_address_body(key))
        body["address"] = address
        body["result"] = result.to_dict()
        body["stored_at"] = round(self._clock(), 6)
        with self._lock:
            path, offset = self._writer.append("result", body)
            self._index[address] = (path, offset)
            self.puts += 1
        return address

    def get(self, key: StoreKey) -> SolveResult | None:
        """The canonical result stored under *key*, or ``None``.

        The record is checksum-verified on read; with ``verify_reads``
        the decoded schedule is additionally re-verified against its
        instance, so a record that went bad *after* the index was built
        is refused (counted in ``verify_failures``), never served.
        """
        address = key_address(key)
        with self._lock:
            located = self._index.get(address)
            if located is None:
                self.misses += 1
                return None
            path, offset = located
            try:
                record = read_record_at(path, offset)
            except (RecordError, OSError):
                self.verify_failures += 1
                self._index.pop(address, None)
                self.misses += 1
                return None
            if self._expired(record):
                self._index.pop(address, None)
                self.expirations += 1
                self.misses += 1
                return None
            result = SolveResult.from_dict(record["result"])
            if self.verify_reads and not self._schedule_ok(record, result):
                self.verify_failures += 1
                self._index.pop(address, None)
                self.misses += 1
                return None
            self.hits += 1
        return result

    def _expired(self, record: dict[str, Any]) -> bool:
        if self.ttl is None:
            return False
        stored_at = float(record.get("stored_at", 0.0))
        return self._clock() - stored_at > self.ttl

    @staticmethod
    def _schedule_ok(record: dict[str, Any], result: SolveResult) -> bool:
        """Re-verify a stored schedule against its canonical instance
        (problem-aware: records tagged ``q_cmax`` rebuild a
        :class:`QInstance`/:class:`QSchedule` pair)."""
        if result.assignment is None:
            return result.makespan is None
        problem = record.get("problem", P_CMAX)
        try:
            times = tuple(int(t) for t in record["times"])
            if problem == Q_CMAX:
                instance: Instance | QInstance = QInstance(
                    times, tuple(int(s) for s in record.get("speeds", ()))
                )
                schedule: Schedule | QSchedule = QSchedule(
                    instance, result.assignment
                )
            else:
                instance = Instance(times, int(record["machines"]))
                schedule = Schedule(instance, result.assignment)
        except (KeyError, ValueError, TypeError):
            return False
        if schedule.makespan != result.makespan:
            return False
        return verify_schedule(schedule, instance).ok

    # ------------------------------------------------------------------
    # Trace archive (obs integration)
    # ------------------------------------------------------------------
    def archive_trace(self, name: str, payload: dict[str, Any]) -> str:
        """Durably archive one observability trace payload under *name*
        (e.g. a request id); returns the line's content address."""
        address = hashlib.sha256(
            ("trace:" + name).encode("utf-8")
        ).hexdigest()
        body = {
            "address": address,
            "name": name,
            "trace": payload,
            "stored_at": round(self._clock(), 6),
        }
        with self._lock:
            path, offset = self._writer.append("trace", body)
            self._trace_index[name] = (path, offset)
        return address

    def load_archived_trace(self, name: str) -> dict[str, Any] | None:
        """The archived trace payload named *name*, or ``None``."""
        located = self._trace_index.get(name)
        if located is None:
            return None
        try:
            record = read_record_at(*located)
        except (RecordError, OSError):
            self.verify_failures += 1
            return None
        return record.get("trace")

    def trace_names(self) -> list[str]:
        """Names of every archived trace, sorted."""
        return sorted(self._trace_index)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def iter_records(self) -> Iterator[dict[str, Any]]:
        """Every *live* result record (latest per address), oldest-address
        order not guaranteed."""
        for address in list(self._index):
            located = self._index.get(address)
            if located is None:
                continue
            try:
                yield read_record_at(*located)
            except (RecordError, OSError):
                continue

    def compact(self) -> CompactionReport:
        """Rewrite live, unexpired records into fresh segments and delete
        the superseded files.

        The new segment is written and fsync'd *before* any old segment
        is removed, so a crash mid-compaction leaves duplicates (safe —
        latest record wins) rather than losses.
        """
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> CompactionReport:
        report = CompactionReport()
        max_bytes = self._writer.max_bytes
        self._writer.close()
        old_segments = list_segments(self.segments_dir)
        report.segments_before = len(old_segments)
        report.bytes_before = sum(p.stat().st_size for p in old_segments)

        seen_records = 0
        clean_old: list[Path] = []
        for path in old_segments:
            scan = scan_segment(path)
            if scan.corrupt:
                quarantine_segment(path, "\n".join(scan.errors))
                self.quarantined_segments += 1
                continue
            clean_old.append(path)
            seen_records += len(scan.records)

        # Collect the survivors *before* touching any file: the latest
        # result per address (unexpired) plus every archived trace.
        live: list[tuple[str, dict[str, Any]]] = []
        for record in self.iter_records():
            if self._expired(record):
                report.expired_dropped += 1
                self.expirations += 1
                continue
            live.append(("result", record))
        for name in self.trace_names():
            try:
                live.append(("trace", read_record_at(*self._trace_index[name])))
            except (RecordError, OSError):
                continue

        # Write the replacement segment durably, then retire the old
        # files.  A crash between the two steps leaves duplicates, which
        # is safe: the index always takes the latest record per address.
        # Compaction always writes an *untagged* segment; the sequence
        # number clears every namespace so the new file cannot collide.
        next_seq = max((segment_seq(p) for p in clean_old), default=0) + 1
        new_path = self.segments_dir / segment_name(next_seq)
        new_index: dict[str, tuple[Path, int]] = {}
        new_traces: dict[str, tuple[Path, int]] = {}
        lines: list[str] = []
        offset = 0
        for kind, record in live:
            body = {k: v for k, v in record.items() if k not in ("kind", "crc")}
            line = encode_record(kind, body)
            if kind == "result":
                new_index[record["address"]] = (new_path, offset)
            else:
                new_traces[record["name"]] = (new_path, offset)
            offset += len(line.encode("utf-8")) + 1
            lines.append(line)
        if lines:
            atomic_write(new_path, ("\n".join(lines) + "\n").encode("utf-8"))
        for path in clean_old:
            if path != new_path and path.exists():
                path.unlink()
        fsync_dir(self.segments_dir)
        self._index = new_index
        self._trace_index = new_traces
        self._writer = SegmentWriter(
            self.segments_dir, max_bytes=max_bytes, tag=self.writer_tag
        )

        dropped = seen_records - len(live)
        report.records_kept = len(live)
        report.records_dropped = max(0, dropped)
        self.evictions += max(0, report.records_dropped - report.expired_dropped)
        remaining = list_segments(self.segments_dir)
        report.segments_after = len(remaining)
        report.bytes_after = sum(p.stat().st_size for p in remaining)
        return report

    def verify(self, *, deep: bool = True) -> StoreVerifyReport:
        """Full-store audit: checksum every segment, quarantine damaged
        ones, and (``deep``) re-verify every stored schedule."""
        with self._lock:
            return self._verify_locked(deep=deep)

    def _verify_locked(self, *, deep: bool) -> StoreVerifyReport:
        report = StoreVerifyReport()
        # Damage already quarantined while opening the store still counts
        # as a finding of this audit (reported once, then drained).
        for name, reason in self._quarantined_at_load:
            report.quarantined.append(name)
            report.violations.extend(reason.splitlines())
        self._quarantined_at_load = []
        for path in list_segments(self.segments_dir):
            scan = scan_segment(path)
            report.segments_checked += 1
            report.records_checked += len(scan.records)
            if scan.torn_tail:
                report.torn_tails += 1
            if scan.corrupt:
                quarantined = quarantine_segment(path, "\n".join(scan.errors))
                self.quarantined_segments += 1
                report.quarantined.append(quarantined.name)
                report.violations.extend(scan.errors)
                # Drop index entries that pointed into the bad file.
                self._index = {
                    a: loc for a, loc in self._index.items() if loc[0] != path
                }
                self._trace_index = {
                    n: loc for n, loc in self._trace_index.items() if loc[0] != path
                }
                continue
            if not deep:
                continue
            for offset, record in scan.records:
                if record.get("kind") != "result":
                    continue
                result = SolveResult.from_dict(record["result"])
                if self._schedule_ok(record, result):
                    report.schedules_verified += 1
                else:
                    report.violations.append(
                        f"{path.name}@{offset}: stored schedule fails verification"
                    )
        return report

    def stats(self) -> dict[str, int]:
        """Entry/segment/byte counts plus the read/write counters."""
        segments = list_segments(self.segments_dir)
        quarantined = (
            [
                p
                for p in self.segments_dir.iterdir()
                if p.name.endswith(QUARANTINE_SUFFIX)
            ]
            if self.segments_dir.is_dir()
            else []
        )
        return {
            "entries": len(self._index),
            "traces": len(self._trace_index),
            "segments": len(segments),
            "bytes": sum(p.stat().st_size for p in segments),
            "quarantined_segments": len(quarantined),
            "puts": self.puts,
            "hits": self.hits,
            "misses": self.misses,
            "expirations": self.expirations,
            "evictions": self.evictions,
            "verify_failures": self.verify_failures,
        }

    def close(self) -> None:
        """Flush and close the active segment."""
        self._writer.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
