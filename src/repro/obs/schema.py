"""Trace-file validation against the checked-in JSON schema.

The schema (``trace_schema.json``, shipped inside the package) pins the
trace file layout and the closed span-kind taxonomy; validation *fails
on unknown span kinds* so a new kind cannot ship without updating the
schema, the docs, and the consumers together.

The validator is hand-rolled over the JSON-Schema subset the schema file
uses (``type`` / ``required`` / ``properties`` / ``items`` / ``enum`` /
``const`` / ``minimum``) so the library stays zero-dependency; when the
optional ``jsonschema`` package is importable it is used instead for
full-fidelity draft-07 validation.  On top of the structural schema,
:func:`validate_trace` checks referential integrity: every event's
``args.parent`` must be ``0`` or a previously seen span id, and ids must
be unique.

CI usage (see ``.github/workflows/ci.yml``)::

    PYTHONPATH=src python -m repro.obs.schema trace.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any

SCHEMA_PATH = Path(__file__).with_name("trace_schema.json")


class TraceSchemaError(ValueError):
    """A trace file that does not conform to the checked-in schema; the
    message lists every violation found."""


def load_schema() -> dict:
    """Load the checked-in trace schema document."""
    return json.loads(SCHEMA_PATH.read_text())


# ---------------------------------------------------------------------------
# Hand-rolled validator for the subset of JSON Schema the file uses
# ---------------------------------------------------------------------------

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
}


def _check(value: Any, schema: dict, path: str, errors: list[str]) -> None:
    """Recursive subset-of-JSON-Schema check; appends violations."""
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']!r}")
        return
    expected = schema.get("type")
    if expected is not None and not _TYPE_CHECKS[expected](value):
        errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
        return
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        minimum = schema.get("minimum")
        if minimum is not None and value < minimum:
            errors.append(f"{path}: {value!r} below minimum {minimum}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                _check(value[key], sub, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _check(item, schema["items"], f"{path}[{i}]", errors)


def _structural_errors(payload: Any, schema: dict) -> list[str]:
    """Schema-conformance errors (via ``jsonschema`` when available)."""
    try:
        import jsonschema
    except ImportError:
        errors: list[str] = []
        _check(payload, schema, "$", errors)
        return errors
    validator = jsonschema.Draft7Validator(schema)
    return [
        f"${''.join(f'[{p!r}]' for p in err.absolute_path)}: {err.message}"
        for err in validator.iter_errors(payload)
    ]


def validate_trace(payload: Any, schema: dict | None = None) -> list[str]:
    """Validate a decoded trace payload; returns the list of violations
    (empty when valid).

    Checks the checked-in schema (span kinds are a closed enum — unknown
    kinds are violations) plus referential integrity of the span tree
    (unique ids, parents resolve to earlier events or 0).
    """
    errors = _structural_errors(payload, schema if schema is not None else load_schema())
    if errors:
        return errors
    seen: set[int] = set()
    for i, event in enumerate(payload.get("traceEvents", [])):
        args = event.get("args", {})
        span_id, parent = args.get("id"), args.get("parent")
        if span_id in seen:
            errors.append(f"$.traceEvents[{i}]: duplicate span id {span_id}")
        if parent != 0 and parent not in seen:
            errors.append(
                f"$.traceEvents[{i}]: parent {parent} does not reference an earlier span"
            )
        seen.add(span_id)
    return errors


def validate_trace_file(path: str | Path, schema: dict | None = None) -> None:
    """Validate one trace file, raising :class:`TraceSchemaError` with
    every violation on failure."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise TraceSchemaError(f"{path}: not valid JSON: {exc}") from None
    errors = validate_trace(payload, schema)
    if errors:
        raise TraceSchemaError(
            f"{path}: {len(errors)} schema violation(s):\n  "
            + "\n  ".join(errors)
        )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: validate each file argument; exit 1 on failure."""
    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print("usage: python -m repro.obs.schema TRACE.json [...]", file=sys.stderr)
        return 2
    status = 0
    for path in paths:
        try:
            validate_trace_file(path)
        except TraceSchemaError as exc:
            print(f"INVALID: {exc}", file=sys.stderr)
            status = 1
        else:
            events = len(json.loads(Path(path).read_text())["traceEvents"])
            print(f"OK: {path} ({events} events)")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
