"""Hierarchical tracing for the solver stack: spans, counters, summaries.

A :class:`Tracer` records a tree of :class:`Span` objects — one ``solve``
root, one ``probe`` per bisection iteration, ``round`` / ``enumerate`` /
``dp`` phases inside each probe, and one ``level`` span per wavefront
anti-diagonal batch — each with monotonic start/end timestamps
(:func:`time.perf_counter`) and tagged attributes (``T``, ``k``, engine,
worker count, …).  Alongside the tree the tracer keeps named counters
(probes, levels, configurations enumerated, rounding-cache reuses).

The taxonomy is closed: :data:`SPAN_KINDS` is the single source of truth,
mirrored by the checked-in JSON schema
(``src/repro/obs/trace_schema.json``) that CI validates every emitted
trace against.

Zero cost when off
------------------
Every instrumentation point in the solvers goes through a tracer, but the
default is the module singleton :data:`NULL_TRACER` whose ``span()``
returns one shared no-op context manager and whose ``count()`` does
nothing — a handful of nanoseconds per call, so un-traced solves (and the
tier-1 test suite) pay effectively nothing.  Hot loops additionally
branch on ``tracer.enabled`` to keep their fastest path (e.g. the numpy
whole-table sweep) untouched.

Tracers are cheap, single-use, and intentionally *not* thread-safe:
create one per solve (the service creates one per request) and read it
after the solve returns.  Spans must be opened and closed on the thread
driving the solve — worker threads/processes never open spans; their
work is covered by the enclosing ``level`` span.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator

#: The closed span taxonomy (see ``docs/observability.md``):
#:
#: * ``solve`` — one whole (parallel) PTAS run;
#: * ``probe`` — one bisection iteration (the unit of cancellation);
#: * ``round`` — long/short split + rounding for the probe's target;
#: * ``enumerate`` — machine-configuration enumeration (Eq. 3);
#: * ``dp`` — one DP table fill / decision solve;
#: * ``level`` — one wavefront anti-diagonal batch (Alg. 3 inner loop);
#: * ``run`` — one tile diagonal of the *batched* wavefront (a barrier's
#:   worth of block×level-run tiles; see ``repro.parallel.runs``);
#: * ``spec_round`` — one speculative-bisection round (its concurrent
#:   probes nest beneath it);
#: * ``backtrack`` — machine-configuration recovery from a filled table;
#: * ``reconstruct`` — un-rounding + LPT fill into the final schedule.
SPAN_KINDS = (
    "solve",
    "probe",
    "round",
    "enumerate",
    "dp",
    "level",
    "run",
    "spec_round",
    "backtrack",
    "reconstruct",
)


class Span:
    """One timed node of the trace tree.

    ``start``/``end`` are :func:`time.perf_counter` seconds (``end`` is
    ``None`` while the span is open); ``attrs`` are the tagged
    attributes; ``children`` are nested spans in open order.
    """

    __slots__ = ("kind", "attrs", "start", "end", "children")

    def __init__(self, kind: str, attrs: dict[str, Any], start: float) -> None:
        self.kind = kind
        self.attrs = attrs
        self.start = start
        self.end: float | None = None
        self.children: list["Span"] = []

    @property
    def duration(self) -> float:
        """Wall seconds from open to close (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def set(self, **attrs: Any) -> None:
        """Merge *attrs* into the span's attributes (late tagging —
        e.g. a probe learns ``feasible`` only after its DP returns)."""
        self.attrs.update(attrs)

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, kind: str) -> list["Span"]:
        """All descendants (including self) of the given kind."""
        return [s for s in self.walk() if s.kind == kind]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.kind!r}, dur={self.duration:.6f}, "
            f"children={len(self.children)}, attrs={self.attrs!r})"
        )


class _NullSpan:
    """The shared do-nothing span handle returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        """No-op."""


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``enabled`` is ``False`` so hot loops can skip instrumentation
    entirely (e.g. fall back to the fused numpy sweep).  Use the module
    singleton :data:`NULL_TRACER` rather than constructing new ones.
    """

    enabled = False

    def span(self, kind: str, **attrs: Any) -> _NullSpan:
        """Return the shared no-op span handle."""
        return _NULL_SPAN

    def count(self, name: str, n: int = 1) -> None:
        """No-op."""


#: Process-wide disabled tracer; the default everywhere a tracer is
#: accepted.  One shared instance so identity checks are cheap.
NULL_TRACER = NullTracer()


class _OpenSpan:
    """Context manager that opens a :class:`Span` on enter and closes it
    (restoring the tracer's stack) on exit."""

    __slots__ = ("_tracer", "_span", "_profile")

    def __init__(self, tracer: "Tracer", kind: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self._span = Span(kind, attrs, 0.0)
        self._profile = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self._span
        if tracer._stack:
            tracer._stack[-1].children.append(span)
        else:
            tracer.roots.append(span)
        tracer._stack.append(span)
        profiler = tracer.profiler
        if profiler is not None and span.kind in profiler.kinds:
            self._profile = profiler.begin()
        span.start = tracer.clock()
        return span

    def __exit__(self, *exc: object) -> bool:
        span = self._span
        span.end = self._tracer.clock()
        if self._profile is not None:
            self._tracer.profiler.finish(self._profile, span)
        stack = self._tracer._stack
        if stack and stack[-1] is span:
            stack.pop()
        return False


class Tracer:
    """Collects a span tree plus counters for one solve.

    Parameters
    ----------
    clock:
        Monotonic timestamp source (seconds); default
        :func:`time.perf_counter`.
    profiler:
        Optional :class:`repro.obs.profile.SamplingProfiler`; while a
        span whose kind is in ``profiler.kinds`` (default: ``probe``) is
        open, the solving thread's stack is sampled, and if the span
        turns out slower than the profiler's threshold the hottest
        stacks are attached to its attributes.

    >>> tracer = Tracer()
    >>> with tracer.span("solve", algorithm="ptas") as solve:
    ...     with tracer.span("probe", target=14):
    ...         tracer.count("probes")
    >>> [s.kind for s in solve.walk()]
    ['solve', 'probe']
    >>> tracer.counters["probes"]
    1
    """

    enabled = True

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.perf_counter,
        profiler: "Any | None" = None,
    ) -> None:
        self.clock = clock
        self.profiler = profiler
        self.roots: list[Span] = []
        self.counters: dict[str, int] = {}
        self._stack: list[Span] = []

    def span(self, kind: str, **attrs: Any) -> _OpenSpan:
        """Open a span of the given kind as a context manager.

        The span nests under whichever span is currently open on this
        tracer (or becomes a root).  The ``with`` target is the
        :class:`Span` itself, so late attributes can be attached via
        :meth:`Span.set`.
        """
        return _OpenSpan(self, kind, attrs)

    def count(self, name: str, n: int = 1) -> None:
        """Add *n* to the named counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def walk(self) -> Iterator[Span]:
        """Yield every recorded span, depth-first across all roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, kind: str) -> list[Span]:
        """All recorded spans of the given kind."""
        return [s for s in self.walk() if s.kind == kind]

    def phase_summary(self) -> dict[str, dict[str, float | int]]:
        """Aggregate per-kind totals: ``{kind: {count, seconds}}``.

        ``seconds`` is the summed inclusive wall time of every closed
        span of that kind (the taxonomy never nests a kind inside
        itself, so inclusive sums do not double-count).  Open spans
        contribute their count but zero seconds.
        """
        summary: dict[str, dict[str, float | int]] = {}
        for span in self.walk():
            agg = summary.setdefault(span.kind, {"count": 0, "seconds": 0.0})
            agg["count"] += 1
            agg["seconds"] += span.duration
        return summary


def publish_phase_summary(tracer: Tracer, metrics: Any) -> dict[str, dict[str, float | int]]:
    """Publish a tracer's per-phase aggregates into a metrics registry.

    For every span kind, observes the solve's total seconds on the
    ``trace.phase.<kind>.seconds`` histogram and bumps the
    ``trace.spans.<kind>`` counter; tracer counters land under
    ``trace.counters.<name>``.  *metrics* is duck-typed against
    :class:`repro.service.metrics.MetricsRegistry` (``histogram(name)``
    / ``counter(name)``), keeping this module dependency-free.  Returns
    the summary it published.
    """
    summary = tracer.phase_summary()
    for kind, agg in sorted(summary.items()):
        metrics.histogram(f"trace.phase.{kind}.seconds").observe(float(agg["seconds"]))
        metrics.counter(f"trace.spans.{kind}").inc(int(agg["count"]))
    for name, value in sorted(tracer.counters.items()):
        metrics.counter(f"trace.counters.{name}").inc(int(value))
    return summary
