"""Trace (de)serialization: Chrome ``chrome://tracing`` event format.

One solve's trace exports to a single JSON file in the Trace Event
Format (the ``traceEvents`` array of complete ``"ph": "X"`` events that
``chrome://tracing`` and Perfetto's legacy importer open directly).
Timestamps are microseconds relative to the earliest span, durations are
microseconds, and every event's ``args`` carries the span kind, a
preorder span id, the parent id (``0`` for roots), and the span's tagged
attributes — enough to round-trip the tree exactly, which
:func:`load_trace` does.

The file layout is pinned by the checked-in schema
(``trace_schema.json``); :mod:`repro.obs.schema` validates files against
it and CI runs that validation on a freshly traced solve.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.trace import Span, Tracer

#: Version tag of the trace file layout (bump on breaking changes).
TRACE_SCHEMA_NAME = "repro-trace-v1"

#: Reserved ``args`` keys the exporter owns; span attributes may not
#: shadow them.
_RESERVED_ARGS = ("kind", "id", "parent")


def _json_safe(value: Any) -> Any:
    """Clamp an attribute value to something JSON can carry."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


@dataclass
class TraceData:
    """A loaded trace: the span forest plus the tracer's counters."""

    spans: list[Span] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)

    def walk(self):
        """Yield every span depth-first across all roots."""
        for root in self.spans:
            yield from root.walk()

    def find(self, kind: str) -> list[Span]:
        """All spans of the given kind."""
        return [s for s in self.walk() if s.kind == kind]


def trace_to_payload(tracer: Tracer | TraceData) -> dict:
    """Render a tracer (or loaded trace) as the JSON-safe file payload."""
    roots = tracer.roots if isinstance(tracer, Tracer) else tracer.spans
    counters = tracer.counters
    origin = min((s.start for r in roots for s in r.walk()), default=0.0)
    events: list[dict] = []
    next_id = 1

    def emit(span: Span, parent_id: int) -> None:
        nonlocal next_id
        span_id = next_id
        next_id += 1
        end = span.end if span.end is not None else span.start
        args: dict[str, Any] = {
            "kind": span.kind,
            "id": span_id,
            "parent": parent_id,
        }
        for key, value in span.attrs.items():
            if key in _RESERVED_ARGS:
                continue
            args[str(key)] = _json_safe(value)
        events.append(
            {
                "name": span.kind,
                "cat": "repro",
                "ph": "X",
                "ts": round((span.start - origin) * 1e6, 3),
                "dur": round((end - span.start) * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "args": args,
            }
        )
        for child in span.children:
            emit(child, span_id)

    for root in roots:
        emit(root, 0)
    return {
        "schema": TRACE_SCHEMA_NAME,
        "displayTimeUnit": "ms",
        "traceEvents": events,
        "otherData": {"counters": {k: int(v) for k, v in sorted(counters.items())}},
    }


def save_trace(tracer: Tracer | TraceData, path: str | Path) -> Path:
    """Write the trace as one JSON file and return its path.

    The file opens directly in ``chrome://tracing`` ("Load" button) or
    Perfetto's legacy trace importer; see ``docs/observability.md``.
    """
    out = Path(path)
    out.write_text(json.dumps(trace_to_payload(tracer), indent=1) + "\n")
    return out


def payload_to_trace(payload: dict) -> TraceData:
    """Rebuild the span forest from a file payload (inverse of
    :func:`trace_to_payload`; timestamps come back as relative seconds)."""
    spans: dict[int, Span] = {}
    children_of: dict[int, list[int]] = {}
    order: list[int] = []
    for event in payload.get("traceEvents", ()):
        args = dict(event.get("args", {}))
        span_id = int(args.pop("id"))
        parent_id = int(args.pop("parent"))
        kind = str(args.pop("kind"))
        start = float(event["ts"]) / 1e6
        span = Span(kind, args, start)
        span.end = start + float(event["dur"]) / 1e6
        spans[span_id] = span
        children_of.setdefault(parent_id, []).append(span_id)
        order.append(span_id)
    for parent_id, child_ids in children_of.items():
        if parent_id == 0:
            continue
        if parent_id not in spans:
            raise ValueError(f"trace event references unknown parent id {parent_id}")
        spans[parent_id].children = [spans[c] for c in child_ids]
    roots = [spans[i] for i in children_of.get(0, [])]
    counters = {
        str(k): int(v)
        for k, v in payload.get("otherData", {}).get("counters", {}).items()
    }
    return TraceData(spans=roots, counters=counters)


def load_trace(path: str | Path) -> TraceData:
    """Read a trace file written by :func:`save_trace`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != TRACE_SCHEMA_NAME:
        raise ValueError(
            f"not a {TRACE_SCHEMA_NAME} file: schema={payload.get('schema')!r}"
        )
    return payload_to_trace(payload)
