"""repro.obs — zero-dependency solver observability (tracing + profiling).

The observability layer gives every solve a hierarchical trace::

    solve
    ├── spec_round (speculative mode: one multi-probe round)
    │   └── probe ...
    ├── probe (one per bisection iteration)
    │   ├── round        rounding of the probe's target
    │   ├── enumerate    machine-configuration enumeration (Eq. 3)
    │   └── dp           the decision DP
    │       ├── level    one wavefront anti-diagonal batch, or
    │       ├── run      one tile diagonal of the batched wavefront
    │       └── backtrack
    └── reconstruct      un-rounding + LPT fill

* :mod:`repro.obs.trace` — :class:`Tracer` / :class:`Span` /
  :data:`NULL_TRACER`, counters, per-phase summaries.
* :mod:`repro.obs.export` — Chrome trace-event JSON export
  (:func:`save_trace`) and round-trip loading (:func:`load_trace`);
  :func:`trace_to_payload` / :func:`payload_to_trace` are the in-memory
  halves, also used by :meth:`repro.store.ResultStore.archive_trace` to
  persist traces next to the results they explain.
* :mod:`repro.obs.schema` — validation against the checked-in schema
  (``trace_schema.json``); fails on unknown span kinds.
* :mod:`repro.obs.profile` — :class:`SamplingProfiler`, the slow-probe
  stack sampler.

Spans are threaded through the solvers by
:class:`repro.core.context.SolveContext`; see ``docs/observability.md``.
"""

from repro.obs.export import (
    TraceData,
    load_trace,
    payload_to_trace,
    save_trace,
    trace_to_payload,
)
from repro.obs.profile import SamplingProfiler
from repro.obs.schema import TraceSchemaError, validate_trace, validate_trace_file
from repro.obs.trace import (
    NULL_TRACER,
    SPAN_KINDS,
    NullTracer,
    Span,
    Tracer,
    publish_phase_summary,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "SPAN_KINDS",
    "SamplingProfiler",
    "TraceData",
    "save_trace",
    "load_trace",
    "trace_to_payload",
    "payload_to_trace",
    "validate_trace",
    "validate_trace_file",
    "TraceSchemaError",
    "publish_phase_summary",
]
