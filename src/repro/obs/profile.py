"""Sampling profiler hook for slow probes.

A :class:`SamplingProfiler` attached to a
:class:`~repro.obs.trace.Tracer` samples the solving thread's Python
stack (via :data:`sys._current_frames`) from a small daemon thread while
any span of a profiled kind (default: ``probe``) is open.  When the span
closes, the samples are kept only if the span overran the profiler's
``threshold`` — slow probes get their hottest collapsed stacks attached
as the ``profile`` attribute (and therefore exported with the trace);
fast probes pay one thread handoff and nothing else.

This is deliberately a *statistical* profiler: no sys.settrace, no
interpreter slow-down of the measured code — the sampled thread runs at
full speed, which keeps the per-level timings in the same trace honest.
"""

from __future__ import annotations

import sys
import threading
from collections import Counter
from dataclasses import dataclass, field


def _collapse(frame) -> str:
    """Render a frame stack as one semicolon-joined ``file:func:line``
    string, innermost frame last (the flamegraph "collapsed" format)."""
    parts: list[str] = []
    while frame is not None:
        code = frame.f_code
        parts.append(f"{code.co_filename.rsplit('/', 1)[-1]}:{code.co_name}:{frame.f_lineno}")
        frame = frame.f_back
    return ";".join(reversed(parts))


@dataclass
class _Session:
    """One live sampling run: target thread, stop signal, samples."""

    target_ident: int
    stop: threading.Event = field(default_factory=threading.Event)
    samples: Counter = field(default_factory=Counter)
    thread: threading.Thread | None = None
    started_at: float = 0.0


class SamplingProfiler:
    """Samples the solving thread while profiled spans are open.

    Parameters
    ----------
    interval:
        Seconds between stack samples (default 5 ms).
    threshold:
        Minimum span duration (seconds) for its samples to be kept and
        attached; shorter spans discard their samples.
    top:
        How many distinct stacks to attach per slow span.
    kinds:
        Span kinds that trigger sampling (default: only ``probe`` — the
        bisection's unit of expensive work).

    Sessions are non-reentrant: if a profiled span opens while another
    session is live (never the case for the solver taxonomy, where
    probes do not nest), the inner span simply is not sampled.
    """

    def __init__(
        self,
        *,
        interval: float = 0.005,
        threshold: float = 0.05,
        top: int = 5,
        kinds: tuple[str, ...] = ("probe",),
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.interval = interval
        self.threshold = threshold
        self.top = top
        self.kinds = tuple(kinds)
        self._active: _Session | None = None

    def begin(self) -> _Session | None:
        """Start sampling the calling thread; returns the session handle
        (or ``None`` if a session is already live)."""
        if self._active is not None:
            return None
        session = _Session(target_ident=threading.get_ident())
        sampler = threading.Thread(
            target=self._run, args=(session,), name="repro-obs-sampler", daemon=True
        )
        session.thread = sampler
        self._active = session
        sampler.start()
        return session

    def finish(self, session: _Session | None, span) -> None:
        """Stop the session and, if *span* overran the threshold, attach
        its top collapsed stacks as the span's ``profile`` attribute."""
        if session is None:
            return
        session.stop.set()
        if session.thread is not None:
            session.thread.join(timeout=1.0)
        if self._active is session:
            self._active = None
        if span.duration < self.threshold or not session.samples:
            return
        span.set(
            profile=[
                {"stack": stack, "count": count}
                for stack, count in session.samples.most_common(self.top)
            ],
            profile_samples=sum(session.samples.values()),
        )

    def _run(self, session: _Session) -> None:
        """Sampler loop (daemon thread): snapshot the target thread's
        frame every ``interval`` seconds until stopped."""
        while not session.stop.wait(self.interval):
            frame = sys._current_frames().get(session.target_ident)
            if frame is not None:
                session.samples[_collapse(frame)] += 1
