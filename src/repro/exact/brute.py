"""Exhaustive exact solver — the oracle for tiny instances.

Enumerates assignments job-by-job with two safe prunings (running
makespan against the incumbent, and first-empty-machine symmetry
breaking: job ``j`` may open at most one new machine).  Exponential, of
course — callers should keep ``n`` below ~15.  Every other solver and
every approximation bound in the test suite is checked against this one.
"""

from __future__ import annotations

from repro.model.instance import Instance
from repro.model.schedule import Schedule


def brute_force(instance: Instance, max_jobs: int = 18) -> Schedule:
    """Optimal schedule by depth-first enumeration.

    Raises ``ValueError`` when the instance exceeds ``max_jobs`` — a
    guard against accidentally exploding a test run.

    >>> brute_force(Instance([5, 4, 3, 3, 3], num_machines=2)).makespan
    9
    """
    n = instance.num_jobs
    if n > max_jobs:
        raise ValueError(
            f"brute force limited to {max_jobs} jobs, instance has {n}"
        )
    m = instance.num_machines
    # Sorting jobs descending makes the incumbent good early and the
    # makespan pruning effective.
    order = instance.sorted_jobs_desc()
    t = instance.processing_times
    loads = [0] * m
    assign: list[int] = [0] * n  # position in `order` -> machine
    best_makespan = sum(t) + 1
    best_assign: list[int] = []

    def dfs(pos: int, current_max: int) -> None:
        nonlocal best_makespan, best_assign
        if current_max >= best_makespan:
            return
        if pos == n:
            best_makespan = current_max
            best_assign = assign[:n]
            return
        j = order[pos]
        seen_empty = False
        for machine in range(m):
            if loads[machine] == 0:
                if seen_empty:
                    continue  # identical empty machines — try only one
                seen_empty = True
            new_load = loads[machine] + t[j]
            if new_load >= best_makespan:
                continue
            loads[machine] = new_load
            assign[pos] = machine
            dfs(pos + 1, max(current_max, new_load))
            loads[machine] -= t[j]

    dfs(0, 0)
    groups: list[list[int]] = [[] for _ in range(m)]
    for pos, machine in enumerate(best_assign):
        groups[machine].append(order[pos])
    return Schedule(instance, groups)
