"""CP-style exact solver — an *independent* cross-check oracle.

Modeled on the classic constraint-programming formulation for parallel
machine scheduling (machine-assignment integer variables plus
element/load-style constraints): each job carries one variable whose
domain is the set of machines it may still run on, and each machine a
*load* constraint ``sum of assigned times <= T``.  The optimum is found
by bisecting the target ``T`` and answering each decision question with
a propagate-and-branch search:

* **Value pruning** — machine ``i`` leaves job ``j``'s domain as soon as
  ``load_i + t_j > T`` (the element-constraint view of the load limit).
* **Unit propagation** — a single-machine domain commits the job, which
  tightens loads and re-triggers pruning to a fixpoint.
* **Aggregate capacity** — the unassigned work must fit into the sum of
  residual capacities ``sum_i (T - load_i)``; a deficit fails the node
  without branching.
* **First-fail branching** — branch on the job with the smallest domain
  (ties: largest time), trying machines by ascending load and skipping
  equal-load machines (symmetric, since every constraint here is a
  function of load alone).

The point of this solver is *diversity*, not speed: it shares no search
order, no bound library (only the trivial Eq. 1 bound), and no incumbent
heuristic with :mod:`repro.exact.branch_and_bound`, so a bug in one is
overwhelmingly unlikely to be mirrored in the other.  The differential
fuzzing oracle of :mod:`repro.qa` leans on exactly that independence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.instance import Instance
from repro.model.schedule import Schedule


class _BudgetExhausted(Exception):
    """Internal: the shared node budget ran out mid-search."""


@dataclass(frozen=True)
class CPResult:
    """Outcome of a CP-style exact run."""

    schedule: Schedule
    optimal: bool
    nodes_explored: int
    probes: int

    @property
    def makespan(self) -> int:
        """Makespan of the returned schedule."""
        return self.schedule.makespan


class _NodeCounter:
    """Node counter shared across every bisection probe of one solve."""

    __slots__ = ("nodes", "budget")

    def __init__(self, budget: int | None):
        self.nodes = 0
        self.budget = budget if budget is not None else float("inf")

    def tick(self) -> None:
        """Count one search node; raise when the budget is exhausted."""
        self.nodes += 1
        if self.nodes > self.budget:
            raise _BudgetExhausted


def cp_feasible(
    instance: Instance, target: int, *, counter: _NodeCounter | None = None
) -> list[int] | None:
    """Decide whether an assignment with every machine load ``<= target``
    exists; return one (job index -> machine index) or ``None``.

    This is the CP decision kernel: value pruning, unit propagation and
    the aggregate-capacity check run to a fixpoint at every node, then
    the search branches first-fail.  State is copied per node — the
    instances this solver is asked to certify are small by design
    (the :mod:`repro.qa` fuzzer and the golden grid), so clarity wins
    over an undo trail.

    >>> cp_feasible(Instance([5, 4, 3, 3, 3], num_machines=2), 9) is not None
    True
    >>> cp_feasible(Instance([5, 4, 3, 3, 3], num_machines=2), 8) is None
    True
    """
    t = instance.processing_times
    n, m = instance.num_jobs, instance.num_machines
    if counter is None:
        counter = _NodeCounter(None)
    if instance.max_time > target:
        return None

    def propagate(
        loads: list[int],
        domains: dict[int, frozenset[int]],
        assign: list[int],
    ) -> bool:
        """Prune/commit to a fixpoint; False on a domain wipeout or an
        aggregate-capacity deficit.  Mutates all three arguments."""
        changed = True
        while changed:
            changed = False
            for j in list(domains):
                kept = frozenset(
                    i for i in domains[j] if loads[i] + t[j] <= target
                )
                if not kept:
                    return False
                if kept != domains[j]:
                    domains[j] = kept
                if len(kept) == 1:
                    (i,) = kept
                    loads[i] += t[j]
                    assign[j] = i
                    del domains[j]
                    changed = True
            remaining = sum(t[j] for j in domains)
            slack = sum(target - load for load in loads)
            if remaining > slack:
                return False
        return True

    def dfs(
        loads: list[int],
        domains: dict[int, frozenset[int]],
        assign: list[int],
    ) -> list[int] | None:
        counter.tick()
        if not propagate(loads, domains, assign):
            return None
        if not domains:
            return assign
        # First-fail: smallest domain, ties broken toward the longest job.
        j = min(domains, key=lambda j: (len(domains[j]), -t[j], j))
        tried_loads: set[int] = set()
        for i in sorted(domains[j], key=lambda i: (loads[i], i)):
            if loads[i] in tried_loads:
                # Every constraint is a function of load alone, so two
                # machines at equal load are fully interchangeable here.
                continue
            tried_loads.add(loads[i])
            child_loads = loads[:]
            child_loads[i] += t[j]
            child_domains = dict(domains)
            del child_domains[j]
            child_assign = assign[:]
            child_assign[j] = i
            found = dfs(child_loads, child_domains, child_assign)
            if found is not None:
                return found
        return None

    return dfs(
        [0] * m, {j: frozenset(range(m)) for j in range(n)}, [-1] * n
    )


def _greedy_incumbent(instance: Instance) -> list[int]:
    """Deliberately naive least-loaded placement (input order) — the
    emergency incumbent when the node budget dies before any probe
    succeeds.  Kept independent of :mod:`repro.algorithms` on purpose."""
    loads = [0] * instance.num_machines
    assign = []
    for time in instance.processing_times:
        i = min(range(instance.num_machines), key=lambda i: (loads[i], i))
        loads[i] += time
        assign.append(i)
    return assign


def _to_schedule(instance: Instance, assign: list[int]) -> Schedule:
    """Materialize a job->machine vector as a validated Schedule."""
    groups: list[list[int]] = [[] for _ in range(instance.num_machines)]
    for j, i in enumerate(assign):
        groups[i].append(j)
    return Schedule(instance, groups)


def cp_solve(instance: Instance, *, node_budget: int | None = None) -> CPResult:
    """Solve ``P || Cmax`` exactly by bisecting the makespan target.

    The search interval starts at the trivial Eq. (1) bounds — no shared
    lower-bound library, no LPT incumbent — and each probe is decided by
    :func:`cp_feasible`.  With an exhausted ``node_budget`` the best
    assignment found so far is returned with ``optimal=False`` (the
    greedy placement when not even one probe finished).

    >>> res = cp_solve(Instance([5, 4, 3, 3, 3], num_machines=2))
    >>> res.makespan, res.optimal
    (9, True)
    """
    import sys

    counter = _NodeCounter(node_budget)
    lo = instance.trivial_lower_bound()
    hi = instance.total_work  # one machine takes everything: feasible
    best: list[int] | None = None
    best_target = hi
    probes = 0
    exhausted = False
    old_limit = sys.getrecursionlimit()
    if old_limit < instance.num_jobs + 64:
        sys.setrecursionlimit(instance.num_jobs + 64)
    try:
        while lo < hi:
            mid = (lo + hi) // 2
            probes += 1
            found = cp_feasible(instance, mid, counter=counter)
            if found is not None:
                best, best_target, hi = found, mid, mid
            else:
                lo = mid + 1
        if best is None or best_target != lo:
            # Either every probe was infeasible (OPT == the trivial
            # upper bound) or lo rose past the last feasible probe:
            # certify the final target explicitly.
            probes += 1
            found = cp_feasible(instance, lo, counter=counter)
            if found is not None:
                best, best_target = found, lo
    except _BudgetExhausted:
        exhausted = True
    finally:
        sys.setrecursionlimit(old_limit)
    if best is None:
        best = _greedy_incumbent(instance)
    schedule = _to_schedule(instance, best)
    optimal = not exhausted
    return CPResult(
        schedule=schedule,
        optimal=optimal,
        nodes_explored=counter.nodes,
        probes=probes,
    )
