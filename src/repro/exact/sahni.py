"""Sahni's algorithms for a *fixed* number of machines.

The paper's related-work section cites Sahni (1976): when ``m`` is a
constant, ``P m || Cmax`` admits both an exact pseudo-polynomial DP and
an FPTAS derived from it by state-space trimming.  Both are implemented
here as an extension (DESIGN.md §7) and double as extra oracles for the
test suite:

* :func:`exact_dp` — DP over reachable load vectors ``(w_1, ..., w_m)``
  kept canonical (sorted), exact in time ``O(n * UB^{m-1})``.
* :func:`sahni_fptas` — the same DP with loads trimmed to a geometric
  grid, giving a ``(1 + eps)`` guarantee in time polynomial in ``n`` and
  ``1/eps`` for fixed ``m``.

Contrast with Hochbaum–Shmoys: Sahni's scheme is an FPTAS but only for
fixed ``m``; the paper's PTAS handles ``m`` as part of the input, which
is why it (and not this) is the object of the parallelization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.instance import Instance
from repro.model.schedule import Schedule


@dataclass(frozen=True)
class SahniResult:
    schedule: Schedule
    makespan: int
    exact: bool


def _reconstruct(
    instance: Instance,
    parents: list[dict[tuple[int, ...], tuple[tuple[int, ...], int]]],
    final_state: tuple[int, ...],
) -> Schedule:
    """Walk the per-job parent pointers back to an assignment.

    States are canonical (sorted) load vectors; the parent record stores
    which *position* of the previous state received the job, so the walk
    re-sorts exactly the way the forward pass did.
    """
    n = instance.num_jobs
    m = instance.num_machines
    # Recover the chain of (state, machine-slot) decisions.
    chain: list[tuple[tuple[int, ...], int]] = []
    state = final_state
    for j in range(n - 1, -1, -1):
        prev_state, slot = parents[j][state]
        chain.append((prev_state, slot))
        state = prev_state
    chain.reverse()
    # Replay forward, tracking which physical machine each sorted slot is.
    machines: list[list[int]] = [[] for _ in range(m)]
    loads = [0] * m
    order = list(range(m))  # order[i] = physical machine of sorted slot i
    t = instance.processing_times
    for j, (prev_state, slot) in enumerate(chain):
        phys = order[slot]
        machines[phys].append(j)
        loads[phys] += t[j]
        order = sorted(range(m), key=lambda i: (loads[i], i))
    return Schedule(instance, machines)


def _run_dp(
    instance: Instance, trim: float | None
) -> tuple[tuple[int, ...], list[dict]]:
    """Shared forward pass.  ``trim`` is ``None`` for the exact DP, or the
    multiplicative grid ``delta`` of the FPTAS (states whose load vectors
    round to the same grid cell are merged)."""
    m = instance.num_machines
    t = instance.processing_times
    start = tuple([0] * m)
    frontier: dict[tuple[int, ...], None] = {start: None}
    parents: list[dict[tuple[int, ...], tuple[tuple[int, ...], int]]] = []

    def key(state: tuple[int, ...]) -> tuple[int, ...]:
        if trim is None:
            return state
        import math

        return tuple(
            0 if w == 0 else int(math.log(w) / math.log(1 + trim)) for w in state
        )

    for j in range(instance.num_jobs):
        nxt: dict[tuple[int, ...], None] = {}
        seen_keys: dict[tuple[int, ...], tuple[int, ...]] = {}
        parent_map: dict[tuple[int, ...], tuple[tuple[int, ...], int]] = {}
        for state in frontier:
            placed: set[int] = set()
            for slot in range(m):
                if state[slot] in placed:
                    continue  # identical loads — symmetric placements
                placed.add(state[slot])
                loads = list(state)
                loads[slot] += t[j]
                new_state = tuple(sorted(loads))
                k = key(new_state)
                kept = seen_keys.get(k)
                if kept is None or max(new_state) < max(kept):
                    if kept is not None:
                        nxt.pop(kept, None)
                        parent_map.pop(kept, None)
                    seen_keys[k] = new_state
                    nxt[new_state] = None
                    parent_map[new_state] = (state, slot)
        frontier = nxt
        parents.append(parent_map)
    best = min(frontier, key=max)
    return best, parents


def exact_dp(instance: Instance, max_states: int = 2_000_000) -> SahniResult:
    """Exact DP over canonical load vectors (fixed small ``m`` only).

    Raises ``ValueError`` when the reachable state space would exceed
    ``max_states`` (a rough pre-check using ``UB^{m-1}``).
    """
    m = instance.num_machines
    ub = instance.trivial_upper_bound()
    if m > 1 and (ub + 1) ** (m - 1) > max_states:
        raise ValueError(
            f"exact DP state space ~{(ub + 1) ** (m - 1)} exceeds the "
            f"{max_states} cap; use branch_and_bound or ilp_solve instead"
        )
    best, parents = _run_dp(instance, trim=None)
    schedule = _reconstruct(instance, parents, best)
    assert schedule.makespan == max(best)
    return SahniResult(schedule=schedule, makespan=max(best), exact=True)


def sahni_fptas(instance: Instance, eps: float) -> SahniResult:
    """Sahni's FPTAS for fixed ``m``: trimmed load-vector DP.

    Guarantee: makespan at most ``(1 + eps)`` times optimal.  The grid
    ``delta = eps / (2n)`` keeps the accumulated per-job rounding error
    within ``eps``.
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    delta = eps / (2.0 * instance.num_jobs)
    best, parents = _run_dp(instance, trim=delta)
    schedule = _reconstruct(instance, parents, best)
    return SahniResult(schedule=schedule, makespan=schedule.makespan, exact=False)
