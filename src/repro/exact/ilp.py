"""The integer-program formulation of ``P || Cmax`` solved with HiGHS.

This is the exact formulation the paper hands to CPLEX:

    minimize   C
    subject to sum_i x_ij = 1                 for every job j
               sum_j t_j x_ij - C <= 0        for every machine i
               x_ij in {0, 1},  C >= LB

scipy's :func:`scipy.optimize.milp` (the bundled HiGHS solver) plays the
role of CPLEX.  Optional machine-symmetry-breaking constraints (machine
loads non-increasing in the machine index) dramatically shrink the
branch-and-cut tree on some families while slowing others — mirroring the
erratic CPLEX behaviour the paper observes but cannot explain (§V-B).

Variable layout: ``x`` is flattened machine-major (``x[i*n + j]``),
followed by the single continuous variable ``C``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import lil_matrix

from repro.model.instance import Instance
from repro.model.schedule import Schedule


@dataclass(frozen=True)
class ILPResult:
    """Outcome of one MILP solve."""

    schedule: Schedule
    optimal: bool
    objective: float
    solver_status: int
    solver_message: str

    @property
    def makespan(self) -> int:
        return self.schedule.makespan


def ilp_solve(
    instance: Instance,
    time_limit: float | None = None,
    symmetry_breaking: bool = True,
    mip_rel_gap: float = 0.0,
) -> ILPResult:
    """Solve the assignment MILP to optimality (or until ``time_limit``).

    Returns the incumbent schedule either way; ``optimal`` reports
    whether HiGHS proved optimality.

    >>> ilp_solve(Instance([5, 4, 3, 3, 3], num_machines=2)).makespan
    9
    """
    n = instance.num_jobs
    m = instance.num_machines
    t = np.asarray(instance.processing_times, dtype=float)
    num_x = m * n
    num_vars = num_x + 1  # + makespan variable C

    # Objective: minimize C.
    c = np.zeros(num_vars)
    c[num_x] = 1.0

    constraints: list[LinearConstraint] = []

    # Each job on exactly one machine.
    a_assign = lil_matrix((n, num_vars))
    for j in range(n):
        for i in range(m):
            a_assign[j, i * n + j] = 1.0
    constraints.append(LinearConstraint(a_assign.tocsr(), lb=1.0, ub=1.0))

    # Machine loads bounded by C.
    a_load = lil_matrix((m, num_vars))
    for i in range(m):
        for j in range(n):
            a_load[i, i * n + j] = t[j]
        a_load[i, num_x] = -1.0
    constraints.append(LinearConstraint(a_load.tocsr(), lb=-np.inf, ub=0.0))

    if symmetry_breaking and m > 1:
        # Non-increasing machine loads: load_i - load_{i+1} >= 0.
        a_sym = lil_matrix((m - 1, num_vars))
        for i in range(m - 1):
            for j in range(n):
                a_sym[i, i * n + j] = t[j]
                a_sym[i, (i + 1) * n + j] = -t[j]
        constraints.append(LinearConstraint(a_sym.tocsr(), lb=0.0, ub=np.inf))

    integrality = np.ones(num_vars)
    integrality[num_x] = 0.0  # C is continuous (integral anyway at opt)
    lb = np.zeros(num_vars)
    ub = np.ones(num_vars)
    lb[num_x] = float(instance.trivial_lower_bound())
    ub[num_x] = float(instance.trivial_upper_bound())

    options: dict[str, object] = {"mip_rel_gap": mip_rel_gap}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    result = milp(
        c=c,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(lb=lb, ub=ub),
        options=options,
    )
    if result.x is None:
        # HiGHS hit the time limit before finding any incumbent.  CPLEX
        # in the same situation reports its best heuristic solution; the
        # cheapest equivalent here is the LPT schedule, flagged
        # non-optimal so downstream ratio reports can surface it.
        from repro.algorithms.lpt import lpt as _lpt

        schedule = _lpt(instance)
        return ILPResult(
            schedule=schedule,
            optimal=False,
            objective=float(schedule.makespan),
            solver_status=int(result.status),
            solver_message=str(result.message),
        )
    x = np.asarray(result.x[:num_x]).reshape(m, n)
    groups: list[list[int]] = [[] for _ in range(m)]
    for j in range(n):
        i = int(np.argmax(x[:, j]))
        groups[i].append(j)
    schedule = Schedule(instance, groups)
    return ILPResult(
        schedule=schedule,
        optimal=result.status == 0,
        objective=float(result.fun) if result.fun is not None else float("nan"),
        solver_status=int(result.status),
        solver_message=str(result.message),
    )
