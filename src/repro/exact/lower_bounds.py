"""Lower bounds on the optimal makespan beyond Eq. (1).

The trivial bound ``max(ceil(W/m), max t)`` is what the paper's PTAS and
our branch-and-bound start from; tighter combinatorial bounds prove
optimality earlier and shrink B&B trees.  Implemented here:

* :func:`lb_trivial` — Eq. (1), for uniformity.
* :func:`lb_pairing` — jobs longer than half a candidate makespan cannot
  share a machine: if more than ``m`` jobs exceed ``C/2``, makespan ``C``
  is infeasible.  Binary search over ``C`` turns this into a bound.
* :func:`lb_third` — the three-per-machine refinement: jobs in
  ``(C/3, C/2]`` can pair at most two per machine with the ``> C/2``
  jobs' leftovers; a counting argument yields another infeasibility
  test (a light version of the Martello–Toth bin-packing L2 bound,
  transposed to ``P || Cmax``).
* :func:`lb_best` — the maximum of all bounds; used by
  :func:`repro.exact.branch_and_bound.branch_and_bound` via its
  ``strong_bounds`` flag and tested to never exceed the true optimum.
"""

from __future__ import annotations

import math

from repro.model.instance import Instance


def lb_trivial(instance: Instance) -> int:
    """Eq. (1): ``max(ceil(W/m), max t)``."""
    return instance.trivial_lower_bound()


def _feasible_by_pairing(instance: Instance, c: int) -> bool:
    """Necessary condition for makespan ``<= c``: at most ``m`` jobs are
    longer than ``c/2`` (two of them can never share a machine), and the
    work of the ``> c/2`` jobs plus the best-case fill of the rest still
    fits.  Returns False when ``c`` is provably infeasible."""
    m = instance.num_machines
    big = [t for t in instance.processing_times if 2 * t > c]
    if len(big) > m:
        return False
    if any(t > c for t in big):
        return False
    return True


def lb_pairing(instance: Instance) -> int:
    """Largest ``c`` such that every ``c' < c`` fails the pairing test.

    Computed directly: sort jobs descending; the ``(m+1)``-th largest job
    ``t_{m+1}`` (if it exists) forces some machine to run two jobs among
    the top ``m+1``, i.e. makespan ``>= t_{m+1} + t_{m+?}``... the tight
    classical form: ``OPT >= t_m + t_{m+1}`` over the descending order
    (the top ``m+1`` jobs occupy at most ``m`` machines, so two of them —
    the two smallest of that prefix are the best case — share one).
    """
    times = sorted(instance.processing_times, reverse=True)
    m = instance.num_machines
    if len(times) <= m:
        return max(times)
    return times[m - 1] + times[m]


def lb_third(instance: Instance) -> int:
    """Counting bound from the three-per-machine argument.

    For a candidate ``c``, let ``n1 = #{t > c/2}`` and
    ``n2 = #{c/3 < t <= c/2}``.  Jobs in ``n1`` take a machine each; jobs
    in ``n2`` fit at most two per machine and cannot join an ``n1`` job
    whose time exceeds ``2c/3``... the safe relaxation used here:
    ``n1 + ceil(max(0, n2 - (m - n1) * 2 ... )`` reduces to requiring
    ``n1 + ceil(n2 / 2) <= m`` once every ``n1``-machine is full for
    ``n2`` purposes, which holds when all big jobs exceed ``2c/3``.  We
    apply the test only in that regime, keeping the bound sound.

    The bound is the smallest ``c`` in ``[LB, UB]`` passing the test.
    """
    m = instance.num_machines
    lo, hi = instance.trivial_lower_bound(), instance.trivial_upper_bound()

    def passes(c: int) -> bool:
        if not _feasible_by_pairing(instance, c):
            return False
        big = [t for t in instance.processing_times if 2 * t > c]
        mid = [
            t
            for t in instance.processing_times
            if 3 * t > c and 2 * t <= c
        ]
        if big and min(big) * 3 > 2 * c:
            # Every big job exceeds 2c/3: no mid job (each > c/3) can
            # share with any of them, so mids pack two per leftover
            # machine at best.
            if len(big) + math.ceil(len(mid) / 2) > m:
                return False
        return True

    # Any c failing a *necessary* condition proves OPT >= c + 1.  The
    # tests are monotone for all practical instances, but soundness here
    # does not rely on that: only failed probes raise the bound.
    best = lo
    while lo < hi:
        c = (lo + hi) // 2
        if passes(c):
            hi = c
        else:
            lo = c + 1
            best = max(best, c + 1)
    return best


def lb_best(instance: Instance) -> int:
    """The strongest available lower bound."""
    return max(lb_trivial(instance), lb_pairing(instance), lb_third(instance))
