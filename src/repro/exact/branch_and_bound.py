"""Self-contained branch-and-bound exact solver for ``P || Cmax``.

Depth-first search over job→machine assignments (jobs in LPT order) with
the standard arsenal:

* **Incumbent**: starts from the LPT schedule, so the search begins with
  a solution at most 4/3 from optimal and can often prove it optimal
  immediately via the lower bound.
* **Lower bounds**: the Eq. (1) bound, plus the *remaining-work* bound at
  every node (some machine must absorb its share of the unassigned work).
* **Symmetry breaking**: machines with equal load are interchangeable —
  at each node a job is tried on at most one machine of each distinct
  load.
* **Optimality gap shortcut**: the search stops as soon as the incumbent
  matches the global lower bound.
* **Budget**: an optional node budget makes hard instances (the
  ``U(1, 10n)`` family that also stalls CPLEX in the paper) return the
  incumbent with ``optimal=False`` instead of hanging.

This solver exists so the "IP" comparison can run without any external
MILP solver; the harness uses :mod:`repro.exact.ilp` (HiGHS) by default.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.lpt import lpt
from repro.model.instance import Instance
from repro.model.schedule import Schedule


@dataclass(frozen=True)
class BnBResult:
    """Outcome of a branch-and-bound run."""

    schedule: Schedule
    optimal: bool
    nodes_explored: int
    lower_bound: int

    @property
    def makespan(self) -> int:
        return self.schedule.makespan


def branch_and_bound(
    instance: Instance,
    node_budget: int | None = None,
    strong_bounds: bool = True,
) -> BnBResult:
    """Exact (or budget-limited) solve.

    ``strong_bounds`` additionally applies the pairing/counting lower
    bounds of :mod:`repro.exact.lower_bounds`, which frequently certify
    the LPT incumbent as optimal without exploring a single node.

    >>> res = branch_and_bound(Instance([5, 4, 3, 3, 3], num_machines=2))
    >>> res.makespan, res.optimal
    (9, True)
    """
    m = instance.num_machines
    n = instance.num_jobs
    t = instance.processing_times
    order = instance.sorted_jobs_desc()
    if strong_bounds:
        from repro.exact.lower_bounds import lb_best

        global_lb = lb_best(instance)
    else:
        global_lb = instance.trivial_lower_bound()

    incumbent = lpt(instance)
    best_makespan = incumbent.makespan
    best_assign: list[int] | None = None  # position in `order` -> machine

    if best_makespan == global_lb:
        return BnBResult(incumbent, True, 0, global_lb)

    # Suffix sums of remaining work for the remaining-work bound.
    suffix = [0] * (n + 1)
    for pos in range(n - 1, -1, -1):
        suffix[pos] = suffix[pos + 1] + t[order[pos]]

    loads = [0] * m
    assign = [0] * n
    nodes = 0
    exhausted = False
    budget = node_budget if node_budget is not None else float("inf")
    total_work = instance.total_work

    def dfs(pos: int, current_max: int) -> bool:
        """Returns False when the node budget ran out."""
        nonlocal best_makespan, best_assign, nodes, exhausted
        nodes += 1
        if nodes > budget:
            exhausted = True
            return False
        if current_max >= best_makespan:
            return True
        if pos == n:
            best_makespan = current_max
            best_assign = assign[:n]
            return True
        # Remaining-work bound: even a perfect split of all work cannot
        # beat ceil(total / m) (all jobs end up assigned eventually).
        if -(-total_work // m) >= best_makespan:
            return True
        j = order[pos]
        tried_loads: set[int] = set()
        for machine in range(m):
            load = loads[machine]
            if load in tried_loads:
                continue
            tried_loads.add(load)
            new_load = load + t[j]
            if new_load >= best_makespan:
                continue
            loads[machine] = new_load
            assign[pos] = machine
            ok = dfs(pos + 1, max(current_max, new_load))
            loads[machine] = load
            if not ok:
                return False
            if best_makespan == global_lb:
                return True  # provably optimal — unwind
        return True

    import sys

    old_limit = sys.getrecursionlimit()
    if old_limit < n + 64:
        sys.setrecursionlimit(n + 64)
    try:
        dfs(0, 0)
    finally:
        sys.setrecursionlimit(old_limit)

    if best_assign is None:
        schedule = incumbent
    else:
        groups: list[list[int]] = [[] for _ in range(m)]
        for pos, machine in enumerate(best_assign):
            groups[machine].append(order[pos])
        schedule = Schedule(instance, groups)
    optimal = not exhausted or schedule.makespan == global_lb
    return BnBResult(
        schedule=schedule,
        optimal=optimal,
        nodes_explored=nodes,
        lower_bound=global_lb,
    )
