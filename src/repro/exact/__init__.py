"""Exact solvers for ``P || Cmax`` — the paper's "IP" baseline.

The paper obtains optimal makespans by handing the integer-program
formulation to IBM CPLEX.  CPLEX is proprietary, so this reproduction
provides three exact solvers (DESIGN.md §6, substitution 1):

* :mod:`repro.exact.ilp` — the identical MILP formulation solved with
  scipy's bundled HiGHS solver (the drop-in CPLEX substitute used by the
  experiment harness);
* :mod:`repro.exact.branch_and_bound` — a self-contained depth-first
  branch-and-bound with an LPT incumbent, load-based lower bounds and
  machine-symmetry breaking (no third-party solver at all);
* :mod:`repro.exact.brute` — exhaustive search for tiny instances, the
  oracle the others are verified against;
* :mod:`repro.exact.cp` — a CP-style propagate-and-branch solver
  bisecting the makespan target, deliberately sharing no search order or
  bound library with the others so the :mod:`repro.qa` differential
  fuzzer has an independent exact implementation to differ against.

:func:`solve_exact` dispatches by name and is what the public API
re-exports.
"""

from repro.exact.api import ExactResult, solve_exact
from repro.exact.branch_and_bound import branch_and_bound
from repro.exact.brute import brute_force
from repro.exact.cp import CPResult, cp_solve
from repro.exact.ilp import ilp_solve
from repro.exact.lower_bounds import lb_best
from repro.exact.sahni import exact_dp, sahni_fptas

__all__ = [
    "solve_exact",
    "ExactResult",
    "brute_force",
    "branch_and_bound",
    "cp_solve",
    "CPResult",
    "ilp_solve",
    "exact_dp",
    "sahni_fptas",
    "lb_best",
]
