"""Uniform front door for the exact solvers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exact.branch_and_bound import branch_and_bound
from repro.exact.brute import brute_force
from repro.exact.cp import cp_solve
from repro.exact.ilp import ilp_solve
from repro.model.instance import Instance
from repro.model.schedule import Schedule

METHODS = ("ilp", "bnb", "brute", "cp")


@dataclass(frozen=True)
class ExactResult:
    """Normalized result of any exact method."""

    schedule: Schedule
    optimal: bool
    method: str

    @property
    def makespan(self) -> int:
        return self.schedule.makespan


def solve_exact(
    instance: Instance,
    method: str = "ilp",
    *,
    time_limit: float | None = None,
    node_budget: int | None = None,
) -> ExactResult:
    """Solve ``P || Cmax`` exactly.

    Parameters
    ----------
    method:
        ``"ilp"`` (HiGHS MILP — the CPLEX stand-in), ``"bnb"`` (own
        branch-and-bound), ``"cp"`` (constraint-propagation bisection,
        the independent cross-check oracle), or ``"brute"`` (tiny
        instances only).
    time_limit:
        Wall-clock budget for ``"ilp"``.
    node_budget:
        Node budget for ``"bnb"`` and ``"cp"``.

    When a budget is exhausted the best incumbent is returned with
    ``optimal=False`` — matching how the paper reports CPLEX runs that
    time out.
    """
    if method == "ilp":
        res = ilp_solve(instance, time_limit=time_limit)
        return ExactResult(res.schedule, res.optimal, "ilp")
    if method == "bnb":
        res = branch_and_bound(instance, node_budget=node_budget)
        return ExactResult(res.schedule, res.optimal, "bnb")
    if method == "brute":
        schedule = brute_force(instance)
        return ExactResult(schedule, True, "brute")
    if method == "cp":
        res = cp_solve(instance, node_budget=node_budget)
        return ExactResult(res.schedule, res.optimal, "cp")
    raise ValueError(
        f"unknown exact method {method!r}; expected one of "
        f"{sorted(METHODS)}"
    )
