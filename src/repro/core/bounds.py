"""Lower and upper bounds on the optimal makespan (Eq. 1 and 2).

The bisection search of the PTAS needs an interval ``[LB, UB]`` that is
guaranteed to contain the optimal makespan:

* ``LB = max(ceil(sum(t)/m), max(t))`` — Eq. (1).  Any schedule must run
  the longest job somewhere, and some machine must receive at least the
  average load; since processing times are integral the average may be
  rounded up.
* ``UB = ceil(sum(t)/m) + max(t)`` — Eq. (2).  This is (a slight
  relaxation of) Graham's list-scheduling guarantee: when LS places the
  job that finishes last, every machine is busy, so the start time is at
  most the average load and the completion time at most average + max.

Both quantities are integers, so bisection on integers terminates after
``O(log(max t))`` iterations (the width of the interval is at most
``max t``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.model.instance import Instance


@dataclass(frozen=True)
class MakespanBounds:
    """An integer interval ``[lower, upper]`` bracketing the optimum."""

    lower: int
    upper: int

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ValueError(
                f"lower bound {self.lower} exceeds upper bound {self.upper}"
            )

    @property
    def width(self) -> int:
        """Size of the search interval (``upper - lower``)."""
        return self.upper - self.lower

    def midpoint(self) -> int:
        """The bisection pivot ``floor((lower + upper) / 2)`` (Alg. 1, l. 6)."""
        return (self.lower + self.upper) // 2

    def contains(self, value: int) -> bool:
        """Whether ``value`` lies inside the closed interval."""
        return self.lower <= value <= self.upper


def lower_bound(instance: Instance) -> int:
    """Eq. (1): ``max(ceil(total/m), max t)``."""
    return max(
        math.ceil(instance.total_work / instance.num_machines), instance.max_time
    )


def upper_bound(instance: Instance) -> int:
    """Eq. (2): ``ceil(total/m) + max t``."""
    return math.ceil(instance.total_work / instance.num_machines) + instance.max_time


def makespan_bounds(instance: Instance) -> MakespanBounds:
    """Both bounds bundled for the bisection driver."""
    return MakespanBounds(lower_bound(instance), upper_bound(instance))


def bounds_from_times(times: Iterable[int], num_machines: int) -> MakespanBounds:
    """Convenience wrapper building the bounds straight from raw times."""
    return makespan_bounds(Instance(times, num_machines))
