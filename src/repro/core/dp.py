"""Sequential dynamic-programming engines for the rounded packing problem.

Given the compressed class sizes, the job-count vector ``N`` and a target
makespan ``T``, every engine computes

    ``OPT(N)`` — the minimum number of machines that can execute all
    rounded long jobs with per-machine rounded load at most ``T``

via the recurrence (Eq. 4)

    ``OPT(v) = 1 + min_{s in C_v} OPT(v - s)``,  ``OPT(0) = 0``,

and (optionally) a witness: one machine configuration per machine, whose
componentwise sum is exactly ``N``.

Engines
-------
``table``
    Faithful to Alg. 2/3: materializes the full DP table of
    ``sigma = prod(n_i + 1)`` entries in row-major order and sweeps it
    once.  Row-major order dominates the componentwise order, so every
    predecessor ``v - s`` is ready when ``v`` is processed.
``memo``
    Top-down memoized recursion — the literal transcription of Eq. 4.
    Visits only states reachable *backwards* from ``N``; used as a
    cross-check oracle on small inputs.
``frontier``
    Forward BFS from the zero vector where each edge adds one machine
    configuration; the BFS depth at which ``v`` is first reached is
    ``OPT(v)``.  Supports early exit once a depth limit (e.g. the machine
    count ``m``) is exceeded, which is all the bisection needs.
``dominance``
    Optimized *cover* formulation: machines may be under-filled, so only
    maximal configurations matter and dominated partial covers can be
    pruned (keep only Pareto-maximal vectors ``min(v + s, N)``).  Returns
    exactly the same ``OPT`` (a cover can always be trimmed to an exact
    packing because any sub-multiset of a feasible configuration is
    feasible).  Usually orders of magnitude faster; this is the engine a
    practitioner should use, and the ablation benchmarks quantify why.
``numpy``
    Vectorized variant of the level sweep: all states of one
    anti-diagonal are processed with numpy array operations, one pass per
    configuration.  Semantically identical to ``table``.

All engines return a :class:`DPResult` and agree with each other — the
test suite enforces this on randomized inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.configurations import (
    ConfigurationSet,
    enumerate_configurations,
    enumerate_maximal_configurations,
)
from repro.core.context import DEFAULT_CONTEXT, SolveContext
from repro.core.kernels import LevelKernel, build_level_arrays, table_opt

#: Sentinel for "not computable / unreached" states.
INFEASIBLE = None


@dataclass(frozen=True)
class DPProblem:
    """Input of one DP invocation (one bisection iteration).

    ``class_sizes`` and ``counts`` are the compressed rounded classes of a
    :class:`~repro.core.rounding.RoundedInstance`; ``target`` is ``T``.

    ``job_cap`` bounds the total jobs per machine configuration.  ``None``
    reproduces the paper's Eq. 3 (weight-only) exactly; the PTAS driver
    passes ``k - 1`` by default to close the integral-rounding guarantee
    gap (see :func:`repro.core.configurations.enumerate_configurations`).
    """

    class_sizes: tuple[int, ...]
    counts: tuple[int, ...]
    target: int
    job_cap: int | None = None

    def __post_init__(self) -> None:
        if self.job_cap is not None and self.job_cap < 1:
            raise ValueError("job_cap must be >= 1 when given")
        if len(self.class_sizes) != len(self.counts):
            raise ValueError("class_sizes and counts must have equal length")
        for s in self.class_sizes:
            if s <= 0:
                raise ValueError(f"class sizes must be positive, got {s}")
        for c in self.counts:
            if c < 0:
                raise ValueError(f"counts must be non-negative, got {c}")
        if self.target < 0:
            raise ValueError("target must be non-negative")
        for s, c in zip(self.class_sizes, self.counts):
            if s > self.target and c > 0:
                raise ValueError(
                    f"class size {s} exceeds target {self.target}: no single "
                    "machine can run such a job"
                )

    @property
    def dims(self) -> tuple[int, ...]:
        """Extent of each DP-table axis: ``n_c + 1``."""
        return tuple(c + 1 for c in self.counts)

    @property
    def table_size(self) -> int:
        """``sigma`` — number of DP-table entries."""
        size = 1
        for c in self.counts:
            size *= c + 1
        return size

    @property
    def num_long_jobs(self) -> int:
        """``n'`` — also the index of the last anti-diagonal."""
        return sum(self.counts)

    def strides(self) -> tuple[int, ...]:
        """Row-major strides for flattening count vectors."""
        d = len(self.counts)
        strides = [1] * d
        for c in range(d - 2, -1, -1):
            strides[c] = strides[c + 1] * self.dims[c + 1]
        return tuple(strides)

    def configurations(self) -> ConfigurationSet:
        """The full non-zero configuration set ``C`` for this problem."""
        return enumerate_configurations(
            self.class_sizes, self.counts, self.target, max_jobs=self.job_cap
        )

    def maximal_configurations(self) -> ConfigurationSet:
        """Only the Pareto-maximal configurations (dominance engine)."""
        return enumerate_maximal_configurations(
            self.class_sizes, self.counts, self.target, max_jobs=self.job_cap
        )


@dataclass(frozen=True)
class DPStats:
    """Work accounting of one DP run, consumed by the simulated multicore
    model and the ablation benchmarks."""

    sigma: int
    num_levels: int
    level_sizes: tuple[int, ...]
    num_configs: int
    states_computed: int
    config_scans: int

    @property
    def total_ops(self) -> int:
        """Abstract operation count: one op per configuration scanned."""
        return self.config_scans


@dataclass(frozen=True)
class DPResult:
    """Outcome of a DP engine run.

    ``opt`` is ``None`` when a ``limit`` was given and ``OPT(N)`` exceeds
    it (the bisection treats that as "no feasible schedule within T").
    ``machine_configs`` — when requested and feasible — sum componentwise
    to exactly ``N``.
    """

    opt: int | None
    machine_configs: tuple[tuple[int, ...], ...] = ()
    engine: str = ""
    stats: DPStats | None = None

    @property
    def feasible_within(self) -> bool:
        return self.opt is not None


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

def level_of(vector: Sequence[int]) -> int:
    """Anti-diagonal index of a state: the sum of its components (the
    quantity Alg. 3 calls ``d_i``)."""
    return sum(vector)


def unrank(flat: int, dims: Sequence[int], strides: Sequence[int]) -> tuple[int, ...]:
    """Inverse of row-major flattening: recover the count vector of a flat
    table index."""
    return tuple((flat // strides[c]) % dims[c] for c in range(len(dims)))


def state_levels_array(problem: DPProblem) -> np.ndarray:
    """Vector of anti-diagonal indices for all ``sigma`` states, in
    row-major order (vectorized Alg. 3, lines 4–8)."""
    sigma = problem.table_size
    strides = problem.strides()
    dims = problem.dims
    flat = np.arange(sigma, dtype=np.int64)
    levels = np.zeros(sigma, dtype=np.int64)
    for c in range(len(dims)):
        levels += (flat // strides[c]) % dims[c]
    return levels


def backtrack_schedule(
    table: Callable[[int], int | None],
    problem: DPProblem,
    configs: ConfigurationSet,
) -> tuple[tuple[int, ...], ...]:
    """Recover one optimal machine assignment by walking the DP table from
    ``N`` back to the zero vector.

    ``table`` maps a flat state index to its ``OPT`` value (or ``None``).
    Deterministic: scans configurations in their canonical order and takes
    the first one consistent with optimality.
    """
    strides = problem.strides()
    v = list(problem.counts)
    flat = sum(c * s for c, s in zip(v, strides))
    current = table(flat)
    if current is None:
        raise ValueError("cannot backtrack an infeasible state")
    chosen: list[tuple[int, ...]] = []
    while any(v):
        found = False
        for cfg in configs.configs:
            if all(s <= vc for s, vc in zip(cfg, v)):
                offset = sum(s * st for s, st in zip(cfg, strides))
                prev = table(flat - offset)
                if prev is not None and prev == current - 1:
                    chosen.append(cfg)
                    for c, s in enumerate(cfg):
                        v[c] -= s
                    flat -= offset
                    current = prev
                    found = True
                    break
        if not found:  # pragma: no cover - table inconsistency guard
            raise AssertionError("DP table inconsistent: no predecessor found")
    return tuple(chosen)


def _enumerate_traced(
    problem: DPProblem, ctx: SolveContext, *, maximal: bool = False
) -> ConfigurationSet:
    """Enumerate the problem's configuration set under an ``enumerate``
    span, tagging the span with ``|C|`` and bumping the
    ``configs_enumerated`` counter."""
    with ctx.span("enumerate", maximal=maximal) as sp:
        configs = (
            problem.maximal_configurations() if maximal else problem.configurations()
        )
        sp.set(num_configs=len(configs))
    ctx.count("configs_enumerated", len(configs))
    return configs


def _empty_result(engine: str, collect_stats: bool) -> DPResult:
    stats = (
        DPStats(
            sigma=1,
            num_levels=1,
            level_sizes=(1,),
            num_configs=0,
            states_computed=1,
            config_scans=0,
        )
        if collect_stats
        else None
    )
    return DPResult(opt=0, machine_configs=(), engine=engine, stats=stats)


# ---------------------------------------------------------------------------
# Engine: faithful full-table sweep
# ---------------------------------------------------------------------------

def solve_table(
    problem: DPProblem,
    *,
    limit: int | None = None,
    track_schedule: bool = True,
    collect_stats: bool = False,
    ctx: SolveContext | None = None,
) -> DPResult:
    """Alg. 2 as an iterative row-major sweep of the complete DP table.

    Every state scans the full configuration list (cost ``|C|`` per entry,
    matching the paper's complexity accounting).  ``limit`` only affects
    the *returned* value — the faithful engine still fills the whole
    table, as the paper's algorithm does.
    """
    ctx = ctx if ctx is not None else DEFAULT_CONTEXT
    if not problem.counts:
        return _empty_result("table", collect_stats)
    dims = problem.dims
    strides = problem.strides()
    sigma = problem.table_size
    configs = _enumerate_traced(problem, ctx)
    cfg_offsets = [
        (cfg, sum(s * st for s, st in zip(cfg, strides))) for cfg in configs.configs
    ]
    table: list[int | None] = [None] * sigma
    table[0] = 0
    # Odometer over count vectors in row-major order.
    v = [0] * len(dims)
    scans = 0
    for flat in range(1, sigma):
        # increment odometer (last axis fastest)
        for c in range(len(dims) - 1, -1, -1):
            if v[c] + 1 < dims[c]:
                v[c] += 1
                break
            v[c] = 0
        best: int | None = None
        for cfg, offset in cfg_offsets:
            scans += 1
            ok = True
            for c in range(len(cfg)):
                if cfg[c] > v[c]:
                    ok = False
                    break
            if not ok:
                continue
            prev = table[flat - offset]
            if prev is not None and (best is None or prev < best):
                best = prev
        table[flat] = None if best is None else best + 1
    opt = table[sigma - 1]
    if opt is None:  # pragma: no cover - always feasible (singleton configs)
        raise AssertionError("DP table ended infeasible; singleton configs missing?")
    stats = None
    if collect_stats:
        level_sizes = _level_sizes(problem)
        stats = DPStats(
            sigma=sigma,
            num_levels=len(level_sizes),
            level_sizes=level_sizes,
            num_configs=len(configs),
            states_computed=sigma,
            config_scans=scans,
        )
    if limit is not None and opt > limit:
        return DPResult(opt=None, engine="table", stats=stats)
    machine_configs: tuple[tuple[int, ...], ...] = ()
    if track_schedule:
        with ctx.span("backtrack", engine="table"):
            machine_configs = backtrack_schedule(lambda i: table[i], problem, configs)
    return DPResult(opt=opt, machine_configs=machine_configs, engine="table", stats=stats)


def _level_sizes(problem: DPProblem) -> tuple[int, ...]:
    """``q_l`` for every anti-diagonal ``l = 0..n'`` via a small
    convolution (no need to enumerate states)."""
    poly = np.ones(1, dtype=np.int64)
    for count in problem.counts:
        poly = np.convolve(poly, np.ones(count + 1, dtype=np.int64))
    return tuple(int(x) for x in poly)


# ---------------------------------------------------------------------------
# Engine: memoized recursion (literal Eq. 4)
# ---------------------------------------------------------------------------

def solve_memo(
    problem: DPProblem,
    *,
    limit: int | None = None,
    track_schedule: bool = True,
    collect_stats: bool = False,
    ctx: SolveContext | None = None,
) -> DPResult:
    """Top-down transcription of Eq. 4 with memoization.

    Only intended as a readable oracle for tests; recursion depth grows
    with the number of long jobs, so inputs must stay small.
    """
    ctx = ctx if ctx is not None else DEFAULT_CONTEXT
    if not problem.counts:
        return _empty_result("memo", collect_stats)
    configs = _enumerate_traced(problem, ctx)
    memo: dict[tuple[int, ...], int] = {}
    scans = 0

    import sys

    need_depth = problem.num_long_jobs * 2 + 64
    old_limit = sys.getrecursionlimit()
    if old_limit < need_depth:
        sys.setrecursionlimit(need_depth)

    def opt(v: tuple[int, ...]) -> int:
        nonlocal scans
        if not any(v):
            return 0
        cached = memo.get(v)
        if cached is not None:
            return cached
        best: int | None = None
        for cfg in configs.configs:
            scans += 1
            if all(s <= vc for s, vc in zip(cfg, v)):
                sub = opt(tuple(vc - s for vc, s in zip(v, cfg)))
                if best is None or sub < best:
                    best = sub
        assert best is not None, "singleton configurations guarantee feasibility"
        memo[v] = best + 1
        return best + 1

    try:
        value = opt(problem.counts)
    finally:
        sys.setrecursionlimit(old_limit)
    stats = None
    if collect_stats:
        level_sizes = _level_sizes(problem)
        stats = DPStats(
            sigma=problem.table_size,
            num_levels=len(level_sizes),
            level_sizes=level_sizes,
            num_configs=len(configs),
            states_computed=len(memo) + 1,
            config_scans=scans,
        )
    if limit is not None and value > limit:
        return DPResult(opt=None, engine="memo", stats=stats)
    machine_configs: tuple[tuple[int, ...], ...] = ()
    if track_schedule:
        strides = problem.strides()

        def lookup(flat: int) -> int | None:
            vec = unrank(flat, problem.dims, strides)
            if not any(vec):
                return 0
            return memo.get(vec)

        with ctx.span("backtrack", engine="memo"):
            machine_configs = backtrack_schedule(lookup, problem, configs)
    return DPResult(opt=value, machine_configs=machine_configs, engine="memo", stats=stats)


# ---------------------------------------------------------------------------
# Engine: forward BFS on exact sums ("frontier")
# ---------------------------------------------------------------------------

def solve_frontier(
    problem: DPProblem,
    *,
    limit: int | None = None,
    track_schedule: bool = True,
    collect_stats: bool = False,
    ctx: SolveContext | None = None,
) -> DPResult:
    """Breadth-first search from the zero vector, one machine per step.

    The first time a vector ``v`` is reached, the BFS depth equals
    ``OPT(v)`` (all edges have unit cost).  The search never leaves the
    box ``0 <= v <= N`` and stops as soon as ``N`` is popped, or once the
    depth would exceed ``limit``.
    """
    ctx = ctx if ctx is not None else DEFAULT_CONTEXT
    if not problem.counts:
        return _empty_result("frontier", collect_stats)
    configs = _enumerate_traced(problem, ctx)
    target_vec = problem.counts
    depth_of: dict[tuple[int, ...], int] = {tuple([0] * len(target_vec)): 0}
    parent: dict[tuple[int, ...], tuple[tuple[int, ...], tuple[int, ...]]] = {}
    frontier: list[tuple[int, ...]] = [tuple([0] * len(target_vec))]
    depth = 0
    scans = 0
    found = target_vec in depth_of
    while frontier and not found and (limit is None or depth < limit):
        depth += 1
        next_frontier: list[tuple[int, ...]] = []
        for v in frontier:
            for cfg in configs.configs:
                scans += 1
                w = tuple(vc + s for vc, s in zip(v, cfg))
                if any(wc > nc for wc, nc in zip(w, target_vec)):
                    continue
                if w in depth_of:
                    continue
                depth_of[w] = depth
                parent[w] = (v, cfg)
                next_frontier.append(w)
                if w == target_vec:
                    found = True
        frontier = next_frontier
    stats = None
    if collect_stats:
        level_sizes = _level_sizes(problem)
        stats = DPStats(
            sigma=problem.table_size,
            num_levels=len(level_sizes),
            level_sizes=level_sizes,
            num_configs=len(configs),
            states_computed=len(depth_of),
            config_scans=scans,
        )
    if target_vec not in depth_of:
        return DPResult(opt=None, engine="frontier", stats=stats)
    opt = depth_of[target_vec]
    if limit is not None and opt > limit:
        return DPResult(opt=None, engine="frontier", stats=stats)
    machine_configs: tuple[tuple[int, ...], ...] = ()
    if track_schedule:
        chain: list[tuple[int, ...]] = []
        v = target_vec
        while any(v):
            v, cfg = parent[v]
            chain.append(cfg)
        machine_configs = tuple(chain)
    return DPResult(
        opt=opt, machine_configs=machine_configs, engine="frontier", stats=stats
    )


# ---------------------------------------------------------------------------
# Engine: dominance-pruned cover with maximal configurations
# ---------------------------------------------------------------------------

def _prune_dominated(vectors: Iterable[tuple[int, ...]]) -> list[tuple[int, ...]]:
    """Keep only the Pareto-maximal vectors (componentwise order)."""
    vs = sorted(set(vectors), key=lambda v: (-sum(v), v))
    kept: list[tuple[int, ...]] = []
    for v in vs:
        if not any(all(kc >= vc for kc, vc in zip(k, v)) for k in kept):
            kept.append(v)
    return kept


def _trim_cover_to_exact(
    cover: Sequence[tuple[int, ...]], counts: Sequence[int]
) -> tuple[tuple[int, ...], ...]:
    """Remove surplus jobs from a componentwise cover so the configurations
    sum to exactly ``counts``.

    Dropping jobs from a configuration keeps it feasible (sizes are
    positive), so the trimmed multiset is a valid exact packing.
    """
    trimmed = [list(cfg) for cfg in cover]
    for c in range(len(counts)):
        surplus = sum(cfg[c] for cfg in trimmed) - counts[c]
        if surplus < 0:  # pragma: no cover - cover precondition guard
            raise AssertionError("cover does not cover counts")
        for cfg in trimmed:
            if surplus == 0:
                break
            take = min(cfg[c], surplus)
            cfg[c] -= take
            surplus -= take
    return tuple(tuple(cfg) for cfg in trimmed if any(cfg))


def solve_dominance(
    problem: DPProblem,
    *,
    limit: int | None = None,
    track_schedule: bool = True,
    collect_stats: bool = False,
    ctx: SolveContext | None = None,
) -> DPResult:
    """Optimized engine: cover formulation + Pareto pruning.

    ``N`` can be packed into ``l`` machines iff ``l`` *maximal*
    configurations can componentwise cover ``N`` (surplus jobs are simply
    dropped).  The set of vectors coverable with ``l`` machines is
    represented by its Pareto-maximal elements only, clamped to the box
    ``<= N``; this keeps the per-step state tiny compared to the full DP
    table.
    """
    ctx = ctx if ctx is not None else DEFAULT_CONTEXT
    if not problem.counts:
        return _empty_result("dominance", collect_stats)
    configs = _enumerate_traced(problem, ctx, maximal=True)
    target_vec = problem.counts
    zero = tuple([0] * len(target_vec))
    frontier: list[tuple[int, ...]] = [zero]
    parent: dict[tuple[int, ...], tuple[tuple[int, ...], tuple[int, ...]]] = {}
    seen_best: dict[tuple[int, ...], int] = {zero: 0}
    depth = 0
    scans = 0
    states_total = 1
    found = target_vec == zero
    max_depth = problem.num_long_jobs if limit is None else min(
        limit, problem.num_long_jobs
    )
    while not found and depth < max_depth:
        depth += 1
        candidates: list[tuple[int, ...]] = []
        for v in frontier:
            for cfg in configs.configs:
                scans += 1
                w = tuple(min(vc + s, nc) for vc, s, nc in zip(v, cfg, target_vec))
                if w == v:
                    continue
                if w not in parent:
                    parent[w] = (v, cfg)
                candidates.append(w)
        frontier = _prune_dominated(candidates)
        states_total += len(frontier)
        if any(v == target_vec for v in frontier):
            found = True
    stats = None
    if collect_stats:
        level_sizes = _level_sizes(problem)
        stats = DPStats(
            sigma=problem.table_size,
            num_levels=len(level_sizes),
            level_sizes=level_sizes,
            num_configs=len(configs),
            states_computed=states_total,
            config_scans=scans,
        )
    if not found:
        return DPResult(opt=None, engine="dominance", stats=stats)
    opt = depth
    machine_configs: tuple[tuple[int, ...], ...] = ()
    if track_schedule:
        chain: list[tuple[int, ...]] = []
        v = target_vec
        while v != zero:
            v, cfg = parent[v]
            chain.append(cfg)
        machine_configs = _trim_cover_to_exact(chain, target_vec)
    return DPResult(
        opt=opt, machine_configs=machine_configs, engine="dominance", stats=stats
    )


# ---------------------------------------------------------------------------
# Engine: numpy-vectorized anti-diagonal sweep
# ---------------------------------------------------------------------------

def solve_numpy(
    problem: DPProblem,
    *,
    limit: int | None = None,
    track_schedule: bool = True,
    collect_stats: bool = False,
    ctx: SolveContext | None = None,
) -> DPResult:
    """Level-synchronous sweep with numpy: all states of one anti-diagonal
    are updated at once by the shared :class:`~repro.core.kernels.LevelKernel`,
    one vectorized pass per configuration.

    This is the data-parallel formulation of the paper's wavefront: the
    "processors" are SIMD lanes instead of cores, but the dependency
    structure exploited is identical.  The same kernel is the compute
    core of every backend in :mod:`repro.core.parallel_dp`.
    """
    ctx = ctx if ctx is not None else DEFAULT_CONTEXT
    if not problem.counts:
        return _empty_result("numpy", collect_stats)
    sigma = problem.table_size
    configs = _enumerate_traced(problem, ctx)
    kernel = LevelKernel.for_problem(problem, configs)
    table = kernel.allocate_table(sigma)
    kernel.sweep(table, build_level_arrays(problem.dims))
    # One vectorized pass per configuration over every non-origin state.
    scans = len(configs) * (sigma - 1)
    opt_val = table_opt(table, sigma - 1)
    assert opt_val is not None, (
        "DP must be feasible (singleton configurations exist)"
    )
    stats = None
    if collect_stats:
        level_sizes = _level_sizes(problem)
        stats = DPStats(
            sigma=sigma,
            num_levels=len(level_sizes),
            level_sizes=level_sizes,
            num_configs=len(configs),
            states_computed=sigma,
            config_scans=scans,
        )
    if limit is not None and opt_val > limit:
        return DPResult(opt=None, engine="numpy", stats=stats)
    machine_configs: tuple[tuple[int, ...], ...] = ()
    if track_schedule:
        with ctx.span("backtrack", engine="numpy"):
            machine_configs = backtrack_schedule(
                lambda i: table_opt(table, i), problem, configs
            )
    return DPResult(
        opt=opt_val, machine_configs=machine_configs, engine="numpy", stats=stats
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def _solve_config_ilp_lazy(problem: "DPProblem", **kwargs: object) -> DPResult:
    """Registry shim for the configuration-IP engine (lazy import keeps
    :mod:`repro.core.dp` free of a scipy dependency at import time)."""
    from repro.core.dp_ilp import solve_config_ilp

    return solve_config_ilp(problem, **kwargs)  # type: ignore[arg-type]


SEQUENTIAL_ENGINES: dict[str, Callable[..., DPResult]] = {
    "table": solve_table,
    "memo": solve_memo,
    "frontier": solve_frontier,
    "dominance": solve_dominance,
    "numpy": solve_numpy,
    "config-ilp": _solve_config_ilp_lazy,
}


def solve(
    problem: DPProblem,
    engine: str = "dominance",
    *,
    limit: int | None = None,
    track_schedule: bool = True,
    collect_stats: bool = False,
    ctx: SolveContext | None = None,
) -> DPResult:
    """Dispatch to a sequential DP engine by name.

    When ``ctx`` carries a live tracer the engine call is wrapped in a
    ``dp`` span tagged with the engine name and ``sigma``, and the engine
    itself adds ``enumerate`` / ``backtrack`` child spans.

    >>> p = DPProblem((6, 11), (2, 3), 30)
    >>> solve(p, "table").opt
    2
    """
    try:
        fn = SEQUENTIAL_ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown DP engine {engine!r}; available: "
            f"{sorted(SEQUENTIAL_ENGINES)}"
        ) from None
    ctx = ctx if ctx is not None else DEFAULT_CONTEXT
    with ctx.span("dp", engine=engine, sigma=problem.table_size) as sp:
        result = fn(
            problem,
            limit=limit,
            track_schedule=track_schedule,
            collect_stats=collect_stats,
            ctx=ctx,
        )
        sp.set(opt=result.opt)
    return result
