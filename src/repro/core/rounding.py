"""Long/short split and rounding of long jobs (Alg. 1, lines 9–24).

Given a target makespan ``T`` and ``k = ceil(1/eps)``:

* a job is **short** when ``t <= T/k`` and **long** otherwise;
* every long job's processing time is rounded **down** to the nearest
  multiple of ``unit = ceil(T / k^2)``, i.e. to ``(t // unit) * unit``;
* the rounded long jobs form at most ``k^2`` size classes; class ``i``
  (``1 <= i <= k^2``) holds the jobs of rounded size ``i * unit``, and the
  vector ``N = (n_1, ..., n_{k^2})`` of class counts is the input of the
  dynamic program.

Because most classes are empty for realistic instances, the DP operates
on the *compressed* representation produced here — only the classes with
``n_i > 0`` — which changes nothing semantically (empty dimensions of the
DP table have extent 1) but keeps the table as small as the instance
allows.

Rounding error accounting: a long job satisfies ``t > T/k >= k * (unit-1)
>= ...``, and its rounded size differs from ``t`` by less than ``unit <=
T/k^2 + 1``.  A machine receives fewer than ``k + 1`` long jobs within a
rounded budget of ``T`` (each rounded long job is larger than ``T/k -
unit``), so un-rounding inflates a machine's load by at most ``~ k * unit
~ T/k`` — this is the source of the ``(1 + 1/k) T`` guarantee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model.instance import Instance


@dataclass(frozen=True)
class RoundedInstance:
    """The compressed rounded view of an instance at target makespan ``T``.

    Attributes
    ----------
    target:
        The target makespan ``T`` of this bisection iteration.
    k:
        Accuracy parameter ``k = ceil(1/eps)``.
    unit:
        Rounding quantum ``ceil(T / k^2)``.
    class_sizes:
        Rounded size of each *non-empty* class, ascending.  Entry ``c`` is
        ``i_c * unit`` for the class index ``i_c`` of Alg. 1.
    class_counts:
        ``N`` restricted to non-empty classes; ``class_counts[c]`` long
        jobs have rounded size ``class_sizes[c]``.
    class_members:
        For reconstruction: ``class_members[c]`` is the tuple of original
        job indices whose rounded size is ``class_sizes[c]``, in input
        order.
    short_jobs:
        Original indices of the short jobs (``t <= T/k``).
    """

    target: int
    k: int
    unit: int
    class_sizes: tuple[int, ...]
    class_counts: tuple[int, ...]
    class_members: tuple[tuple[int, ...], ...]
    short_jobs: tuple[int, ...]

    @property
    def num_classes(self) -> int:
        """Number of non-empty rounded size classes (``d`` in the docs)."""
        return len(self.class_sizes)

    @property
    def num_long_jobs(self) -> int:
        """``n'`` — total count of long jobs (= number of DP anti-diagonals
        minus one)."""
        return sum(self.class_counts)

    @property
    def table_size(self) -> int:
        """``sigma = prod(n_i + 1)`` — number of entries of the DP table."""
        size = 1
        for c in self.class_counts:
            size *= c + 1
        return size

    def full_vector(self) -> tuple[int, ...]:
        """The uncompressed ``k^2``-dimensional vector ``N`` of Alg. 1.

        Provided for fidelity checks against the paper's notation; all
        computation uses the compressed form.
        """
        n = [0] * (self.k * self.k)
        for size, count in zip(self.class_sizes, self.class_counts):
            index = size // self.unit
            n[index - 1] = count
        return tuple(n)


def accuracy_parameter(eps: float) -> int:
    """``k = ceil(1/eps)`` (Alg. 1, line 4).

    ``eps`` must be positive; values ``>= 1`` give ``k = 1``, for which
    every job is short and the PTAS degenerates to plain LPT.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    return math.ceil(1.0 / eps)


def rounding_unit(target: int, k: int) -> int:
    """The quantum ``ceil(T / k^2)`` long jobs are rounded down to."""
    if target < 1:
        raise ValueError(f"target makespan must be >= 1, got {target}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return math.ceil(target / (k * k))


def is_long(t: int, target: int, k: int) -> bool:
    """True iff a job of processing time ``t`` is *long* at target ``T``:
    ``t > T/k`` (Alg. 1, lines 10–13, strict comparison)."""
    return t * k > target


def rounded_size(t: int, unit: int) -> int:
    """Round ``t`` down to the nearest multiple of ``unit``
    (Alg. 1, lines 15–18: the ``i`` with ``i*unit <= t < (i+1)*unit``)."""
    return (t // unit) * unit


def round_instance(instance: Instance, target: int, k: int) -> RoundedInstance:
    """Perform the complete split + rounding for one bisection iteration.

    Returns the compressed :class:`RoundedInstance`.  Raises
    ``ValueError`` when some job exceeds the target — the bisection driver
    never lets that happen because ``LB >= max t``, but direct callers may.
    """
    unit = rounding_unit(target, k)
    per_class: dict[int, list[int]] = {}
    short: list[int] = []
    for j, t in enumerate(instance.processing_times):
        if t > target:
            raise ValueError(
                f"job {j} (t={t}) exceeds the target makespan T={target}; "
                "no schedule can fit it"
            )
        if is_long(t, target, k):
            per_class.setdefault(rounded_size(t, unit), []).append(j)
        else:
            short.append(j)
    sizes = sorted(per_class)
    for size in sizes:
        # Long jobs have t > T/k >= unit * k / k ... ensure rounding kept a
        # positive class index; guaranteed for k >= 2 and trivially absent
        # for k == 1 (no long jobs).  Defensive check only.
        if size <= 0:
            raise AssertionError(
                "rounded size of a long job must be positive; "
                f"got {size} (T={target}, k={k}, unit={unit})"
            )
    return RoundedInstance(
        target=target,
        k=k,
        unit=unit,
        class_sizes=tuple(sizes),
        class_counts=tuple(len(per_class[s]) for s in sizes),
        class_members=tuple(tuple(per_class[s]) for s in sizes),
        short_jobs=tuple(short),
    )
