"""Machine-configuration enumeration (Eq. 3).

A *machine configuration* is a vector ``s = (s_1, ..., s_d)`` stating how
many rounded long jobs of each class a single machine executes, subject
to the capacity constraint

    sum_c class_sizes[c] * s[c]  <=  T.

The DP recurrence (Eq. 4) subtracts configurations from the remaining job
vector, so the enumeration is also bounded componentwise by the job
counts ``N`` (a machine cannot run more jobs of a class than exist).

Because every rounded long-job size exceeds roughly ``T/k``, a feasible
configuration contains at most about ``k`` jobs, so the configuration set
is small (polynomial in ``k`` for fixed ``d``) even when the DP table is
huge — exactly the property the Hochbaum–Shmoys analysis uses.

Two enumerations are provided:

* :func:`enumerate_configurations` — all non-zero feasible configurations
  (what Alg. 2/3 call ``C``); used by the faithful DP engines.
* :func:`enumerate_maximal_configurations` — only the configurations to
  which no further job can be added.  Sufficient for the *cover*
  formulation used by the optimized dominance engine (any machine can
  drop jobs from a maximal configuration), and typically far fewer.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Sequence


@dataclass(frozen=True)
class ConfigurationSet:
    """All feasible machine configurations for one DP invocation.

    Attributes
    ----------
    class_sizes:
        Rounded size of each class (ascending, matching
        :class:`~repro.core.rounding.RoundedInstance`).
    target:
        The capacity ``T`` every configuration must respect.
    configs:
        Non-zero feasible configurations, each a tuple of per-class
        counts.  Deterministically ordered (lexicographic).
    weights:
        ``weights[i]`` is the total rounded load of ``configs[i]``.
    """

    class_sizes: tuple[int, ...]
    target: int
    configs: tuple[tuple[int, ...], ...]
    weights: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.configs)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self.configs)

    def fits(self, config: Sequence[int]) -> bool:
        """Check Eq. (3) for an arbitrary vector against this capacity."""
        weight = sum(s * size for s, size in zip(config, self.class_sizes))
        return weight <= self.target


def _enumerate(
    class_sizes: tuple[int, ...],
    caps: tuple[int, ...],
    target: int,
    max_jobs: int | None,
) -> list[tuple[int, ...]]:
    """DFS over per-class counts, pruning by remaining capacity.

    Classes are visited in order; since sizes are positive the remaining
    budget shrinks monotonically, so the recursion never explores an
    infeasible prefix.  ``max_jobs`` additionally bounds the total count
    (the integral-rounding guarantee fix; see ``enumerate_configurations``).
    """
    d = len(class_sizes)
    out: list[tuple[int, ...]] = []
    current = [0] * d

    def recurse(c: int, budget: int, jobs_left: int) -> None:
        if c == d:
            out.append(tuple(current))
            return
        size = class_sizes[c]
        limit = min(caps[c], budget // size, jobs_left)
        for count in range(limit + 1):
            current[c] = count
            recurse(c + 1, budget - count * size, jobs_left - count)
        current[c] = 0

    recurse(0, target, target if max_jobs is None else max_jobs)
    return out


@lru_cache(maxsize=4096)
def _enumerate_cached(
    class_sizes: tuple[int, ...],
    caps: tuple[int, ...],
    target: int,
    max_jobs: int | None,
) -> tuple[tuple[int, ...], ...]:
    return tuple(_enumerate(class_sizes, caps, target, max_jobs))


def enumerate_configurations(
    class_sizes: Sequence[int],
    caps: Sequence[int],
    target: int,
    include_zero: bool = False,
    max_jobs: int | None = None,
) -> ConfigurationSet:
    """All configurations ``0 <= s <= caps`` with weight ``<= target``.

    The zero configuration means "assign nothing to this machine"; the DP
    recurrence excludes it (Alg. 3, line 17 note), so it is dropped unless
    ``include_zero`` is set.

    ``max_jobs`` caps the *total* job count of a configuration.  The paper
    (Eq. 3) constrains weight only, but with integer rounding a long job
    can round below ``T/k``, letting a weight-only configuration carry so
    many long jobs that un-rounding overshoots the ``(1 + 1/k) T``
    guarantee.  Any true schedule of makespan ``<= T`` places at most
    ``k - 1`` long jobs per machine (each exceeds ``T/k`` strictly), so
    passing ``max_jobs = k - 1`` is lossless for the decision and restores
    the guarantee — see ``docs/algorithm.md`` ("the integrality gap").

    >>> cs = enumerate_configurations([6, 11], caps=[2, 3], target=30)
    >>> cs.configs
    ((0, 1), (0, 2), (1, 0), (1, 1), (1, 2), (2, 0), (2, 1))
    >>> enumerate_configurations([6, 11], caps=[2, 3], target=30, max_jobs=1).configs
    ((0, 1), (1, 0))
    """
    sizes = tuple(int(s) for s in class_sizes)
    caps_t = tuple(int(c) for c in caps)
    if len(sizes) != len(caps_t):
        raise ValueError("class_sizes and caps must have equal length")
    for s in sizes:
        if s <= 0:
            raise ValueError(f"class sizes must be positive, got {s}")
    for c in caps_t:
        if c < 0:
            raise ValueError(f"caps must be non-negative, got {c}")
    if target < 0:
        raise ValueError(f"target must be non-negative, got {target}")
    if max_jobs is not None and max_jobs < 0:
        raise ValueError(f"max_jobs must be non-negative, got {max_jobs}")
    all_configs = _enumerate_cached(sizes, caps_t, int(target), max_jobs)
    if not include_zero:
        all_configs = tuple(cfg for cfg in all_configs if any(cfg))
    weights = tuple(
        sum(count * size for count, size in zip(cfg, sizes)) for cfg in all_configs
    )
    return ConfigurationSet(sizes, int(target), all_configs, weights)


def is_maximal(
    config: Sequence[int],
    class_sizes: Sequence[int],
    caps: Sequence[int],
    target: int,
    max_jobs: int | None = None,
) -> bool:
    """True iff no class count of ``config`` can be incremented without
    violating its cap, the capacity ``target``, or the ``max_jobs``
    bound."""
    weight = sum(s * size for s, size in zip(config, class_sizes))
    if weight > target:
        return False
    total = sum(config)
    if max_jobs is not None and total > max_jobs:
        return False
    if max_jobs is not None and total == max_jobs:
        return True
    for c, (count, cap) in enumerate(zip(config, caps)):
        if count < cap and weight + class_sizes[c] <= target:
            return False
    return True


def enumerate_maximal_configurations(
    class_sizes: Sequence[int],
    caps: Sequence[int],
    target: int,
    max_jobs: int | None = None,
) -> ConfigurationSet:
    """Only the Pareto-maximal feasible configurations.

    A configuration is maximal when no job of any class can be added.  In
    the *cover* relaxation (machines may under-fill a configuration), a
    multiset of machines can pack ``N`` iff some choice of maximal
    configurations componentwise-covers ``N``, so restricting the search
    to maximal configurations is lossless there.
    """
    full = enumerate_configurations(
        class_sizes, caps, target, include_zero=True, max_jobs=max_jobs
    )
    keep = [
        (cfg, w)
        for cfg, w in zip(full.configs, full.weights)
        if any(cfg) and is_maximal(cfg, full.class_sizes, caps, target, max_jobs)
    ]
    return ConfigurationSet(
        full.class_sizes,
        full.target,
        tuple(cfg for cfg, _ in keep),
        tuple(w for _, w in keep),
    )


def configuration_count_bound(k: int, num_classes: int) -> int:
    """Loose analytic bound on ``|C|`` used in the paper's complexity
    discussion: at most ``k`` long jobs fit in a machine, spread over
    ``num_classes`` classes, giving ``<= (num_classes + 1)^k`` choices."""
    return (num_classes + 1) ** max(k, 1)
