"""Public entry points: the sequential PTAS and its parallel version.

:func:`ptas` is Algorithm 1 — bounds, bisection over targets, rounded DP,
reconstruction, LPT fill — with a pluggable sequential DP engine.
:func:`parallel_ptas` is the paper's contribution: the identical driver
with the DP replaced by the wavefront Parallel DP (Alg. 3) on a chosen
backend.  Both return a :class:`PTASResult` carrying the schedule, the
certified target, the bisection trace and (for the simulated backend) the
multicore cost accounting used by the speedup experiments.

Guarantee: the returned makespan is at most ``(1 + eps)`` times optimal
(Hochbaum & Shmoys); the parallel version computes the *same* schedule as
the sequential one, so it inherits the guarantee verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.bisection import BisectionOutcome, bisect_target_makespan
from repro.core.context import SolveContext, resolve_context
from repro.core.dp import DPProblem, DPResult, solve
from repro.core.parallel_dp import BACKENDS, EXECUTOR_BACKENDS, parallel_dp
from repro.core.rounding import accuracy_parameter
from repro.model.instance import Instance
from repro.model.schedule import Schedule
from repro.core.reconstruct import build_schedule
from repro.parallel.executor import make_executor
from repro.simcore.costmodel import CostModel
from repro.simcore.machine import SimulatedMachine

#: Backends whose probes run through a pooled executor; the driver owns
#: one persistent (reusable) pool for the whole bisection.
_POOLED_BACKENDS = ("thread", "process")


@dataclass(frozen=True)
class PTASResult:
    """Outcome of a (parallel) PTAS run."""

    schedule: Schedule
    eps: float
    k: int
    final_target: int
    outcome: BisectionOutcome
    dp_engine: str
    num_workers: int = 1
    machine: SimulatedMachine | None = None

    @property
    def makespan(self) -> int:
        return self.schedule.makespan

    @property
    def num_bisection_iterations(self) -> int:
        return self.outcome.num_iterations

    @property
    def guarantee_factor(self) -> float:
        """The a-priori approximation factor ``1 + eps`` of the scheme."""
        return 1.0 + self.eps

    @property
    def simulated_speedup(self) -> float | None:
        """Simulated multicore speedup (only for the simulated backend)."""
        if self.machine is None:
            return None
        return self.machine.speedup


def _effective_job_cap(k: int, guarantee_fix: bool) -> int | None:
    """The per-machine long-job cap ``k - 1`` of the guarantee fix.

    Any schedule of makespan ``<= T`` holds fewer than ``k`` long jobs per
    machine (each strictly exceeds ``T/k``), so the cap never excludes a
    true schedule; it only stops the integral rounding from packing
    machines that would overshoot ``(1 + 1/k) T`` after un-rounding.
    ``None`` reproduces the paper's Eq. 3 verbatim (weight-only).
    """
    if not guarantee_fix or k < 2:
        return None
    return k - 1


def ptas(
    instance: Instance,
    eps: float,
    *,
    engine: str = "dominance",
    collect_stats: bool = False,
    guarantee_fix: bool = True,
    ctx: SolveContext | None = None,
    warm_start: bool | None = None,
    check_deadline: Callable[[], None] | None = None,
) -> PTASResult:
    """Sequential Hochbaum–Shmoys PTAS (Algorithm 1).

    Parameters
    ----------
    instance:
        The ``P || Cmax`` instance (positive integer times).
    eps:
        Relative error; the schedule's makespan is at most
        ``(1 + eps) * OPT``.  The paper's experiments use ``eps = 0.3``.
    engine:
        Sequential DP engine (see :data:`repro.core.dp.SEQUENTIAL_ENGINES`).
        ``"table"`` is the faithful full-table sweep; the default
        ``"dominance"`` is the optimized equivalent engine.
    guarantee_fix:
        Cap machine configurations at ``k - 1`` long jobs (default).  The
        algorithm *as printed* can exceed ``(1 + eps) OPT`` on integral
        instances because a long job may round below ``T/k``; the cap
        restores the proof without excluding any true schedule.  Pass
        ``False`` for the verbatim printed behaviour (what
        :func:`repro.core.reference.algorithm1` implements).
    ctx:
        :class:`~repro.core.context.SolveContext` bundling the
        cross-cutting concerns: deadline hook (checked before every
        bisection probe), warm-start policy (LPT-seeded upper bound +
        rounding reuse, on by default; the certified target and schedule
        are identical either way), tracer (the run is wrapped in a
        ``solve`` span; probes, DP phases and wavefront levels nest
        beneath it) and metrics.  Defaults to
        :data:`~repro.core.context.DEFAULT_CONTEXT`.
    warm_start, check_deadline:
        Deprecated kwarg shims — each emits a :class:`DeprecationWarning`
        and overrides the corresponding ``ctx`` field.  Pass ``ctx=`` in
        new code.

    Examples
    --------
    >>> inst = Instance([7, 7, 6, 6, 5, 4, 4, 3], num_machines=3)
    >>> result = ptas(inst, eps=0.3)
    >>> result.schedule.makespan <= 1.3 * 14
    True
    """
    ctx = resolve_context(
        ctx, warm_start=warm_start, check_deadline=check_deadline, caller="ptas"
    )
    k = accuracy_parameter(eps)

    def solver(problem: DPProblem, m: int) -> DPResult:
        return solve(
            problem,
            engine,
            limit=m,
            track_schedule=True,
            collect_stats=collect_stats,
            ctx=ctx,
        )

    with ctx.span(
        "solve",
        algorithm="ptas",
        engine=engine,
        n=instance.num_jobs,
        m=instance.num_machines,
        eps=eps,
        k=k,
    ) as sp:
        outcome = bisect_target_makespan(
            instance,
            k,
            solver,
            job_cap=_effective_job_cap(k, guarantee_fix),
            ctx=ctx,
        )
        with ctx.span("reconstruct"):
            schedule = build_schedule(
                instance, outcome.rounded, outcome.dp_result.machine_configs
            )
        sp.set(makespan=schedule.makespan, final_target=outcome.final_target)
    return PTASResult(
        schedule=schedule,
        eps=eps,
        k=k,
        final_target=outcome.final_target,
        outcome=outcome,
        dp_engine=engine,
        num_workers=1,
    )


def parallel_ptas(
    instance: Instance,
    eps: float,
    num_workers: int,
    *,
    backend: str = "simulated",
    cost_model: CostModel | None = None,
    collect_stats: bool = False,
    guarantee_fix: bool = True,
    ctx: SolveContext | None = None,
    warm_start: bool | None = None,
    check_deadline: Callable[[], None] | None = None,
) -> PTASResult:
    """Parallel approximation algorithm (paper §III): Algorithm 1 with the
    DP replaced by the wavefront Parallel DP (Alg. 3).

    Parameters
    ----------
    num_workers:
        ``P`` — number of (real or simulated) processors.
    backend:
        ``"serial"`` (reference), ``"numpy-serial"`` (direct kernel
        sweep), ``"thread"`` (shared-memory threads over the vectorized
        kernel; scales on multicore), ``"process"`` (shared-memory worker
        processes), or ``"simulated"`` (deterministic multicore model
        used by the speedup experiments — see DESIGN.md §6).
    ctx:
        :class:`~repro.core.context.SolveContext` carrying deadline hook,
        warm-start policy, tracer and (optionally) an externally owned
        executor for the pooled backends — see :func:`ptas`.  When
        ``ctx.executor`` is set the driver runs every probe on it and
        never closes it.
    warm_start, check_deadline:
        Deprecated kwarg shims (``DeprecationWarning``); pass ``ctx=``.

    For the thread and process backends the driver owns one persistent
    reusable worker pool (``make_executor(..., reuse=True)``) that every
    bisection probe's wavefront runs on, so pool startup and teardown are
    paid once per solve instead of once per probe.

    The returned schedule is identical to :func:`ptas` with
    ``engine="table"`` — parallelization changes execution order within
    anti-diagonals only, never the table contents.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    ctx = resolve_context(
        ctx,
        warm_start=warm_start,
        check_deadline=check_deadline,
        caller="parallel_ptas",
    )
    k = accuracy_parameter(eps)
    machine = (
        SimulatedMachine(num_workers, cost_model or CostModel())
        if backend == "simulated"
        else None
    )
    external = ctx.executor if backend in EXECUTOR_BACKENDS else None
    owns_executor = external is None and backend in _POOLED_BACKENDS
    executor = (
        make_executor(backend, num_workers, reuse=True) if owns_executor else external
    )

    def solver(problem: DPProblem, m: int) -> DPResult:
        return parallel_dp(
            problem,
            num_workers,
            backend,
            limit=m,
            track_schedule=True,
            collect_stats=collect_stats,
            machine=machine,
            cost_model=cost_model,
            executor=executor,
            ctx=ctx,
        )

    try:
        with ctx.span(
            "solve",
            algorithm="parallel-ptas",
            engine=f"parallel-{backend}",
            backend=backend,
            workers=num_workers,
            n=instance.num_jobs,
            m=instance.num_machines,
            eps=eps,
            k=k,
        ) as sp:
            outcome = bisect_target_makespan(
                instance,
                k,
                solver,
                job_cap=_effective_job_cap(k, guarantee_fix),
                ctx=ctx,
            )
            with ctx.span("reconstruct"):
                schedule = build_schedule(
                    instance, outcome.rounded, outcome.dp_result.machine_configs
                )
            sp.set(makespan=schedule.makespan, final_target=outcome.final_target)
    finally:
        if owns_executor and executor is not None:
            executor.close()
    return PTASResult(
        schedule=schedule,
        eps=eps,
        k=k,
        final_target=outcome.final_target,
        outcome=outcome,
        dp_engine=f"parallel-{backend}",
        num_workers=num_workers,
        machine=machine,
    )
