"""Public entry points: the sequential PTAS and its parallel version.

:func:`ptas` is Algorithm 1 — bounds, bisection over targets, rounded DP,
reconstruction, LPT fill — with a pluggable sequential DP engine.
:func:`parallel_ptas` is the paper's contribution: the identical driver
with the DP replaced by the wavefront Parallel DP (Alg. 3) on a chosen
backend.  Both return a :class:`PTASResult` carrying the schedule, the
certified target, the bisection trace and (for the simulated backend) the
multicore cost accounting used by the speedup experiments.

Guarantee: the returned makespan is at most ``(1 + eps)`` times optimal
(Hochbaum & Shmoys); the parallel version computes the *same* schedule as
the sequential one, so it inherits the guarantee verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.core.bisection import BisectionOutcome, bisect_target_makespan
from repro.core.bounds import makespan_bounds
from repro.core.context import SolveContext, resolve_context
from repro.core.dp import DPProblem, DPResult, solve
from repro.core.parallel_dp import BACKENDS, EXECUTOR_BACKENDS, parallel_dp
from repro.core.rounding import accuracy_parameter, round_instance
from repro.core.speculative import speculative_bisect
from repro.model.instance import Instance
from repro.model.schedule import Schedule
from repro.core.reconstruct import build_schedule
from repro.obs.trace import NULL_TRACER
from repro.parallel.executor import make_executor
from repro.parallel.runs import level_sizes_from_dims
from repro.simcore.costmodel import CostModel
from repro.simcore.machine import SimulatedMachine

#: Backends whose probes run through a pooled executor; the driver owns
#: one persistent (reusable) pool for the whole bisection.
_POOLED_BACKENDS = ("thread", "process")

#: Bisection modes of :func:`parallel_ptas`.
#: ``wavefront`` — sequential bisection, every probe's DP parallelized
#: across all ``P`` workers (the paper's design).
#: ``speculative`` — ``g`` independent probe targets per round evaluated
#: concurrently, each probe a serial DP sweep (see
#: :mod:`repro.core.speculative`); right when tables are too narrow for
#: the wavefront to absorb ``P`` workers.
#: ``auto`` — pick per instance: speculative when the widest anti-diagonal
#: of a representative probe cannot keep the workers busy.
MODES = ("wavefront", "speculative", "auto")

#: ``auto`` picks the speculative mode when the widest level of the
#: midpoint probe holds fewer than this many states per worker — below
#: that, per-level chunks are too small for intra-DP parallelism to pay.
_NARROW_STATES_PER_WORKER = 64


@dataclass(frozen=True)
class PTASResult:
    """Outcome of a (parallel) PTAS run."""

    schedule: Schedule
    eps: float
    k: int
    final_target: int
    outcome: BisectionOutcome
    dp_engine: str
    num_workers: int = 1
    machine: SimulatedMachine | None = None
    #: Bisection mode that actually ran (:data:`MODES`, already resolved
    #: when the caller asked for ``auto``); sequential runs report
    #: ``wavefront``.
    mode: str = "wavefront"

    @property
    def makespan(self) -> int:
        return self.schedule.makespan

    @property
    def num_bisection_iterations(self) -> int:
        return self.outcome.num_iterations

    @property
    def guarantee_factor(self) -> float:
        """The a-priori approximation factor ``1 + eps`` of the scheme."""
        return 1.0 + self.eps

    @property
    def simulated_speedup(self) -> float | None:
        """Simulated multicore speedup (only for the simulated backend)."""
        if self.machine is None:
            return None
        return self.machine.speedup


def _effective_job_cap(k: int, guarantee_fix: bool) -> int | None:
    """The per-machine long-job cap ``k - 1`` of the guarantee fix.

    Any schedule of makespan ``<= T`` holds fewer than ``k`` long jobs per
    machine (each strictly exceeds ``T/k``), so the cap never excludes a
    true schedule; it only stops the integral rounding from packing
    machines that would overshoot ``(1 + 1/k) T`` after un-rounding.
    ``None`` reproduces the paper's Eq. 3 verbatim (weight-only).
    """
    if not guarantee_fix or k < 2:
        return None
    return k - 1


def ptas(
    instance: Instance,
    eps: float,
    *,
    engine: str = "dominance",
    collect_stats: bool = False,
    guarantee_fix: bool = True,
    ctx: SolveContext | None = None,
    warm_start: bool | None = None,
    check_deadline: Callable[[], None] | None = None,
) -> PTASResult:
    """Sequential Hochbaum–Shmoys PTAS (Algorithm 1).

    Parameters
    ----------
    instance:
        The ``P || Cmax`` instance (positive integer times).
    eps:
        Relative error; the schedule's makespan is at most
        ``(1 + eps) * OPT``.  The paper's experiments use ``eps = 0.3``.
    engine:
        Sequential DP engine (see :data:`repro.core.dp.SEQUENTIAL_ENGINES`).
        ``"table"`` is the faithful full-table sweep; the default
        ``"dominance"`` is the optimized equivalent engine.
    guarantee_fix:
        Cap machine configurations at ``k - 1`` long jobs (default).  The
        algorithm *as printed* can exceed ``(1 + eps) OPT`` on integral
        instances because a long job may round below ``T/k``; the cap
        restores the proof without excluding any true schedule.  Pass
        ``False`` for the verbatim printed behaviour (what
        :func:`repro.core.reference.algorithm1` implements).
    ctx:
        :class:`~repro.core.context.SolveContext` bundling the
        cross-cutting concerns: deadline hook (checked before every
        bisection probe), warm-start policy (LPT-seeded upper bound +
        rounding reuse, on by default; the certified target and schedule
        are identical either way), tracer (the run is wrapped in a
        ``solve`` span; probes, DP phases and wavefront levels nest
        beneath it) and metrics.  Defaults to
        :data:`~repro.core.context.DEFAULT_CONTEXT`.
    warm_start, check_deadline:
        Deprecated kwarg shims — each emits a :class:`DeprecationWarning`
        and overrides the corresponding ``ctx`` field.  Pass ``ctx=`` in
        new code.

    Examples
    --------
    >>> inst = Instance([7, 7, 6, 6, 5, 4, 4, 3], num_machines=3)
    >>> result = ptas(inst, eps=0.3)
    >>> result.schedule.makespan <= 1.3 * 14
    True
    """
    ctx = resolve_context(
        ctx, warm_start=warm_start, check_deadline=check_deadline, caller="ptas"
    )
    k = accuracy_parameter(eps)

    def solver(problem: DPProblem, m: int) -> DPResult:
        return solve(
            problem,
            engine,
            limit=m,
            track_schedule=True,
            collect_stats=collect_stats,
            ctx=ctx,
        )

    with ctx.span(
        "solve",
        algorithm="ptas",
        engine=engine,
        n=instance.num_jobs,
        m=instance.num_machines,
        eps=eps,
        k=k,
    ) as sp:
        outcome = bisect_target_makespan(
            instance,
            k,
            solver,
            job_cap=_effective_job_cap(k, guarantee_fix),
            ctx=ctx,
        )
        with ctx.span("reconstruct"):
            schedule = build_schedule(
                instance, outcome.rounded, outcome.dp_result.machine_configs
            )
        sp.set(makespan=schedule.makespan, final_target=outcome.final_target)
    return PTASResult(
        schedule=schedule,
        eps=eps,
        k=k,
        final_target=outcome.final_target,
        outcome=outcome,
        dp_engine=engine,
        num_workers=1,
    )


def _choose_mode(
    instance: Instance, k: int, num_workers: int, job_cap: int | None
) -> str:
    """Resolve ``mode="auto"``: speculative when the midpoint probe's
    widest anti-diagonal cannot keep ``P`` workers usefully busy."""
    if num_workers < 2:
        return "wavefront"
    lb = makespan_bounds(instance).lower
    ub = makespan_bounds(instance).upper
    if lb >= ub:
        return "wavefront"
    rounded = round_instance(instance, (lb + ub) // 2, k)
    problem = DPProblem(
        rounded.class_sizes, rounded.class_counts, rounded.target, job_cap=job_cap
    )
    widest = int(level_sizes_from_dims(problem.dims).max())
    if widest < num_workers * _NARROW_STATES_PER_WORKER:
        return "speculative"
    return "wavefront"


def _speculative_parallel_ptas(
    instance: Instance,
    eps: float,
    num_workers: int,
    backend: str,
    branching: int,
    collect_stats: bool,
    guarantee_fix: bool,
    ctx: SolveContext,
) -> PTASResult:
    """The speculative mode: ``branching`` concurrent decision probes per
    bisection round, each a serial numpy DP sweep (the mode exists
    precisely because the tables are too narrow to split *within* a
    probe), certification pipelined behind the rounds.

    Probes run on a thread pool — the kernel releases the GIL inside
    numpy, so concurrent probes scale like the wavefront's thread
    backend — except for ``backend="serial"``, which keeps everything on
    the calling thread (the deterministic reference).  The tracer stays
    on the driver thread throughout (see
    :func:`repro.core.speculative.speculative_bisect`).
    """
    k = accuracy_parameter(eps)
    cap = _effective_job_cap(k, guarantee_fix)
    # Workers must not touch the (thread-unsafe) tracer, and must not
    # inherit a wavefront executor: each probe is one serial DP.
    inner_ctx = replace(ctx, tracer=NULL_TRACER, executor=None)

    def decision_solver(problem: DPProblem, m: int) -> DPResult:
        return parallel_dp(
            problem, 1, "numpy-serial", limit=m, track_schedule=False,
            ctx=inner_ctx,
        )

    def certify_solver(problem: DPProblem, m: int) -> DPResult:
        return parallel_dp(
            problem, 1, "numpy-serial", limit=m, track_schedule=True,
            collect_stats=collect_stats, ctx=inner_ctx,
        )

    probe_backend = "serial" if backend == "serial" else "thread"
    executor = make_executor(
        probe_backend, branching, reuse=probe_backend == "thread"
    )
    try:
        with ctx.span(
            "solve",
            algorithm="parallel-ptas",
            engine=f"parallel-{backend}",
            backend=backend,
            mode="speculative",
            branching=branching,
            workers=num_workers,
            n=instance.num_jobs,
            m=instance.num_machines,
            eps=eps,
            k=k,
        ) as sp:
            outcome = speculative_bisect(
                instance,
                k,
                certify_solver,
                branching,
                job_cap=cap,
                ctx=ctx,
                executor=executor,
                decision_solver=decision_solver,
            )
            with ctx.span("reconstruct"):
                schedule = build_schedule(
                    instance, outcome.rounded, outcome.dp_result.machine_configs
                )
            sp.set(makespan=schedule.makespan, final_target=outcome.final_target)
    finally:
        executor.close()
    return PTASResult(
        schedule=schedule,
        eps=eps,
        k=k,
        final_target=outcome.final_target,
        outcome=outcome,
        dp_engine=f"parallel-{backend}",
        num_workers=num_workers,
        mode="speculative",
    )


def parallel_ptas(
    instance: Instance,
    eps: float,
    num_workers: int,
    *,
    backend: str = "simulated",
    mode: str = "wavefront",
    branching: int | None = None,
    cost_model: CostModel | None = None,
    collect_stats: bool = False,
    guarantee_fix: bool = True,
    ctx: SolveContext | None = None,
    warm_start: bool | None = None,
    check_deadline: Callable[[], None] | None = None,
) -> PTASResult:
    """Parallel approximation algorithm (paper §III): Algorithm 1 with the
    DP replaced by the wavefront Parallel DP (Alg. 3).

    Parameters
    ----------
    num_workers:
        ``P`` — number of (real or simulated) processors.
    backend:
        ``"serial"`` (reference), ``"numpy-serial"`` (direct kernel
        sweep), ``"thread"`` (shared-memory threads over the vectorized
        kernel; scales on multicore), ``"process"`` (shared-memory worker
        processes), or ``"simulated"`` (deterministic multicore model
        used by the speedup experiments — see DESIGN.md §6).
    mode:
        Where the workers go (:data:`MODES`): ``"wavefront"`` puts them
        all inside each probe's DP; ``"speculative"`` spends them across
        ``branching`` concurrent probe targets per bisection round
        (serial/thread/process backends only — the simulated study lives
        in :func:`repro.core.speculative.simulate_speculative_ptas`);
        ``"auto"`` measures the midpoint probe's widest anti-diagonal and
        picks speculative only when it is too narrow to absorb ``P``
        workers.  Both modes certify an equally valid ``(1 + eps)``
        target (feasibility is monotone in the target).
    branching:
        Concurrent probes per speculative round ``g`` (the interval
        shrinks by a factor ``g + 1`` per round); defaults to
        ``num_workers``.
    ctx:
        :class:`~repro.core.context.SolveContext` carrying deadline hook,
        warm-start policy, tracer and (optionally) an externally owned
        executor for the pooled backends — see :func:`ptas`.  When
        ``ctx.executor`` is set the driver runs every probe on it and
        never closes it.
    warm_start, check_deadline:
        Deprecated kwarg shims (``DeprecationWarning``); pass ``ctx=``.

    For the thread and process backends the driver owns one persistent
    reusable worker pool (``make_executor(..., reuse=True)``) that every
    bisection probe's wavefront runs on, so pool startup and teardown are
    paid once per solve instead of once per probe.

    The returned schedule is identical to :func:`ptas` with
    ``engine="table"`` — parallelization changes execution order within
    anti-diagonals only, never the table contents.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {sorted(BACKENDS)}"
        )
    if mode not in MODES:
        raise ValueError(
            f"unknown mode {mode!r}; expected one of {sorted(MODES)}"
        )
    ctx = resolve_context(
        ctx,
        warm_start=warm_start,
        check_deadline=check_deadline,
        caller="parallel_ptas",
    )
    k = accuracy_parameter(eps)
    if mode == "auto":
        mode = (
            _choose_mode(
                instance, k, num_workers, _effective_job_cap(k, guarantee_fix)
            )
            if backend in EXECUTOR_BACKENDS
            else "wavefront"
        )
    if mode == "speculative":
        if backend not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"mode='speculative' requires an executor backend "
                f"{EXECUTOR_BACKENDS}; for the simulated study use "
                "repro.core.speculative.simulate_speculative_ptas"
            )
        return _speculative_parallel_ptas(
            instance,
            eps,
            num_workers,
            backend,
            branching if branching is not None else max(1, num_workers),
            collect_stats,
            guarantee_fix,
            ctx,
        )
    machine = (
        SimulatedMachine(num_workers, cost_model or CostModel())
        if backend == "simulated"
        else None
    )
    external = ctx.executor if backend in EXECUTOR_BACKENDS else None
    owns_executor = external is None and backend in _POOLED_BACKENDS
    executor = (
        make_executor(backend, num_workers, reuse=True) if owns_executor else external
    )

    def solver(problem: DPProblem, m: int) -> DPResult:
        return parallel_dp(
            problem,
            num_workers,
            backend,
            limit=m,
            track_schedule=True,
            collect_stats=collect_stats,
            machine=machine,
            cost_model=cost_model,
            executor=executor,
            ctx=ctx,
        )

    try:
        with ctx.span(
            "solve",
            algorithm="parallel-ptas",
            engine=f"parallel-{backend}",
            backend=backend,
            workers=num_workers,
            n=instance.num_jobs,
            m=instance.num_machines,
            eps=eps,
            k=k,
        ) as sp:
            outcome = bisect_target_makespan(
                instance,
                k,
                solver,
                job_cap=_effective_job_cap(k, guarantee_fix),
                ctx=ctx,
            )
            with ctx.span("reconstruct"):
                schedule = build_schedule(
                    instance, outcome.rounded, outcome.dp_result.machine_configs
                )
            sp.set(makespan=schedule.makespan, final_target=outcome.final_target)
    finally:
        if owns_executor and executor is not None:
            executor.close()
    return PTASResult(
        schedule=schedule,
        eps=eps,
        k=k,
        final_target=outcome.final_target,
        outcome=outcome,
        dp_engine=f"parallel-{backend}",
        num_workers=num_workers,
        machine=machine,
    )
