"""Turning the DP packing into a full schedule (Alg. 1, lines 31–51).

Two steps remain once the bisection has certified a target ``T`` and the
DP has produced one machine configuration per used machine:

1. **Un-rounding** (lines 31–40): each slot of a configuration asks for
   one long job of a given rounded class; we hand it an *original* long
   job of that class (original time in ``[size, size + unit)``).  The
   class queues of :class:`~repro.core.rounding.RoundedInstance` make the
   paper's linear scan an O(1) pop.
2. **Short-job fill** (lines 41–51): the short jobs are sorted by
   non-increasing processing time and each is placed on the machine with
   the currently smallest load (LPT).  The original Hochbaum–Shmoys
   scheme used plain list scheduling here; the paper switches to LPT,
   which improves practical quality without affecting the guarantee, and
   so do we.

Determinism: class queues pop in input order and load ties break toward
the lowest machine index, so reconstruction is a pure function of the DP
output — the property behind the "parallel schedule == sequential
schedule" tests.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.rounding import RoundedInstance
from repro.model.instance import Instance
from repro.model.schedule import Schedule


def expand_long_jobs(
    instance: Instance,
    rounded: RoundedInstance,
    machine_configs: Sequence[Sequence[int]],
) -> list[list[int]]:
    """Replace rounded slots by original long-job indices.

    Returns one job-index list per machine of the instance (machines
    beyond ``len(machine_configs)`` start empty).  Raises when the
    configurations do not sum exactly to the class counts — that would
    mean the DP witness is corrupt.
    """
    m = instance.num_machines
    if len(machine_configs) > m:
        raise ValueError(
            f"DP used {len(machine_configs)} machines but only {m} exist"
        )
    queues = [list(members) for members in rounded.class_members]
    groups: list[list[int]] = [[] for _ in range(m)]
    for machine, cfg in enumerate(machine_configs):
        if len(cfg) != rounded.num_classes:
            raise ValueError(
                f"configuration {cfg!r} has {len(cfg)} classes, expected "
                f"{rounded.num_classes}"
            )
        for c, count in enumerate(cfg):
            if count > len(queues[c]):
                raise ValueError(
                    f"configurations demand more class-{c} jobs than exist"
                )
            for _ in range(count):
                groups[machine].append(queues[c].pop(0))
    leftovers = [q for q in queues if q]
    if leftovers:
        raise ValueError(
            f"configurations do not cover all long jobs; {sum(map(len, leftovers))} left"
        )
    return groups


def fill_short_jobs_lpt(
    instance: Instance,
    groups: list[list[int]],
    short_jobs: Sequence[int],
) -> list[list[int]]:
    """LPT placement of the short jobs onto the partially loaded machines.

    Jobs are processed in non-increasing processing time (ties by index);
    each goes to the machine with the smallest current load (ties by
    machine index) — Alg. 1, lines 41–51.
    """
    t = instance.processing_times
    loads = [sum(t[j] for j in grp) for grp in groups]
    ordered = sorted(short_jobs, key=lambda j: (-t[j], j))
    for j in ordered:
        target = min(range(len(loads)), key=lambda i: (loads[i], i))
        groups[target].append(j)
        loads[target] += t[j]
    return groups


def build_schedule(
    instance: Instance,
    rounded: RoundedInstance,
    machine_configs: Sequence[Sequence[int]],
) -> Schedule:
    """Full reconstruction: un-round the long jobs, then LPT the shorts."""
    groups = expand_long_jobs(instance, rounded, machine_configs)
    groups = fill_short_jobs_lpt(instance, groups, rounded.short_jobs)
    return Schedule(instance, groups)
