"""Core of the reproduction: the Hochbaum–Shmoys PTAS for ``P || Cmax``
and its shared-memory parallelization (Ghalami & Grosu, IPPS 2017).

Module map (mirrors the paper's Algorithm 1/2/3 structure):

* :mod:`repro.core.bounds` — LB/UB on the optimal makespan (Eq. 1–2).
* :mod:`repro.core.rounding` — long/short job split and rounding of long
  jobs into at most ``k^2`` size classes (Alg. 1, lines 9–24).
* :mod:`repro.core.configurations` — enumeration of machine
  configurations (Eq. 3), including the maximal-only variant used by the
  optimized dominance engine.
* :mod:`repro.core.dp` — sequential dynamic-programming engines computing
  ``OPT(N)`` (Alg. 2): faithful full table, memoized recursion, exact-sum
  BFS frontier, dominance-pruned cover, and a numpy-vectorized sweep.
* :mod:`repro.core.parallel_dp` — the paper's contribution (Alg. 3): the
  anti-diagonal wavefront parallel DP with serial / thread / process /
  simulated backends.
* :mod:`repro.core.bisection` — the dual-approximation bisection driver
  over target makespans ``T`` (Alg. 1, lines 5–30).
* :mod:`repro.core.reconstruct` — replacing rounded long jobs by the
  originals and LPT placement of short jobs (Alg. 1, lines 31–51).
* :mod:`repro.core.context` — :class:`SolveContext`, the single object
  carrying deadline / warm-start / tracing / metrics / executor concerns
  through every layer above.
* :mod:`repro.core.ptas` — the public entry points :func:`ptas` and
  :func:`parallel_ptas`.
"""

from repro.core.context import DEFAULT_CONTEXT, SolveContext, resolve_context
from repro.core.ptas import PTASResult, parallel_ptas, ptas

__all__ = [
    "ptas",
    "parallel_ptas",
    "PTASResult",
    "SolveContext",
    "DEFAULT_CONTEXT",
    "resolve_context",
]
