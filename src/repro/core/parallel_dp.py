"""Parallel DP (Alg. 3): the anti-diagonal wavefront over the DP table.

The key structural facts (paper §III):

* the subproblems on one anti-diagonal — states whose component sum
  ``d_i`` equals the level index ``l`` — are mutually independent;
* every dependency of a level-``l`` state lies on a strictly earlier
  anti-diagonal, because subtracting a non-zero configuration strictly
  decreases the component sum.

So the table is filled level by level (``l = 0 .. n'``); within a level
the states are assigned to ``P`` processors round-robin and computed in
parallel, with a barrier between levels.  Every backend runs the same
compute core — the vectorized :class:`~repro.core.kernels.LevelKernel` —
against one ``int64`` table, so the recurrence is implemented exactly
once and all backends are bit-identical by construction.

Backends
--------
``serial``
    The wavefront order executed by one worker through the executor
    machinery (still partitions into ``P`` chunks) — the reference every
    other backend is diffed against.
``numpy-serial``
    Direct kernel sweep, one vectorized pass per anti-diagonal with no
    executor or partitioning overhead — the fastest single-worker path
    and the reference the benchmarks normalize against.
``thread``
    Shared-memory threads over the one numpy table (the faithful OpenMP
    analogue).  The kernel releases the GIL inside numpy array ops, so
    threads scale on multicore hosts instead of serializing.
``process``
    Worker processes attached to one ``multiprocessing.shared_memory``
    block holding the table; each level ships only the flat indices of
    its chunk.  Pool workers cache the probe's kernel and table mapping
    on first touch, so a persistent pool (see
    :func:`repro.parallel.executor.make_executor`) pays attachment once
    per probe, not per level.
``simulated``
    Serial execution plus deterministic cost accounting on a
    :class:`~repro.simcore.machine.SimulatedMachine` — the testbed
    substitute used by the speedup experiments (DESIGN.md §6).

All backends produce exactly the same table, hence the same ``OPT(N)``
and the same reconstructed machine configurations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.context import DEFAULT_CONTEXT, SolveContext
from repro.core.dp import (
    DPProblem,
    DPResult,
    DPStats,
    _enumerate_traced,
    backtrack_schedule,
)
from repro.core.kernels import (
    LevelKernel,
    build_level_arrays,
    table_opt,
)
from repro.parallel.executor import Executor, make_executor
from repro.parallel.partition import round_robin_partition
from repro.simcore.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.simcore.machine import SimulatedMachine

BACKENDS = ("serial", "numpy-serial", "thread", "process", "simulated")

#: Backends that execute through an :class:`~repro.parallel.executor.Executor`
#: and therefore accept an externally owned (persistent) one.
EXECUTOR_BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True, eq=False)
class LevelIndex:
    """Flat state indices of every anti-diagonal, in row-major order.

    ``levels[l]`` is the ``int64`` index array of DP-table entries with
    component sum ``l`` — the materialized form of Alg. 3's ``D`` array
    plus the per-level grouping its main loop performs with the
    ``d_i = l`` test.  Levels stay numpy arrays end-to-end (partitioned
    by strided slicing, consumed by the vectorized kernel) — no
    per-state boxing into Python ints.
    """

    levels: tuple[np.ndarray, ...]

    @property
    def num_levels(self) -> int:
        """Number of anti-diagonals (``n' + 1``)."""
        return len(self.levels)

    @property
    def sizes(self) -> tuple[int, ...]:
        """``q_l`` for every level."""
        return tuple(len(lv) for lv in self.levels)


def build_level_index(problem: DPProblem) -> LevelIndex:
    """Group all ``sigma`` states by anti-diagonal (vectorized)."""
    return LevelIndex(build_level_arrays(problem.dims))


# ---------------------------------------------------------------------------
# Process backend: shared-memory numpy table, kernel-running pool workers
# ---------------------------------------------------------------------------

#: Worker-side cache: probe token -> (shm handle, table view, kernel).
_WORKER_STATE: dict[object, tuple] = {}

#: Driver-side probe tokens — unique per shared-memory table so pool
#: workers can cache their attachment across the levels of one probe and
#: evict it when the next probe (same persistent pool) begins.
_PROBE_TOKENS = itertools.count()


def _process_worker_run(payload: tuple) -> None:  # pragma: no cover - workers
    """Run one chunk of one level inside a pool worker.

    ``payload`` is ``(token, shm_name, sigma, kernel, flats)``.  On the
    first chunk of a new probe the worker drops stale attachments, maps
    the probe's shared-memory table and caches it with the shipped
    kernel under ``token``; subsequent chunks of the same probe reuse the
    cache, so a persistent pool pays per-probe setup exactly once per
    worker.
    """
    token, shm_name, sigma, kernel, flats = payload
    state = _WORKER_STATE.get(token)
    if state is None:
        from multiprocessing import shared_memory

        for stale in list(_WORKER_STATE):
            _WORKER_STATE.pop(stale)[0].close()
        shm = shared_memory.SharedMemory(name=shm_name)
        table = np.ndarray((sigma,), dtype=np.int64, buffer=shm.buf)
        state = (shm, table, kernel)
        _WORKER_STATE[token] = state
    _, table, kernel = state
    kernel.update(table, np.asarray(flats, dtype=np.int64))


def _run_process_backend(
    problem: DPProblem,
    kernel: LevelKernel,
    level_index: LevelIndex,
    num_workers: int,
    executor: Executor | None,
    ctx: SolveContext,
) -> np.ndarray:
    """Fill the table in shared memory with pool workers; returns a copy."""
    from multiprocessing import shared_memory

    sigma = problem.table_size
    shm = shared_memory.SharedMemory(create=True, size=max(sigma * 8, 8))
    try:
        table = np.ndarray((sigma,), dtype=np.int64, buffer=shm.buf)
        kernel.init_table(table)
        owns = executor is None
        ex = executor if executor is not None else make_executor(
            "process", num_workers
        )
        token = next(_PROBE_TOKENS)
        try:
            for level, flats in enumerate(level_index.levels[1:], start=1):
                with ctx.span("level", level=level, states=len(flats)):
                    chunks = round_robin_partition(flats, ex.num_workers)
                    payloads = [
                        (token, shm.name, sigma, kernel, np.ascontiguousarray(c))
                        if len(c)
                        else ()
                        for c in chunks
                    ]
                    ex.map_chunks(_process_worker_run, payloads)
                ctx.count("levels")
        finally:
            if owns:
                ex.close()
        return table.copy()
    finally:
        shm.close()
        shm.unlink()


# ---------------------------------------------------------------------------
# Table filling (shared by parallel_dp and the test/benchmark surface)
# ---------------------------------------------------------------------------

def compute_table(
    problem: DPProblem,
    num_workers: int,
    backend: str = "serial",
    *,
    executor: Executor | None = None,
    kernel: LevelKernel | None = None,
    machine: SimulatedMachine | None = None,
    cost_model: CostModel | None = None,
    cost_fidelity: str = "uniform",
    ctx: SolveContext | None = None,
) -> np.ndarray:
    """Fill and return the raw wavefront DP table for ``problem``.

    The returned ``int64`` array uses the
    :data:`~repro.core.kernels.KERNEL_INFEASIBLE` sentinel; all backends
    return bit-identical tables.  ``executor`` lets a caller own a
    persistent pool across many probes (serial/thread/process backends);
    when omitted, ``ctx.executor`` is adopted (never closed) if set and
    compatible, else a fresh executor is created and closed per call.

    When ``ctx`` carries a live tracer, every anti-diagonal batch is
    wrapped in a ``level`` span (tagged with the level index and its
    state count) and bumps the ``levels`` counter; the untraced
    ``numpy-serial`` path keeps the fused :meth:`LevelKernel.sweep` fast
    path.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if cost_fidelity not in ("uniform", "per_state"):
        raise ValueError(
            f"unknown cost_fidelity {cost_fidelity!r}; expected uniform/per_state"
        )
    if executor is not None and backend not in EXECUTOR_BACKENDS:
        raise ValueError(
            f"backend {backend!r} does not execute through an executor"
        )
    ctx = ctx if ctx is not None else DEFAULT_CONTEXT
    if executor is None and backend in EXECUTOR_BACKENDS:
        executor = ctx.executor
    if kernel is None:
        kernel = LevelKernel.for_problem(problem)
    level_index = build_level_index(problem)
    sigma = problem.table_size

    if backend == "process":
        return _run_process_backend(
            problem, kernel, level_index, num_workers, executor, ctx
        )

    table = kernel.allocate_table(sigma)
    if backend == "numpy-serial":
        if not ctx.tracer.enabled:
            kernel.sweep(table, level_index.levels)
            return table
        for level, flats in enumerate(level_index.levels[1:], start=1):
            with ctx.span("level", level=level, states=len(flats)):
                kernel.update(table, flats)
            ctx.count("levels")
        return table
    if backend == "simulated":
        model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        sim = machine if machine is not None else SimulatedMachine(
            num_workers, model
        )
        # Alg. 3 lines 4-8: the parallel computation of the D array.
        sim.record_parallel_for(sigma, cost_per_item=float(len(problem.dims)))
        cost_per_state = model.state_cost(kernel.num_configs)
        per_state = cost_fidelity == "per_state"
        for level, flats in enumerate(level_index.levels):
            if level == 0:
                # Initialization of OPT(0,...,0) by one processor.
                sim.record_uniform_level(0, 1, model.state_overhead_ops)
                continue
            with ctx.span("level", level=level, states=len(flats)):
                counts = kernel.update(table, flats, count_applicable=per_state)
                if per_state:
                    sim.record_level(
                        level, [model.state_cost(int(c)) for c in counts]
                    )
                else:
                    sim.record_uniform_level(level, len(flats), cost_per_state)
            ctx.count("levels")
        return table

    # serial / thread: executor-driven chunks over the one shared table.
    owns = executor is None
    ex = executor if executor is not None else make_executor(backend, num_workers)

    def worker(flats: Sequence[int]) -> None:
        kernel.update(table, flats)

    try:
        for level, flats in enumerate(level_index.levels[1:], start=1):
            with ctx.span("level", level=level, states=len(flats)):
                ex.map_chunks(
                    worker, round_robin_partition(flats, ex.num_workers)
                )
            ctx.count("levels")
    finally:
        if owns:
            ex.close()
    return table


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def parallel_dp(
    problem: DPProblem,
    num_workers: int,
    backend: str = "serial",
    *,
    limit: int | None = None,
    track_schedule: bool = True,
    collect_stats: bool = False,
    machine: SimulatedMachine | None = None,
    cost_model: CostModel | None = None,
    cost_fidelity: str = "uniform",
    executor: Executor | None = None,
    ctx: SolveContext | None = None,
) -> DPResult:
    """Fill the DP table with the wavefront schedule of Alg. 3.

    Parameters
    ----------
    problem:
        The rounded packing problem of one bisection iteration.
    num_workers:
        ``P`` — processors of the (real or simulated) parallel machine.
    backend:
        One of :data:`BACKENDS`.
    machine:
        For ``backend="simulated"``: the accumulator that receives the
        cost accounting.  A fresh one is created when omitted; pass your
        own to aggregate multiple DP invocations (the bisection does).
    limit:
        Decision threshold: report infeasible when ``OPT(N) > limit``.
        The table is always filled completely (faithful to the paper).
    cost_fidelity:
        For the simulated backend: ``"uniform"`` charges every state the
        full configuration scan ``|C|`` (the paper's worst-case
        accounting); ``"per_state"`` charges the measured ``|C_v|`` of
        each state, which varies across a level and lets assignment
        policies (round-robin vs dynamic) be compared meaningfully.
    executor:
        Externally owned executor for the serial/thread/process
        backends.  The bisection driver passes one persistent
        (reusable-pool) executor to every probe so pool startup is paid
        once per solve; ``parallel_dp`` never closes an executor it did
        not create.  When omitted, ``ctx.executor`` is adopted instead.
    ctx:
        :class:`~repro.core.context.SolveContext` carrying the tracer
        (``dp`` span around the table fill, one ``level`` span per
        anti-diagonal, ``enumerate`` / ``backtrack`` spans around the
        respective phases) and optionally the shared executor.

    Returns
    -------
    DPResult
        Same contract as the sequential engines; ``engine`` is
        ``"parallel-<backend>"``.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if cost_fidelity not in ("uniform", "per_state"):
        raise ValueError(
            f"unknown cost_fidelity {cost_fidelity!r}; expected uniform/per_state"
        )
    ctx = ctx if ctx is not None else DEFAULT_CONTEXT
    if not problem.counts:
        stats = (
            DPStats(
                sigma=1,
                num_levels=1,
                level_sizes=(1,),
                num_configs=0,
                states_computed=1,
                config_scans=0,
            )
            if collect_stats
            else None
        )
        if backend == "simulated" and machine is not None:
            machine.record_sequential(0.0)
        return DPResult(opt=0, engine=f"parallel-{backend}", stats=stats)

    configs = _enumerate_traced(problem, ctx)
    kernel = LevelKernel.for_problem(problem, configs)
    sigma = problem.table_size
    with ctx.span(
        "dp",
        engine=f"parallel-{backend}",
        sigma=sigma,
        backend=backend,
        workers=num_workers,
    ) as dp_span:
        table = compute_table(
            problem,
            num_workers,
            backend,
            executor=executor,
            kernel=kernel,
            machine=machine,
            cost_model=cost_model,
            cost_fidelity=cost_fidelity,
            ctx=ctx,
        )
        opt = table_opt(table, sigma - 1)
        dp_span.set(opt=opt)
    if opt is None:  # pragma: no cover - singleton configs guarantee feasibility
        raise AssertionError("parallel DP ended infeasible")
    stats = None
    if collect_stats:
        level_sizes = tuple(
            len(lv) for lv in build_level_arrays(problem.dims)
        )
        stats = DPStats(
            sigma=sigma,
            num_levels=len(level_sizes),
            level_sizes=level_sizes,
            num_configs=len(configs),
            states_computed=sigma,
            config_scans=sigma * len(configs),
        )
    if limit is not None and opt > limit:
        return DPResult(opt=None, engine=f"parallel-{backend}", stats=stats)
    machine_configs: tuple[tuple[int, ...], ...] = ()
    if track_schedule:
        with ctx.span("backtrack", engine=f"parallel-{backend}"):
            machine_configs = backtrack_schedule(
                lambda i: table_opt(table, i), problem, configs
            )
    return DPResult(
        opt=opt,
        machine_configs=machine_configs,
        engine=f"parallel-{backend}",
        stats=stats,
    )
