"""Parallel DP (Alg. 3): the anti-diagonal wavefront over the DP table.

The key structural facts (paper §III):

* the subproblems on one anti-diagonal — states whose component sum
  ``d_i`` equals the level index ``l`` — are mutually independent;
* every dependency of a level-``l`` state lies on a strictly earlier
  anti-diagonal, because subtracting a non-zero configuration strictly
  decreases the component sum.

So the table is filled level by level (``l = 0 .. n'``); within a level
the states are assigned to ``P`` processors round-robin and computed in
parallel, with a barrier between levels.

Backends
--------
``serial``
    The wavefront order executed by one worker — bit-identical results to
    the sequential row-major sweep, used as the reference.
``thread``
    Shared-memory threads over one Python list (the faithful OpenMP
    analogue; correctness, not speed, under the GIL).
``process``
    Worker processes attached to one ``multiprocessing.shared_memory``
    block holding the table as an int64 numpy array — genuinely parallel
    on multicore hosts; each level ships only the flat indices of its
    chunk.
``simulated``
    Serial execution plus deterministic cost accounting on a
    :class:`~repro.simcore.machine.SimulatedMachine` — the testbed
    substitute used by the speedup experiments (DESIGN.md §6).

All backends produce exactly the same table, hence the same ``OPT(N)``
and the same reconstructed machine configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.configurations import ConfigurationSet
from repro.core.dp import (
    DPProblem,
    DPResult,
    DPStats,
    backtrack_schedule,
    state_levels_array,
)
from repro.parallel.executor import make_executor
from repro.parallel.partition import round_robin_partition
from repro.simcore.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.simcore.machine import SimulatedMachine

BACKENDS = ("serial", "thread", "process", "simulated")


@dataclass(frozen=True)
class LevelIndex:
    """Flat state indices of every anti-diagonal, in row-major order.

    ``levels[l]`` lists the DP-table entries with component sum ``l``;
    this is the materialized form of Alg. 3's ``D`` array plus the
    per-level grouping its main loop performs with the ``d_i = l`` test.
    """

    levels: tuple[tuple[int, ...], ...]

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def sizes(self) -> tuple[int, ...]:
        return tuple(len(lv) for lv in self.levels)


def build_level_index(problem: DPProblem) -> LevelIndex:
    """Group all ``sigma`` states by anti-diagonal (vectorized)."""
    levels_arr = state_levels_array(problem)
    order = np.argsort(levels_arr, kind="stable")
    sorted_levels = levels_arr[order]
    n_levels = int(levels_arr.max()) + 1 if len(levels_arr) else 1
    boundaries = np.searchsorted(sorted_levels, np.arange(n_levels + 1))
    levels: list[tuple[int, ...]] = []
    for l in range(n_levels):
        lo, hi = boundaries[l], boundaries[l + 1]
        levels.append(tuple(int(i) for i in order[lo:hi]))
    return LevelIndex(tuple(levels))


def _config_offsets(
    configs: ConfigurationSet, strides: Sequence[int]
) -> list[tuple[tuple[int, ...], int]]:
    return [
        (cfg, sum(s * st for s, st in zip(cfg, strides))) for cfg in configs.configs
    ]


def _compute_states(
    chunk: Sequence[int],
    table: list[int | None],
    dims: Sequence[int],
    strides: Sequence[int],
    cfg_offsets: Sequence[tuple[tuple[int, ...], int]],
) -> list[int]:
    """Compute one chunk of a level against a shared table (list form).

    Writes are disjoint across chunks (each state belongs to exactly one
    chunk) and reads touch earlier levels only, so no locking is needed —
    the same argument that makes the OpenMP version race-free.

    Returns, per state, the size of its configuration set ``|C_v|`` (the
    configurations that passed the componentwise bound) — the quantity
    Alg. 3's per-state enumeration pays for, consumed by the per-state
    cost fidelity of the simulated backend.
    """
    d = len(dims)
    counts: list[int] = []
    for flat in chunk:
        if flat == 0:
            table[0] = 0
            counts.append(0)
            continue
        # Unrank the state vector.
        v = [(flat // strides[c]) % dims[c] for c in range(d)]
        best: int | None = None
        applicable = 0
        for cfg, offset in cfg_offsets:
            ok = True
            for c in range(d):
                if cfg[c] > v[c]:
                    ok = False
                    break
            if not ok:
                continue
            applicable += 1
            prev = table[flat - offset]
            if prev is not None and prev >= 0 and (best is None or prev < best):
                best = prev
        table[flat] = None if best is None else best + 1
        counts.append(applicable)
    return counts


# ---------------------------------------------------------------------------
# Process backend: shared-memory numpy table
# ---------------------------------------------------------------------------

_SHARED: dict[str, object] = {}


def _process_worker_init(
    shm_name: str,
    sigma: int,
    dims: tuple[int, ...],
    strides: tuple[int, ...],
    cfg_offsets: tuple[tuple[tuple[int, ...], int], ...],
) -> None:  # pragma: no cover - runs in worker processes
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=shm_name)
    table = np.ndarray((sigma,), dtype=np.int64, buffer=shm.buf)
    _SHARED["shm"] = shm  # keep a reference so the mapping stays alive
    _SHARED["table"] = table
    _SHARED["dims"] = dims
    _SHARED["strides"] = strides
    _SHARED["cfg_offsets"] = cfg_offsets


def _process_worker_compute(chunk: Sequence[int]) -> None:  # pragma: no cover
    table: np.ndarray = _SHARED["table"]  # type: ignore[assignment]
    dims: tuple[int, ...] = _SHARED["dims"]  # type: ignore[assignment]
    strides: tuple[int, ...] = _SHARED["strides"]  # type: ignore[assignment]
    cfg_offsets = _SHARED["cfg_offsets"]  # type: ignore[assignment]
    d = len(dims)
    for flat in chunk:
        if flat == 0:
            table[0] = 0
            continue
        v = [(flat // strides[c]) % dims[c] for c in range(d)]
        best = -1
        for cfg, offset in cfg_offsets:  # type: ignore[union-attr]
            ok = True
            for c in range(d):
                if cfg[c] > v[c]:
                    ok = False
                    break
            if not ok:
                continue
            prev = table[flat - offset]
            if prev >= 0 and (best < 0 or prev < best):
                best = int(prev)
        table[flat] = -1 if best < 0 else best + 1


def _run_process_backend(
    problem: DPProblem,
    level_index: LevelIndex,
    cfg_offsets: list[tuple[tuple[int, ...], int]],
    num_workers: int,
) -> list[int | None]:
    from multiprocessing import shared_memory

    sigma = problem.table_size
    shm = shared_memory.SharedMemory(create=True, size=max(sigma * 8, 8))
    try:
        table = np.ndarray((sigma,), dtype=np.int64, buffer=shm.buf)
        table[:] = -1
        table[0] = 0
        executor = make_executor(
            "process",
            num_workers,
            initializer=_process_worker_init,
            initargs=(
                shm.name,
                sigma,
                problem.dims,
                problem.strides(),
                tuple(cfg_offsets),
            ),
        )
        try:
            for level_items in level_index.levels[1:]:
                chunks = round_robin_partition(level_items, num_workers)
                executor.map_chunks(_process_worker_compute, chunks)
        finally:
            executor.close()
        return [None if x < 0 else int(x) for x in table]
    finally:
        shm.close()
        shm.unlink()


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def parallel_dp(
    problem: DPProblem,
    num_workers: int,
    backend: str = "serial",
    *,
    limit: int | None = None,
    track_schedule: bool = True,
    collect_stats: bool = False,
    machine: SimulatedMachine | None = None,
    cost_model: CostModel | None = None,
    cost_fidelity: str = "uniform",
) -> DPResult:
    """Fill the DP table with the wavefront schedule of Alg. 3.

    Parameters
    ----------
    problem:
        The rounded packing problem of one bisection iteration.
    num_workers:
        ``P`` — processors of the (real or simulated) parallel machine.
    backend:
        One of :data:`BACKENDS`.
    machine:
        For ``backend="simulated"``: the accumulator that receives the
        cost accounting.  A fresh one is created when omitted; pass your
        own to aggregate multiple DP invocations (the bisection does).
    limit:
        Decision threshold: report infeasible when ``OPT(N) > limit``.
        The table is always filled completely (faithful to the paper).
    cost_fidelity:
        For the simulated backend: ``"uniform"`` charges every state the
        full configuration scan ``|C|`` (the paper's worst-case
        accounting); ``"per_state"`` charges the measured ``|C_v|`` of
        each state, which varies across a level and lets assignment
        policies (round-robin vs dynamic) be compared meaningfully.

    Returns
    -------
    DPResult
        Same contract as the sequential engines; ``engine`` is
        ``"parallel-<backend>"``.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if cost_fidelity not in ("uniform", "per_state"):
        raise ValueError(
            f"unknown cost_fidelity {cost_fidelity!r}; expected uniform/per_state"
        )
    if not problem.counts:
        stats = (
            DPStats(
                sigma=1,
                num_levels=1,
                level_sizes=(1,),
                num_configs=0,
                states_computed=1,
                config_scans=0,
            )
            if collect_stats
            else None
        )
        if backend == "simulated" and machine is not None:
            machine.record_sequential(0.0)
        return DPResult(opt=0, engine=f"parallel-{backend}", stats=stats)

    configs = problem.configurations()
    strides = problem.strides()
    dims = problem.dims
    cfg_offsets = _config_offsets(configs, strides)
    level_index = build_level_index(problem)
    sigma = problem.table_size

    if backend == "process":
        table = _run_process_backend(problem, level_index, cfg_offsets, num_workers)
    else:
        table: list[int | None] = [None] * sigma  # type: ignore[no-redef]
        table[0] = 0

        def worker(chunk: Sequence[int]) -> None:
            _compute_states(chunk, table, dims, strides, cfg_offsets)

        if backend == "simulated":
            model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
            sim = machine if machine is not None else SimulatedMachine(
                num_workers, model
            )
            # Alg. 3 lines 4-8: the parallel computation of the D array.
            sim.record_parallel_for(sigma, cost_per_item=float(len(dims)))
            cost_per_state = model.state_cost(len(configs))
            for level, items in enumerate(level_index.levels):
                if level == 0:
                    # Initialization of OPT(0,...,0) by one processor.
                    sim.record_uniform_level(0, 1, model.state_overhead_ops)
                    continue
                counts = _compute_states(items, table, dims, strides, cfg_offsets)
                if cost_fidelity == "per_state":
                    sim.record_level(
                        level, [model.state_cost(c) for c in counts]
                    )
                else:
                    sim.record_uniform_level(level, len(items), cost_per_state)
        else:
            executor = make_executor(backend, num_workers)
            try:
                for items in level_index.levels[1:]:
                    chunks = round_robin_partition(items, num_workers)
                    executor.map_chunks(worker, chunks)
            finally:
                executor.close()

    opt = table[sigma - 1]
    if opt is None:  # pragma: no cover - singleton configs guarantee feasibility
        raise AssertionError("parallel DP ended infeasible")
    stats = None
    if collect_stats:
        stats = DPStats(
            sigma=sigma,
            num_levels=level_index.num_levels,
            level_sizes=level_index.sizes,
            num_configs=len(configs),
            states_computed=sigma,
            config_scans=sigma * len(configs),
        )
    if limit is not None and opt > limit:
        return DPResult(opt=None, engine=f"parallel-{backend}", stats=stats)
    machine_configs: tuple[tuple[int, ...], ...] = ()
    if track_schedule:
        machine_configs = backtrack_schedule(lambda i: table[i], problem, configs)
    return DPResult(
        opt=opt,
        machine_configs=machine_configs,
        engine=f"parallel-{backend}",
        stats=stats,
    )
