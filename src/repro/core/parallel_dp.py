"""Parallel DP (Alg. 3): the anti-diagonal wavefront over the DP table.

The key structural facts (paper §III):

* the subproblems on one anti-diagonal — states whose component sum
  ``d_i`` equals the level index ``l`` — are mutually independent;
* every dependency of a level-``l`` state lies on a strictly earlier
  anti-diagonal, because subtracting a non-zero configuration strictly
  decreases the component sum.

Every backend runs the same compute core — the vectorized
:class:`~repro.core.kernels.LevelKernel` — against one ``int64`` table,
so the recurrence is implemented exactly once and all backends are
bit-identical by construction.

Schedules
---------
``levels``
    The paper's literal schedule: one barrier per anti-diagonal, each
    level's states round-robin across ``P`` workers.  Faithful, but at
    realistic probe sizes the per-level dispatch + barrier overhead
    swamps the work (the benchmarked reason the parallel backends used
    to lose to the fused serial sweep).
``runs`` (default for the real backends)
    The batched tile schedule of :mod:`repro.parallel.runs`: contiguous
    flat-index *blocks* with persistent per-worker ownership ×
    contiguous *runs* of levels, executed along tile diagonals with one
    barrier per diagonal (``B + R - 1`` barriers instead of ``n'``).
    Race-free because a predecessor state is always in the same-or-lower
    block *and* the same-or-earlier run (see the dependency argument in
    ``repro/parallel/runs.py``); within a tile the worker sweeps its
    levels in order.  Run length adapts to a measured per-level cost
    model, and the block count never exceeds the CPUs the process can
    actually use — oversubscription is pure barrier overhead.

Backends
--------
``serial``
    The wavefront order executed by one worker through the executor
    machinery — the reference every other backend is diffed against.
``numpy-serial``
    Direct kernel sweep, one vectorized pass per anti-diagonal with no
    executor or partitioning overhead — the fastest single-worker path
    and the reference the benchmarks normalize against.
``thread``
    Shared-memory threads over the one numpy table (the faithful OpenMP
    analogue).  The kernel releases the GIL inside numpy array ops, so
    threads scale on multicore hosts instead of serializing.
``process``
    Worker processes attached to one ``multiprocessing.shared_memory``
    block holding the table; each dispatch ships only the flat indices
    of its tile.  Pool workers cache the probe's kernel and table
    mapping on first touch, so a persistent pool (see
    :func:`repro.parallel.executor.make_executor`) pays attachment once
    per probe, not per dispatch.
``simulated``
    Serial execution plus deterministic cost accounting on a
    :class:`~repro.simcore.machine.SimulatedMachine` — the testbed
    substitute used by the speedup experiments (DESIGN.md §6).  Both
    schedules are supported: ``levels`` reproduces the paper's model,
    ``runs`` models the batched schedule (one barrier per tile
    diagonal) for the same table.

All backends produce exactly the same table, hence the same ``OPT(N)``
and the same reconstructed machine configurations.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass

import numpy as np

from repro.core.context import DEFAULT_CONTEXT, SolveContext
from repro.core.dp import (
    DPProblem,
    DPResult,
    DPStats,
    _enumerate_traced,
    backtrack_schedule,
)
from repro.core.kernels import (
    LevelKernel,
    build_level_arrays,
    table_opt,
)
from repro.parallel.cpus import usable_cpus
from repro.parallel.executor import Executor, make_executor
from repro.parallel.partition import round_robin_partition
from repro.parallel.runs import KernelCostModel, TilePlan, build_tiles, plan_tiles
from repro.simcore.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.simcore.machine import SimulatedMachine

BACKENDS = ("serial", "numpy-serial", "thread", "process", "simulated")

#: Backends that execute through an :class:`~repro.parallel.executor.Executor`
#: and therefore accept an externally owned (persistent) one.
EXECUTOR_BACKENDS = ("serial", "thread", "process")

#: Wavefront schedules (see module docstring).
SCHEDULES = ("levels", "runs")

#: Tables below this size skip the timed cost-model measurement when
#: planning tiles — the defaults are accurate enough and the probe is
#: too small for the measurement to amortize.
_MEASURE_THRESHOLD = 4096

#: Default block over-decomposition: plan ``2 x workers`` contiguous
#: flat-index blocks and fold them onto workers as ``block % workers``.
#: Per-diagonal step time is the *maximum* busy block, and level states
#: are spread unevenly across equal flat-index ranges — two blocks per
#: worker smooth that imbalance (modeled speedup on the Figure-3
#: instance at 4 workers: 1.96x with B=4, 2.85x with B=8) at the cost
#: of a few extra ramp diagonals.
_OVERDECOMPOSE = 2

#: Measured per-kernel-shape cost models, keyed by
#: ``(num_configs, num_dims)`` — probes of one bisection share shapes.
_COST_CACHE: dict[tuple[int, int], KernelCostModel] = {}


@dataclass(frozen=True, eq=False)
class LevelIndex:
    """Flat state indices of every anti-diagonal, in row-major order.

    ``levels[l]`` is the ``int64`` index array of DP-table entries with
    component sum ``l`` — the materialized form of Alg. 3's ``D`` array
    plus the per-level grouping its main loop performs with the
    ``d_i = l`` test.  Levels stay numpy arrays end-to-end (partitioned
    by strided slicing, consumed by the vectorized kernel) — no
    per-state boxing into Python ints.
    """

    levels: tuple[np.ndarray, ...]

    @property
    def num_levels(self) -> int:
        """Number of anti-diagonals (``n' + 1``)."""
        return len(self.levels)

    @property
    def sizes(self) -> tuple[int, ...]:
        """``q_l`` for every level."""
        return tuple(len(lv) for lv in self.levels)


def build_level_index(problem: DPProblem) -> LevelIndex:
    """Group all ``sigma`` states by anti-diagonal (vectorized)."""
    return LevelIndex(build_level_arrays(problem.dims))


def _plan_for(
    problem: DPProblem,
    kernel: LevelKernel,
    level_index: LevelIndex,
    num_blocks: int,
    *,
    measured: bool = True,
) -> TilePlan:
    """Default tile plan: measured cost model (cached per kernel shape)
    on big tables, static defaults on small ones.  ``measured=False``
    skips the host timing probe entirely — the simulated backend plans
    from the static defaults so its geometry is deterministic (the
    simulator's currency is ops, not host seconds)."""
    cost: KernelCostModel | None = None
    if (
        measured
        and problem.table_size >= _MEASURE_THRESHOLD
        and level_index.num_levels > 1
    ):
        key = (kernel.num_configs, len(problem.dims))
        cost = _COST_CACHE.get(key)
        if cost is None:
            biggest = max(level_index.levels[1:], key=len)
            cost = KernelCostModel.measure(kernel, biggest, problem.table_size)
            _COST_CACHE[key] = cost
    return plan_tiles(
        level_index.sizes,
        problem.table_size,
        num_blocks,
        num_configs=kernel.num_configs,
        cost=cost,
    )


# ---------------------------------------------------------------------------
# Process backend: shared-memory numpy table, kernel-running pool workers
# ---------------------------------------------------------------------------

#: Worker-side cache: probe token -> (shm handle, table view, kernel).
_WORKER_STATE: dict[object, tuple] = {}

#: Driver-side probe tokens — unique per shared-memory table so pool
#: workers can cache their attachment across the dispatches of one probe
#: and evict it when the next probe (same persistent pool) begins.
_PROBE_TOKENS = itertools.count()


def _attach_worker(token, shm_name, sigma, kernel):  # pragma: no cover - workers
    """Worker-side shared-memory attachment, cached per probe token."""
    state = _WORKER_STATE.get(token)
    if state is None:
        from multiprocessing import shared_memory

        for stale in list(_WORKER_STATE):
            _WORKER_STATE.pop(stale)[0].close()
        shm = shared_memory.SharedMemory(name=shm_name)
        table = np.ndarray((sigma,), dtype=np.int64, buffer=shm.buf)
        state = (shm, table, kernel)
        _WORKER_STATE[token] = state
    return state


def _process_worker_run(payload: tuple) -> None:  # pragma: no cover - workers
    """Run one chunk of one level inside a pool worker (``levels``
    schedule).  ``payload`` is ``(token, shm_name, sigma, kernel, level,
    flats)``."""
    token, shm_name, sigma, kernel, level, flats = payload
    _, table, kernel = _attach_worker(token, shm_name, sigma, kernel)
    kernel.update(table, np.asarray(flats, dtype=np.int64), level=level)


def _process_tile_run(payload: tuple):  # pragma: no cover - workers
    """Run one tile (one block × one run of levels) inside a pool worker
    (``runs`` schedule).  ``payload`` is ``(token, shm_name, sigma,
    kernel, start_level, chunks)``; returns ``(states, seconds)`` for
    the driver's utilization counters."""
    token, shm_name, sigma, kernel, start_level, chunks = payload
    _, table, kernel = _attach_worker(token, shm_name, sigma, kernel)
    t0 = time.perf_counter()
    states = 0
    for i, flats in enumerate(chunks):
        if len(flats):
            kernel.update(table, flats, level=start_level + i)
            states += len(flats)
    return states, time.perf_counter() - t0


def _run_process_backend(
    problem: DPProblem,
    kernel: LevelKernel,
    level_index: LevelIndex,
    num_workers: int,
    executor: Executor | None,
    ctx: SolveContext,
    schedule: str,
    plan: TilePlan | None,
) -> np.ndarray:
    """Fill the table in shared memory with pool workers; returns a copy."""
    from multiprocessing import shared_memory

    sigma = problem.table_size
    shm = shared_memory.SharedMemory(create=True, size=max(sigma * 8, 8))
    try:
        table = np.ndarray((sigma,), dtype=np.int64, buffer=shm.buf)
        kernel.init_table(table)
        owns = executor is None
        ex = executor if executor is not None else make_executor(
            "process", num_workers
        )
        token = next(_PROBE_TOKENS)
        try:
            if schedule == "runs":
                def make_payload(start_level: int, chunks: list) -> tuple:
                    return (token, shm.name, sigma, kernel, start_level, chunks)

                _drive_tiles(
                    problem, kernel, level_index, ex, ctx, plan,
                    _process_tile_run, make_payload,
                )
            else:
                for level, flats in enumerate(level_index.levels[1:], start=1):
                    with ctx.span("level", level=level, states=len(flats)):
                        chunks = round_robin_partition(flats, ex.num_workers)
                        payloads = [
                            (token, shm.name, sigma, kernel, level,
                             np.ascontiguousarray(c))
                            if len(c)
                            else ()
                            for c in chunks
                        ]
                        ex.map_chunks(_process_worker_run, payloads)
                    ctx.count("levels")
        finally:
            if owns:
                ex.close()
        return table.copy()
    finally:
        shm.close()
        shm.unlink()


# ---------------------------------------------------------------------------
# Batched (tiled) wavefront driver
# ---------------------------------------------------------------------------

def _drive_tiles(
    problem: DPProblem,
    kernel: LevelKernel,
    level_index: LevelIndex,
    ex: Executor,
    ctx: SolveContext,
    plan: TilePlan | None,
    tile_fn,
    make_payload,
) -> TilePlan:
    """Execute the tile-diagonal schedule on *ex*: one ``map_chunks``
    call (= one barrier) per diagonal, block ``b`` always on chunk slot
    ``b`` so pooled workers keep touching the same table region.  By
    default blocks over-decompose the table ``2 x workers`` wide
    (:data:`_OVERDECOMPOSE`) and fold back as ``block % workers``, which
    smooths the per-diagonal load imbalance of contiguous flat ranges.

    ``tile_fn(payload)`` must return ``(states, seconds)``;
    ``make_payload(start_level, chunks)`` builds the per-tile payload
    (the thread path closes over the shared table, the process path
    ships shared-memory coordinates).  Emits one ``run`` span per
    diagonal and per-worker utilization counters at the end.
    """
    if plan is None:
        workers = max(1, min(ex.num_workers, usable_cpus()))
        blocks = workers if workers == 1 else _OVERDECOMPOSE * workers
        plan = _plan_for(problem, kernel, level_index, blocks)
    tiles = build_tiles(level_index.levels, plan)
    tile_states = [
        [sum(len(c) for c in chunks) for chunks in per_block]
        for per_block in tiles
    ]
    num_worker_slots = max(1, min(ex.num_workers, plan.num_blocks))
    busy_us = [0] * num_worker_slots
    states_done = [0] * num_worker_slots
    for t in range(plan.num_diagonals):
        active = plan.tiles_on_diagonal(t)
        payloads: list = [()] * plan.num_blocks
        span_states = 0
        for b, r in active:
            if tile_states[r][b]:
                payloads[b] = make_payload(plan.runs[r][0], tiles[r][b])
                span_states += tile_states[r][b]
        with ctx.span(
            "run", diagonal=t, tiles=len(active), states=span_states
        ):
            results = ex.map_chunks(tile_fn, payloads)
        ctx.count("runs")
        for b, res in enumerate(results):
            if res is not None:
                states_done[b % num_worker_slots] += res[0]
                busy_us[b % num_worker_slots] += int(res[1] * 1e6)
    for b in range(num_worker_slots):
        if states_done[b]:
            ctx.record_metric(f"wavefront.worker.{b}.states", states_done[b])
            ctx.record_metric(f"wavefront.worker.{b}.busy_us", busy_us[b])
    ctx.record_metric("wavefront.diagonals", max(plan.num_diagonals, 0))
    return plan


def _run_simulated(
    problem: DPProblem,
    kernel: LevelKernel,
    level_index: LevelIndex,
    table: np.ndarray,
    num_workers: int,
    machine: SimulatedMachine | None,
    cost_model: CostModel | None,
    cost_fidelity: str,
    schedule: str,
    plan: TilePlan | None,
    ctx: SolveContext,
) -> np.ndarray:
    """Serial fill + deterministic cost accounting, either per level
    (the paper's schedule) or per tile diagonal (the batched one)."""
    sigma = problem.table_size
    model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
    sim = machine if machine is not None else SimulatedMachine(
        num_workers, model
    )
    # Alg. 3 lines 4-8: the parallel computation of the D array.
    sim.record_parallel_for(sigma, cost_per_item=float(len(problem.dims)))
    cost_per_state = model.state_cost(kernel.num_configs)
    per_state = cost_fidelity == "per_state"

    if schedule == "runs":
        p = sim.num_processors
        if plan is None:
            blocks = p if p == 1 else _OVERDECOMPOSE * p
            plan = _plan_for(
                problem, kernel, level_index, blocks, measured=False
            )
        # Initialization of OPT(0,...,0) by one processor.
        sim.record_uniform_level(0, 1, model.state_overhead_ops)
        tiles = build_tiles(level_index.levels, plan)
        for t in range(plan.num_diagonals):
            active = plan.tiles_on_diagonal(t)
            busy = [0.0] * p
            span_states = 0
            with ctx.span("run", diagonal=t, tiles=len(active)) as sp:
                for b, r in active:
                    lo = plan.runs[r][0]
                    for i, flats in enumerate(tiles[r][b]):
                        if not len(flats):
                            continue
                        counts = kernel.update(
                            table, flats, level=lo + i,
                            count_applicable=per_state,
                        )
                        if per_state:
                            busy[b % p] += sum(
                                model.state_cost(int(c)) for c in counts
                            )
                        else:
                            busy[b % p] += len(flats) * cost_per_state
                        span_states += len(flats)
                sp.set(states=span_states)
            sim.record_parallel_step(t, busy, num_items=span_states)
            ctx.count("runs")
        return table

    for level, flats in enumerate(level_index.levels):
        if level == 0:
            # Initialization of OPT(0,...,0) by one processor.
            sim.record_uniform_level(0, 1, model.state_overhead_ops)
            continue
        with ctx.span("level", level=level, states=len(flats)):
            counts = kernel.update(
                table, flats, level=level, count_applicable=per_state
            )
            if per_state:
                sim.record_level(
                    level, [model.state_cost(int(c)) for c in counts]
                )
            else:
                sim.record_uniform_level(level, len(flats), cost_per_state)
        ctx.count("levels")
    return table


# ---------------------------------------------------------------------------
# Table filling (shared by parallel_dp and the test/benchmark surface)
# ---------------------------------------------------------------------------

def compute_table(
    problem: DPProblem,
    num_workers: int,
    backend: str = "serial",
    *,
    executor: Executor | None = None,
    kernel: LevelKernel | None = None,
    machine: SimulatedMachine | None = None,
    cost_model: CostModel | None = None,
    cost_fidelity: str = "uniform",
    schedule: str | None = None,
    plan: TilePlan | None = None,
    ctx: SolveContext | None = None,
) -> np.ndarray:
    """Fill and return the raw wavefront DP table for ``problem``.

    The returned ``int64`` array uses the
    :data:`~repro.core.kernels.KERNEL_INFEASIBLE` sentinel; all backends
    and both schedules return bit-identical tables.  ``executor`` lets a
    caller own a persistent pool across many probes (serial/thread/
    process backends); when omitted, ``ctx.executor`` is adopted (never
    closed) if set and compatible, else a fresh executor is created and
    closed per call.

    ``schedule`` selects the wavefront granularity (:data:`SCHEDULES`):
    ``"runs"`` (default for the executor backends) is the batched tile
    schedule, ``"levels"`` the paper's per-anti-diagonal fan-out (and the
    default for the simulated backend, whose existing accounting
    consumers expect per-level traces).  ``plan`` overrides the adaptive
    :class:`~repro.parallel.runs.TilePlan` (tests and benchmarks pin
    block/run geometry with it).

    When ``ctx`` carries a live tracer, each barrier interval is wrapped
    in a span (``level`` or ``run``) tagged with its state count; the
    untraced ``numpy-serial`` path keeps the fused
    :meth:`LevelKernel.sweep` fast path.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {sorted(BACKENDS)}"
        )
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if cost_fidelity not in ("uniform", "per_state"):
        raise ValueError(
            f"unknown cost_fidelity {cost_fidelity!r}; expected uniform/per_state"
        )
    if schedule is not None and schedule not in SCHEDULES:
        raise ValueError(
            f"unknown schedule {schedule!r}; expected one of {SCHEDULES}"
        )
    if executor is not None and backend not in EXECUTOR_BACKENDS:
        raise ValueError(
            f"backend {backend!r} does not execute through an executor"
        )
    ctx = ctx if ctx is not None else DEFAULT_CONTEXT
    if executor is None and backend in EXECUTOR_BACKENDS:
        executor = ctx.executor
    if kernel is None:
        kernel = LevelKernel.for_problem(problem)
    level_index = build_level_index(problem)
    sigma = problem.table_size
    if schedule is None:
        schedule = "runs" if backend in EXECUTOR_BACKENDS else "levels"

    if backend == "process":
        return _run_process_backend(
            problem, kernel, level_index, num_workers, executor, ctx,
            schedule, plan,
        )

    table = kernel.allocate_table(sigma)
    if backend == "numpy-serial":
        if not ctx.tracer.enabled:
            kernel.sweep(table, level_index.levels)
            return table
        for level, flats in enumerate(level_index.levels[1:], start=1):
            with ctx.span("level", level=level, states=len(flats)):
                kernel.update(table, flats, level=level)
            ctx.count("levels")
        return table
    if backend == "simulated":
        return _run_simulated(
            problem, kernel, level_index, table, num_workers, machine,
            cost_model, cost_fidelity, schedule, plan, ctx,
        )

    # serial / thread: executor-driven chunks over the one shared table.
    owns = executor is None
    ex = executor if executor is not None else make_executor(backend, num_workers)
    try:
        if schedule == "runs":
            def tile_worker(payload):
                start_level, chunks = payload
                t0 = time.perf_counter()
                states = 0
                for i, flats in enumerate(chunks):
                    if len(flats):
                        kernel.update(table, flats, level=start_level + i)
                        states += len(flats)
                return states, time.perf_counter() - t0

            _drive_tiles(
                problem, kernel, level_index, ex, ctx, plan,
                tile_worker, lambda lo, chunks: (lo, chunks),
            )
        else:
            def worker(item):
                level, flats = item
                kernel.update(table, flats, level=level)

            for level, flats in enumerate(level_index.levels[1:], start=1):
                with ctx.span("level", level=level, states=len(flats)):
                    chunks = round_robin_partition(flats, ex.num_workers)
                    ex.map_chunks(
                        worker,
                        [(level, c) if len(c) else () for c in chunks],
                    )
                ctx.count("levels")
    finally:
        if owns:
            ex.close()
    return table


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def parallel_dp(
    problem: DPProblem,
    num_workers: int,
    backend: str = "serial",
    *,
    limit: int | None = None,
    track_schedule: bool = True,
    collect_stats: bool = False,
    machine: SimulatedMachine | None = None,
    cost_model: CostModel | None = None,
    cost_fidelity: str = "uniform",
    schedule: str | None = None,
    plan: TilePlan | None = None,
    executor: Executor | None = None,
    ctx: SolveContext | None = None,
) -> DPResult:
    """Fill the DP table with the wavefront schedule of Alg. 3.

    Parameters
    ----------
    problem:
        The rounded packing problem of one bisection iteration.
    num_workers:
        ``P`` — processors of the (real or simulated) parallel machine.
    backend:
        One of :data:`BACKENDS`.
    machine:
        For ``backend="simulated"``: the accumulator that receives the
        cost accounting.  A fresh one is created when omitted; pass your
        own to aggregate multiple DP invocations (the bisection does).
    limit:
        Decision threshold: report infeasible when ``OPT(N) > limit``.
        The table is always filled completely (faithful to the paper).
    cost_fidelity:
        For the simulated backend: ``"uniform"`` charges every state the
        full configuration scan ``|C|`` (the paper's worst-case
        accounting); ``"per_state"`` charges the measured ``|C_v|`` of
        each state, which varies across a level and lets assignment
        policies (round-robin vs dynamic) be compared meaningfully.
    schedule / plan:
        Wavefront granularity (:data:`SCHEDULES`) and an optional
        explicit :class:`~repro.parallel.runs.TilePlan` — see
        :func:`compute_table`.
    executor:
        Externally owned executor for the serial/thread/process
        backends.  The bisection driver passes one persistent
        (reusable-pool) executor to every probe so pool startup is paid
        once per solve; ``parallel_dp`` never closes an executor it did
        not create.  When omitted, ``ctx.executor`` is adopted instead.
    ctx:
        :class:`~repro.core.context.SolveContext` carrying the tracer
        (``dp`` span around the table fill, one ``level``/``run`` span
        per barrier interval, ``enumerate`` / ``backtrack`` spans around
        the respective phases) and optionally the shared executor.

    Returns
    -------
    DPResult
        Same contract as the sequential engines; ``engine`` is
        ``"parallel-<backend>"``.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {sorted(BACKENDS)}"
        )
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if cost_fidelity not in ("uniform", "per_state"):
        raise ValueError(
            f"unknown cost_fidelity {cost_fidelity!r}; expected uniform/per_state"
        )
    ctx = ctx if ctx is not None else DEFAULT_CONTEXT
    if not problem.counts:
        stats = (
            DPStats(
                sigma=1,
                num_levels=1,
                level_sizes=(1,),
                num_configs=0,
                states_computed=1,
                config_scans=0,
            )
            if collect_stats
            else None
        )
        if backend == "simulated" and machine is not None:
            machine.record_sequential(0.0)
        return DPResult(opt=0, engine=f"parallel-{backend}", stats=stats)

    configs = _enumerate_traced(problem, ctx)
    kernel = LevelKernel.for_problem(problem, configs)
    sigma = problem.table_size
    with ctx.span(
        "dp",
        engine=f"parallel-{backend}",
        sigma=sigma,
        backend=backend,
        workers=num_workers,
    ) as dp_span:
        table = compute_table(
            problem,
            num_workers,
            backend,
            executor=executor,
            kernel=kernel,
            machine=machine,
            cost_model=cost_model,
            cost_fidelity=cost_fidelity,
            schedule=schedule,
            plan=plan,
            ctx=ctx,
        )
        opt = table_opt(table, sigma - 1)
        dp_span.set(opt=opt)
    if opt is None:  # pragma: no cover - singleton configs guarantee feasibility
        raise AssertionError("parallel DP ended infeasible")
    stats = None
    if collect_stats:
        level_sizes = tuple(
            len(lv) for lv in build_level_arrays(problem.dims)
        )
        stats = DPStats(
            sigma=sigma,
            num_levels=len(level_sizes),
            level_sizes=level_sizes,
            num_configs=len(configs),
            states_computed=sigma,
            config_scans=sigma * len(configs),
        )
    if limit is not None and opt > limit:
        return DPResult(opt=None, engine=f"parallel-{backend}", stats=stats)
    machine_configs: tuple[tuple[int, ...], ...] = ()
    if track_schedule:
        with ctx.span("backtrack", engine=f"parallel-{backend}"):
            machine_configs = backtrack_schedule(
                lambda i: table_opt(table, i), problem, configs
            )
    return DPResult(
        opt=opt,
        machine_configs=machine_configs,
        engine=f"parallel-{backend}",
        stats=stats,
    )
