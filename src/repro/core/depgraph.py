"""The DP dependency graph — the paper's Figure 1, computable.

Section III argues the wavefront is valid by exhibiting the dependency
structure of the subproblems: an edge from state ``v`` to ``v - s`` for
every machine configuration ``s ≤ v``.  This module materializes that
graph with :mod:`networkx` so the claims become checkable properties:

* the graph is a DAG (:func:`is_valid_wavefront`);
* its topological *generations* are exactly the anti-diagonals — the
  independence sets Alg. 3 processes in parallel
  (:func:`topological_levels`);
* the critical path has length ``n' + 1`` levels, the wavefront's
  inherent serial depth (:func:`critical_path_length`);
* :func:`render_figure1` draws the layered graph for small tables in
  ASCII, reproducing the figure for the worked example.

``tests/test_depgraph.py`` property-tests the first three against the
level index the parallel DP actually uses.
"""

from __future__ import annotations

import networkx as nx

from repro.core.dp import DPProblem, unrank


def build_dependency_graph(problem: DPProblem) -> "nx.DiGraph":
    """Directed graph over all DP states; edge ``v -> u`` means computing
    ``OPT(v)`` reads ``OPT(u)`` (``u = v - s`` for some configuration)."""
    configs = problem.configurations()
    graph = nx.DiGraph()
    dims = problem.dims
    strides = problem.strides()
    for flat in range(problem.table_size):
        v = unrank(flat, dims, strides)
        graph.add_node(v, level=sum(v))
        for cfg in configs.configs:
            if all(s <= vc for s, vc in zip(cfg, v)):
                graph.add_edge(v, tuple(vc - s for vc, s in zip(v, cfg)))
    return graph


def is_valid_wavefront(graph: "nx.DiGraph") -> bool:
    """The structural soundness claim: no cyclic dependencies, and every
    edge decreases the anti-diagonal level."""
    if not nx.is_directed_acyclic_graph(graph):
        return False
    return all(sum(u) < sum(v) for v, u in graph.edges)


def topological_levels(graph: "nx.DiGraph") -> list[set[tuple[int, ...]]]:
    """Antichains of mutually independent states, outermost first.

    Computed as the topological generations of the *reversed* graph
    (dependencies point backwards), so generation ``l`` contains exactly
    the states whose longest dependency chain has length ``l``.
    """
    return [set(gen) for gen in nx.topological_generations(graph.reverse())]


def critical_path_length(graph: "nx.DiGraph") -> int:
    """Number of levels on the longest dependency chain — the minimum
    number of barrier-separated steps any schedule needs."""
    if graph.number_of_nodes() == 0:
        return 0
    return nx.dag_longest_path_length(graph) + 1


def render_figure1(problem: DPProblem, max_states: int = 64) -> str:
    """ASCII rendering of the layered dependency graph (Fig. 1).

    States are grouped by anti-diagonal; each state lists its direct
    dependencies.  Refuses tables larger than ``max_states`` — the
    figure is a didactic artifact, not a data dump.
    """
    if problem.table_size > max_states:
        raise ValueError(
            f"table has {problem.table_size} states; figure rendering is "
            f"capped at {max_states}"
        )
    graph = build_dependency_graph(problem)
    by_level: dict[int, list[tuple[int, ...]]] = {}
    for node, data in graph.nodes(data=True):
        by_level.setdefault(data["level"], []).append(node)
    lines = [
        "DP dependency graph (paper Fig. 1): levels are anti-diagonals,",
        "states within one level are independent and run in parallel.",
        "",
    ]
    for level in sorted(by_level):
        states = sorted(by_level[level])
        lines.append(f"Level {level}  (q_{level} = {len(states)})")
        for v in states:
            deps = sorted(graph.successors(v))
            deps_text = ", ".join(str(d) for d in deps) if deps else "-"
            lines.append(f"  OPT{v} <- {deps_text}")
    return "\n".join(lines)
