"""Vectorized anti-diagonal (wavefront) kernel shared by all backends.

Every wavefront execution of the rounded DP — the numpy sequential
engine, the serial reference, the thread backend, the shared-memory
process backend, and the simulated multicore machine — computes the same
per-level update: for each state ``v`` of one anti-diagonal, minimize
``OPT(v - s) + 1`` over the machine configurations ``s <= v``.  This
module holds the single implementation of that update,
:class:`LevelKernel`, so the recurrence exists exactly once.

The kernel is data-parallel: it unranks a whole anti-diagonal (or any
chunk of one) into a ``(q, d)`` matrix of count vectors with two integer
array ops, then applies one vectorized pass per configuration —
componentwise bound check, gather of the predecessor entries, minimum.
All arithmetic is numpy on ``int64`` arrays, which

* makes the *thread* backend genuinely parallel (numpy releases the GIL
  during array ops, so threads scale like the paper's OpenMP loops
  instead of serializing on pure-Python bytecode), and
* lets the *process* backend run the identical code against a table
  living in a ``multiprocessing.shared_memory`` block.

Sentinel convention
-------------------
The table is an ``int64`` array; entries holding
:data:`KERNEL_INFEASIBLE` (a large positive value, *not* ``-1``) mean
"no packing reaches this state".  A single positive sentinel keeps the
update branch-free: ``min`` over candidates never needs to special-case
infeasible predecessors because ``KERNEL_INFEASIBLE + 1`` still compares
greater than every real machine count.  :func:`table_opt` converts back
to the ``None``-based convention of :class:`repro.core.dp.DPResult`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dp imports us)
    from repro.core.configurations import ConfigurationSet
    from repro.core.dp import DPProblem

#: Table sentinel for "state unreachable within the target".  Half the
#: ``int64`` range so that ``sentinel + 1`` (a candidate produced by an
#: infeasible predecessor) cannot overflow and still exceeds every real
#: machine count.
KERNEL_INFEASIBLE: int = np.iinfo(np.int64).max // 2


def row_major_strides(dims: Sequence[int]) -> tuple[int, ...]:
    """Row-major strides of a table with the given axis extents."""
    d = len(dims)
    strides = [1] * d
    for c in range(d - 2, -1, -1):
        strides[c] = strides[c + 1] * dims[c + 1]
    return tuple(strides)


def build_level_arrays(dims: Sequence[int]) -> tuple[np.ndarray, ...]:
    """Group all flat table indices by anti-diagonal, as ``int64`` arrays.

    ``result[l]`` holds the flat indices whose count vectors sum to
    ``l``, ascending — the materialized ``D`` array of Alg. 3 without
    boxing a single Python int.  For an empty ``dims`` the table is the
    single state ``OPT(()) = 0``.
    """
    dims = tuple(int(x) for x in dims)
    if not dims:
        return (np.zeros(1, dtype=np.int64),)
    strides = np.asarray(row_major_strides(dims), dtype=np.int64)
    dims_arr = np.asarray(dims, dtype=np.int64)
    sigma = int(np.prod(dims_arr))
    flat = np.arange(sigma, dtype=np.int64)
    levels = np.zeros(sigma, dtype=np.int64)
    for c in range(len(dims)):
        levels += (flat // strides[c]) % dims_arr[c]
    order = np.argsort(levels, kind="stable")
    n_levels = int(levels.max()) + 1
    bounds = np.searchsorted(levels[order], np.arange(n_levels + 1))
    return tuple(
        np.ascontiguousarray(order[bounds[lvl] : bounds[lvl + 1]])
        for lvl in range(n_levels)
    )


def table_opt(table: np.ndarray, index: int) -> int | None:
    """Read one table entry, mapping the sentinel back to ``None``."""
    value = int(table[index])
    return None if value >= KERNEL_INFEASIBLE else value


def table_to_optional(table: np.ndarray) -> list[int | None]:
    """Whole-table conversion to the ``None``-sentinel list form."""
    return [None if v >= KERNEL_INFEASIBLE else int(v) for v in table]


class LevelKernel:
    """The vectorized per-level DP update, shared by every backend.

    Instances are cheap, immutable in practice, and picklable — the
    process backend ships one kernel to its pool workers and reuses it
    for every level of a probe.
    """

    def __init__(
        self,
        dims: Sequence[int],
        strides: Sequence[int],
        configs: "ConfigurationSet | Sequence[tuple[int, ...]]",
    ) -> None:
        """Build from the table geometry and the configuration set.

        ``configs`` may be a
        :class:`~repro.core.configurations.ConfigurationSet` or any
        sequence of configuration tuples (canonical order).
        """
        self.dims = np.asarray(tuple(dims), dtype=np.int64)
        self.strides = np.asarray(tuple(strides), dtype=np.int64)
        raw = configs.configs if hasattr(configs, "configs") else tuple(configs)
        d = len(self.dims)
        if raw:
            self.cfg_matrix = np.asarray(raw, dtype=np.int64).reshape(len(raw), d)
        else:
            self.cfg_matrix = np.zeros((0, d), dtype=np.int64)
        #: Flat-index offset of each configuration: ``dot(s, strides)``.
        self.offsets = self.cfg_matrix @ self.strides
        #: Component sum of each configuration — a config can only apply
        #: to states of an anti-diagonal at or above that level, which
        #: lets level-aware callers skip whole passes (see :meth:`update`).
        self.cfg_level_sums = self.cfg_matrix.sum(axis=1)

    @classmethod
    def for_problem(
        cls,
        problem: "DPProblem",
        configs: "ConfigurationSet | None" = None,
    ) -> "LevelKernel":
        """Kernel for one :class:`~repro.core.dp.DPProblem` (enumerates
        the configuration set unless one is supplied)."""
        if configs is None:
            configs = problem.configurations()
        return cls(problem.dims, problem.strides(), configs)

    @property
    def num_configs(self) -> int:
        """``|C|`` — vectorized passes per level."""
        return len(self.offsets)

    def allocate_table(self, sigma: int) -> np.ndarray:
        """Fresh ``int64`` table: all-infeasible except ``OPT(0) = 0``."""
        table = np.full(sigma, KERNEL_INFEASIBLE, dtype=np.int64)
        table[0] = 0
        return table

    def init_table(self, table: np.ndarray) -> None:
        """Initialize an externally allocated table (e.g. shared memory)
        in place to the all-infeasible / ``OPT(0) = 0`` state."""
        table[:] = KERNEL_INFEASIBLE
        table[0] = 0

    def applicable_configs(self, level: int) -> int:
        """``|C_l|`` — configurations whose component sum fits within
        anti-diagonal ``level`` (the passes a level-aware update runs)."""
        return int(np.count_nonzero(self.cfg_level_sums <= level))

    def update(
        self,
        table: np.ndarray,
        flats: np.ndarray,
        *,
        level: int | None = None,
        count_applicable: bool = False,
    ) -> np.ndarray | None:
        """Compute one chunk of one anti-diagonal, in place.

        ``flats`` are flat indices whose predecessors (strictly earlier
        anti-diagonals) are already final; chunks of the same level are
        disjoint, so concurrent calls need no locking — the argument that
        makes the paper's OpenMP loop race-free.

        ``level`` (the chunk's anti-diagonal index, when the caller knows
        it) prunes configuration passes: a configuration with component
        sum above the level cannot be ``<=`` any of its states, so its
        pass is skipped wholesale.  The result is bit-identical — the
        skipped passes contribute nothing.

        With ``count_applicable`` the per-state ``|C_v|`` (configurations
        passing the componentwise bound — what Alg. 3's per-state
        enumeration pays for) is returned for the simulated machine's
        per-state cost fidelity; otherwise returns ``None``.
        """
        flats = np.ascontiguousarray(flats, dtype=np.int64)
        counts = np.zeros(len(flats), dtype=np.int64) if count_applicable else None
        if len(flats) == 0:
            return counts
        if level is None:
            config_ids = range(len(self.offsets))
        else:
            config_ids = np.nonzero(self.cfg_level_sums <= level)[0]
        # Unrank the whole chunk at once: (q, d) matrix of count vectors.
        vmat = (flats[:, None] // self.strides[None, :]) % self.dims[None, :]
        best = np.full(len(flats), KERNEL_INFEASIBLE, dtype=np.int64)
        for ci in config_ids:
            mask = vmat >= self.cfg_matrix[ci]
            mask = mask.all(axis=1)
            if not mask.any():
                continue
            if counts is not None:
                counts += mask
            # Gather predecessors; masked-out lanes read index 0 (always
            # valid) and are discarded by the where().
            preds = table[np.where(mask, flats - self.offsets[ci], 0)]
            np.minimum(
                best, np.where(mask, preds + 1, KERNEL_INFEASIBLE), out=best
            )
        np.minimum(best, KERNEL_INFEASIBLE, out=best)
        zero = flats == 0
        if zero.any():
            best[zero] = 0
        table[flats] = best
        return counts

    def sweep(
        self, table: np.ndarray, levels: Sequence[np.ndarray]
    ) -> None:
        """Serial whole-table fill: one :meth:`update` per anti-diagonal
        (levels after the zeroth, whose single state the allocation set),
        with level-pruned configuration passes."""
        for level, flats in enumerate(levels[1:], start=1):
            self.update(table, flats, level=level)
