"""Speculative (multi-probe) bisection — an extension beyond the paper.

The paper parallelizes only the DP and leaves the bisection loop
sequential, arguing the DP dominates.  That leaves one axis unexploited:
the ``O(log max t)`` *rounds* of the bisection are themselves a serial
chain.  When more processors are available than one DP can absorb
(narrow tables, ``q_l < P``), they can instead evaluate **several target
makespans concurrently** — classic speculative execution, since all but
one probe's result merely sharpens the interval.

With ``g`` simultaneous probes per round the interval shrinks by a
factor of ``g + 1`` per round instead of 2, so the number of rounds
drops from ``log2 W`` to ``log_{g+1} W``.  Feasibility is monotone in
the target, which makes the reduction sound: after a round, the new
interval is (largest infeasible probe, smallest feasible probe].

This module is engine-agnostic — probes are issued through the same
``DecisionSolver`` used by :mod:`repro.core.bisection` — and the
``repro.experiments`` ablation benchmark charges concurrent probes the
cost of the *most expensive* one, which is what a g-way parallel machine
would pay.

Execution modes of :func:`speculative_bisect`
---------------------------------------------
Without an executor the probes of a round run sequentially (the original
study semantics).  With an ``executor`` the round's probes are dispatched
concurrently — one :meth:`~repro.parallel.executor.Executor.map_chunks`
call per round — and with a separate ``decision_solver`` the expensive
certification (the schedule-carrying solve of each new best target) is
*pipelined*: submitted asynchronously so it overlaps the next round's DP
sweeps, and awaited only when the interval closes.  Tracer note: probe
work runs off-thread, so per-probe spans are recorded on the driver
after the round's barrier (zero-duration, attributes carry the measured
seconds); the tracer itself is never shared with workers.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.core.bisection import (
    BisectionIteration,
    BisectionOutcome,
    DecisionSolver,
    _initial_upper_bound,
    bisect_target_makespan,
)
from repro.core.bounds import makespan_bounds
from repro.core.context import SolveContext
from repro.core.dp import DPProblem, DPResult
from repro.core.rounding import RoundedInstance, round_instance
from repro.model.instance import Instance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.executor import Executor

#: Standalone default mirrors :func:`bisect_target_makespan`: the
#: paper-faithful search (no warm start).
_FAITHFUL_CONTEXT = SolveContext(warm_start=False)


def probe_targets(lower: int, upper: int, branching: int) -> list[int]:
    """Evenly spaced probe targets strictly inside ``[lower, upper)``.

    Returns up to ``branching`` distinct integers ``t`` with
    ``lower <= t < upper``, splitting the interval into ``branching + 1``
    near-equal parts (the generalization of the midpoint).

    >>> probe_targets(0, 8, 3)
    [2, 4, 6]
    >>> probe_targets(10, 12, 3)
    [10, 11]
    """
    if branching < 1:
        raise ValueError("branching must be >= 1")
    if lower >= upper:
        return []
    width = upper - lower
    targets = sorted(
        {lower + (width * (i + 1)) // (branching + 1) for i in range(branching)}
    )
    return [t for t in targets if lower <= t < upper] or [lower]


def speculative_bisect(
    instance: Instance,
    k: int,
    solver: DecisionSolver,
    branching: int = 3,
    job_cap: int | None = None,
    *,
    ctx: SolveContext | None = None,
    executor: "Executor | None" = None,
    decision_solver: DecisionSolver | None = None,
) -> BisectionOutcome:
    """Multi-probe bisection: ``branching`` concurrent targets per round.

    Semantics match :func:`repro.core.bisection.bisect_target_makespan`
    exactly — same final target, same certification — only the probe
    schedule differs.  ``branching=1`` degenerates to standard bisection.

    Parameters
    ----------
    solver:
        The *certifying* solver: its :class:`DPResult` must carry machine
        configurations, because the outcome's packing comes from it.
    decision_solver:
        Optional cheaper solver for the interval-narrowing probes (no
        schedule tracking).  When given, every probe runs it, and the
        certification of each new best feasible target runs ``solver``
        *pipelined* on the executor — overlapping the next round's DP
        sweeps — or inline at the end when no executor is available.
    executor:
        Runs each round's probes concurrently (and hosts the pipelined
        certification).  ``None`` keeps the sequential probe loop.
        Probe closures execute off-thread, so the tracer only ever runs
        on the calling thread: per-probe spans are recorded post-barrier.
    ctx:
        Standalone default is the paper-faithful search (no warm start),
        matching :func:`bisect_target_makespan`; ``ctx.warm_start`` seeds
        the upper bound from LPT, ``ctx.check_deadline`` is honoured once
        per round, and the tracer receives one ``spec_round`` span per
        round with the probes nested beneath.  Win/waste accounting goes
        through :meth:`~repro.core.context.SolveContext.record_metric`
        (``speculative.probe_wins`` — probes that moved a bound —
        vs ``speculative.probe_waste``).
    """
    ctx = ctx if ctx is not None else _FAITHFUL_CONTEXT
    dsolver = decision_solver if decision_solver is not None else solver
    m = instance.num_machines
    lb = makespan_bounds(instance).lower
    ub = _initial_upper_bound(instance, ctx.warm_start, ctx.ub_hint)
    best: tuple[RoundedInstance, DPResult] | None = None
    trace: list[BisectionIteration] = []
    certify_future = None
    certify_target: int | None = None

    def run_probe(target: int):
        """One decision probe (runs off-thread when an executor is set)."""
        t0 = time.perf_counter()
        rounded = round_instance(instance, target, k)
        problem = DPProblem(
            rounded.class_sizes, rounded.class_counts, target, job_cap=job_cap
        )
        result = dsolver(problem, m)
        feasible = result.opt is not None and result.opt <= m
        return target, rounded, problem, result, feasible, time.perf_counter() - t0

    def certify(target: int) -> tuple[RoundedInstance, DPResult]:
        """Schedule-carrying solve of a feasible target (the packing the
        outcome returns)."""
        rounded = round_instance(instance, target, k)
        problem = DPProblem(
            rounded.class_sizes, rounded.class_counts, target, job_cap=job_cap
        )
        return rounded, solver(problem, m)

    while lb < ub:
        ctx.check()
        targets = probe_targets(lb, ub, branching)
        with ctx.span(
            "spec_round", lower=lb, upper=ub, probes=len(targets)
        ) as round_span:
            if executor is not None:
                results = executor.map_chunks(run_probe, targets)
            else:
                results = [run_probe(t) for t in targets]
            for target, rounded, problem, result, feasible, seconds in results:
                with ctx.span("probe", target=target, lower=lb, upper=ub) as sp:
                    sp.set(
                        feasible=feasible,
                        opt=result.opt,
                        table_size=problem.table_size,
                        num_long_jobs=rounded.num_long_jobs,
                        num_classes=rounded.num_classes,
                        seconds=round(seconds, 6),
                    )
                trace.append(
                    BisectionIteration(
                        target=target,
                        lower=lb,
                        upper=ub,
                        feasible=feasible,
                        opt=result.opt,
                        table_size=problem.table_size,
                        num_long_jobs=rounded.num_long_jobs,
                        num_classes=rounded.num_classes,
                    )
                )
            # Monotonicity: feasibility flips at most once along the
            # sorted probes.  New interval:
            # (largest infeasible, smallest feasible].
            feasible_probes = [r for r in results if r[4]]
            infeasible_probes = [r for r in results if not r[4]]
            wins = 0
            if feasible_probes:
                wins += 1
                target, rounded, _problem, result, _, _ = min(
                    feasible_probes, key=lambda r: r[0]
                )
                ub = target
                best = (rounded, result)
                if decision_solver is not None and executor is not None:
                    # Pipeline: certify the new best target while the
                    # next round's probes sweep their DP tables.
                    certify_future = executor.submit(certify, target)
                    certify_target = target
                    ctx.record_metric("speculative.certify_submitted")
            if infeasible_probes:
                wins += 1
                lb = max(r[0] for r in infeasible_probes) + 1
            round_span.set(new_lower=lb, new_upper=ub, wins=wins)
        ctx.count("probes", len(targets))
        ctx.record_metric("speculative.rounds")
        ctx.record_metric("speculative.probes", len(targets))
        ctx.record_metric("speculative.probe_wins", wins)
        ctx.record_metric("speculative.probe_waste", len(targets) - wins)

    needs_iteration = best is None or best[0].target != ub
    if decision_solver is not None:
        # The decision probes carried no schedule; adopt the pipelined
        # certification if it matches the final target, else solve now.
        if certify_future is not None and certify_target == ub:
            rounded, result = certify_future.result()
        else:
            rounded, result = certify(ub)
        best = (rounded, result)
    elif needs_iteration:
        rounded, result = certify(ub)
        best = (rounded, result)
    rounded, result = best
    if result.opt is None or result.opt > m:  # pragma: no cover - guard
        raise AssertionError(
            f"DP infeasible at the guaranteed-feasible target {ub}"
        )
    if needs_iteration:
        trace.append(
            BisectionIteration(
                target=ub,
                lower=lb,
                upper=ub,
                feasible=True,
                opt=result.opt,
                table_size=DPProblem(
                    rounded.class_sizes, rounded.class_counts, ub, job_cap=job_cap
                ).table_size,
                num_long_jobs=rounded.num_long_jobs,
                num_classes=rounded.num_classes,
            )
        )
    return BisectionOutcome(
        final_target=rounded.target,
        rounded=rounded,
        dp_result=result,
        iterations=trace,
    )


def simulate_speculative_ptas(
    instance: Instance,
    eps: float,
    num_workers: int,
    branching: int,
    cost_model=None,
):
    """Simulated end-to-end comparison: speculative vs standard bisection.

    Models a machine of ``P = num_workers`` processors that, each round,
    splits into ``branching`` groups of ``P // branching`` processors;
    every group runs one probe's wavefront DP concurrently, so the round
    costs the *maximum* of the probes' simulated parallel times.  The
    baseline is the standard (single-probe, all-``P``) parallel PTAS on
    the same machine.

    Returns a :class:`SpeculativeStudy` with both parallel-op totals, the
    shared serial-op total (the sequential PTAS's work), and the round
    counts — the data behind the speculative-bisection ablation.
    """
    from repro.core.dp import DPProblem as _DPProblem
    from repro.core.parallel_dp import parallel_dp
    from repro.core.rounding import accuracy_parameter
    from repro.simcore.costmodel import CostModel
    from repro.simcore.machine import SimulatedMachine

    if branching < 1:
        raise ValueError("branching must be >= 1")
    if num_workers < branching:
        raise ValueError(
            "need at least one processor per concurrent probe "
            f"(P={num_workers} < g={branching})"
        )
    model = cost_model if cost_model is not None else CostModel()
    k = accuracy_parameter(eps)

    # Standard parallel PTAS on all P workers (the baseline).
    standard_machine = SimulatedMachine(num_workers, model, record_traces=False)

    def standard_solver(problem: _DPProblem, m: int):
        return parallel_dp(
            problem,
            num_workers,
            "simulated",
            limit=m,
            track_schedule=True,
            machine=standard_machine,
            cost_model=model,
        )

    standard_outcome = bisect_target_makespan(instance, k, standard_solver)

    # Speculative run: each probe gets P // g processors.  A probe's cost
    # is computed by one simulated wavefront on that sub-machine; probes
    # that share a bisection interval ran concurrently, so each round
    # costs the maximum over its probes.
    per_probe_workers = num_workers // branching
    probe_cost_cache: dict[int, float] = {}

    def probe_parallel_ops(target: int) -> float:
        if target not in probe_cost_cache:
            from repro.core.rounding import round_instance

            rounded = round_instance(instance, target, k)
            problem = _DPProblem(
                rounded.class_sizes, rounded.class_counts, target
            )
            machine = SimulatedMachine(
                per_probe_workers, model, record_traces=False
            )
            parallel_dp(
                problem,
                per_probe_workers,
                "simulated",
                limit=instance.num_machines,
                track_schedule=False,
                machine=machine,
                cost_model=model,
            )
            probe_cost_cache[target] = machine.parallel_ops
        return probe_cost_cache[target]

    def plain_solver(problem: _DPProblem, m: int):
        return parallel_dp(
            problem,
            per_probe_workers,
            "simulated",
            limit=m,
            track_schedule=True,
            cost_model=model,
        )

    outcome = speculative_bisect(instance, k, plain_solver, branching)
    per_round: dict[tuple[int, int], float] = {}
    for it in outcome.iterations:
        key = (it.lower, it.upper)
        per_round[key] = max(
            per_round.get(key, 0.0), probe_parallel_ops(it.target)
        )
    speculative_parallel_ops = sum(per_round.values())

    return SpeculativeStudy(
        branching=branching,
        num_workers=num_workers,
        serial_ops=standard_machine.serial_ops,
        standard_parallel_ops=standard_machine.parallel_ops,
        speculative_parallel_ops=speculative_parallel_ops,
        standard_probes=len(standard_outcome.iterations),
        speculative_rounds=len(per_round),
        final_target=outcome.final_target,
        standard_final_target=standard_outcome.final_target,
    )


class SpeculativeStudy:
    """Results of :func:`simulate_speculative_ptas` (plain record)."""

    def __init__(
        self,
        branching: int,
        num_workers: int,
        serial_ops: float,
        standard_parallel_ops: float,
        speculative_parallel_ops: float,
        standard_probes: int,
        speculative_rounds: int,
        final_target: int,
        standard_final_target: int,
    ) -> None:
        self.branching = branching
        self.num_workers = num_workers
        self.serial_ops = serial_ops
        self.standard_parallel_ops = standard_parallel_ops
        self.speculative_parallel_ops = speculative_parallel_ops
        self.standard_probes = standard_probes
        self.speculative_rounds = speculative_rounds
        self.final_target = final_target
        self.standard_final_target = standard_final_target

    @property
    def standard_speedup(self) -> float:
        return self.serial_ops / self.standard_parallel_ops

    @property
    def speculative_speedup(self) -> float:
        return self.serial_ops / self.speculative_parallel_ops


def count_rounds(outcome: BisectionOutcome, branching: int) -> int:
    """Number of *parallel rounds* a g-way speculative run used, counting
    each group of up to ``branching`` consecutive probes sharing a
    (lower, upper) interval as one round."""
    rounds = 0
    seen: set[tuple[int, int]] = set()
    for it in outcome.iterations:
        key = (it.lower, it.upper)
        if key not in seen:
            seen.add(key)
            rounds += 1
    return rounds
