"""Line-by-line reference transcription of the paper's Algorithm 1.

The production pipeline (:mod:`repro.core.ptas`) is modular — bounds,
bisection, rounding, DP, reconstruction live in separate units.  This
module instead transcribes Algorithm 1 as one function whose control flow
follows the paper's pseudocode line numbers, trading every engineering
nicety for auditability.  It exists for one purpose: the test suite runs
it against the modular pipeline on randomized instances and demands
identical makespans and targets, so any refactoring drift in the modular
code is caught against the paper itself.

Deviations from the pseudocode, all noted inline:

* Line 25's ``DP(N, T)`` is the memoized transcription of Eq. 4 (the
  paper's Algorithm 2 is recursive; a literal exponential recursion
  without memoization would not terminate in useful time even on the
  test instances).
* The paper's multiset operations on processing *times* are implemented
  on job *indices* so the final schedule can name jobs; where the paper
  removes "a job of time t from L", we remove the first such index.
"""

from __future__ import annotations

import math

from repro.model.instance import Instance
from repro.model.schedule import Schedule


def algorithm1(instance: Instance, eps: float) -> Schedule:
    """The PTAS exactly as printed (Alg. 1), modulo the notes above."""
    if eps <= 0:
        raise ValueError("eps must be positive")
    n = instance.num_jobs
    m = instance.num_machines
    times = instance.processing_times

    # Lines 2-3: bounds.
    lb = max(math.ceil(sum(times) / m), max(times))  # Line 2
    ub = math.ceil(sum(times) / m) + max(times)  # Line 3
    k = math.ceil(1.0 / eps)  # Line 4

    best_solution: tuple[int, list[list[int]], list[int]] | None = None

    # Lines 5-30: bisection search for the target makespan T.
    while lb < ub:  # Line 5
        target = (ub + lb) // 2  # Line 6
        short: list[int] = []  # Line 7 (S)
        long_: list[int] = []  # Line 8 (L)
        for j in range(n):  # Lines 9-13
            if times[j] * k <= target:
                short.append(j)
            else:
                long_.append(j)
        unit = math.ceil(target / (k * k))
        # Lines 15-18: round long jobs down to multiples of unit; we keep
        # (job, rounded size) pairs instead of a bare multiset.
        rounded: list[tuple[int, int]] = []
        for j in long_:
            i = times[j] // unit  # the i with i*unit <= t < (i+1)*unit
            rounded.append((j, i * unit))
        # Lines 19-24: the count vector N over the k^2 classes.
        counts = [0] * (k * k)
        for _, size in rounded:
            counts[size // unit - 1] += 1

        # Line 25: OPT = DP(N, T) — memoized Eq. 4.
        active = [
            (i + 1) * unit for i in range(k * k) if counts[i] > 0
        ]
        vector = tuple(counts[i] for i in range(k * k) if counts[i] > 0)
        opt_value, assignment = _dp(tuple(active), vector, target)

        if opt_value <= m:  # Line 27
            ub = target  # Line 28
            best_solution = (target, _machines_from(assignment), long_[:])
        else:
            lb = target + 1  # Line 30

    if best_solution is None or best_solution[0] != ub:
        # The paper's loop ends with LB == UB and implicitly has the
        # schedule for that target; regenerate it if the last accepted
        # probe was not UB (or none was accepted).
        target = ub
        short = [j for j in range(n) if times[j] * k <= target]
        long_ = [j for j in range(n) if times[j] * k > target]
        unit = math.ceil(target / (k * k))
        counts = [0] * (k * k)
        for j in long_:
            counts[times[j] // unit - 1] += 1
        active = [(i + 1) * unit for i in range(k * k) if counts[i] > 0]
        vector = tuple(counts[i] for i in range(k * k) if counts[i] > 0)
        opt_value, assignment = _dp(tuple(active), vector, target)
        assert opt_value <= m, "UB must be feasible"
        best_solution = (target, _machines_from(assignment), long_)

    target, machine_classes, long_jobs = best_solution
    unit = math.ceil(target / (k * k))
    short = [j for j in range(n) if times[j] * k <= target]

    # Lines 31-40: replace rounded jobs by original long jobs.  The paper
    # scans L for a job with rounded_size <= t < rounded_size + unit.
    remaining = list(long_jobs)
    machines: list[list[int]] = [[] for _ in range(m)]
    loads = [0] * m  # Line 32 (w_i)
    for i, class_sizes in enumerate(machine_classes):  # Lines 31-40
        for size in class_sizes:
            for j in remaining:  # Lines 34-39
                if size <= times[j] < size + unit:
                    machines[i].append(j)
                    loads[i] += times[j]
                    remaining.remove(j)
                    break
            else:  # pragma: no cover - DP witness guarantees a match
                raise AssertionError("no long job matches the rounded slot")
    assert not remaining, "every long job must be placed"

    # Lines 41-51: LPT for the short jobs.
    short.sort(key=lambda j: (-times[j], j))  # Line 41
    for j in short:  # Lines 42-50
        best_machine = 0
        best_load = loads[0]
        for i in range(1, m):  # Lines 45-48
            if loads[i] < best_load:
                best_load = loads[i]
                best_machine = i
        machines[best_machine].append(j)  # Line 49
        loads[best_machine] += times[j]  # Line 50
    return Schedule(instance, machines)  # Line 51


def _dp(
    sizes: tuple[int, ...], counts: tuple[int, ...], target: int
) -> tuple[int, list[tuple[int, ...]]]:
    """Memoized Eq. 4 over the compressed class vector.

    Returns ``OPT(counts)`` and one optimal list of machine
    configurations (Line 26's "obtain schedule from DP-table").
    """
    if not counts or not any(counts):
        return 0, []
    # Machine configurations C (Eq. 3), enumerated over the class box.
    configs: list[tuple[int, ...]] = []

    def enumerate_configs(c: int, budget: int, current: list[int]) -> None:
        if c == len(sizes):
            if any(current):
                configs.append(tuple(current))
            return
        max_count = min(counts[c], budget // sizes[c])
        for count in range(max_count + 1):
            current.append(count)
            enumerate_configs(c + 1, budget - count * sizes[c], current)
            current.pop()

    enumerate_configs(0, target, [])

    memo: dict[tuple[int, ...], tuple[int, tuple[int, ...] | None]] = {}

    import sys

    need = sum(counts) * 2 + 64
    if sys.getrecursionlimit() < need:
        sys.setrecursionlimit(need)

    def opt(v: tuple[int, ...]) -> tuple[int, tuple[int, ...] | None]:
        if not any(v):
            return 0, None
        hit = memo.get(v)
        if hit is not None:
            return hit
        best = (10**9, None)
        for cfg in configs:
            if all(s <= vc for s, vc in zip(cfg, v)):
                sub, _ = opt(tuple(vc - s for vc, s in zip(v, cfg)))
                if sub + 1 < best[0]:
                    best = (sub + 1, cfg)
        memo[v] = best
        return best

    value, _ = opt(counts)
    # Backtrack the chosen configurations.
    chosen: list[tuple[int, ...]] = []
    v = counts
    while any(v):
        _, cfg = opt(v)
        assert cfg is not None
        chosen.append(cfg)
        v = tuple(vc - s for vc, s in zip(v, cfg))
    # Convert configurations into per-machine rounded-size lists.
    expanded: list[tuple[int, ...]] = []
    for cfg in chosen:
        slot: list[int] = []
        for c, count in enumerate(cfg):
            slot.extend([sizes[c]] * count)
        expanded.append(tuple(slot))
    return value, expanded


def _machines_from(assignment: list[tuple[int, ...]]) -> list[list[int]]:
    return [list(slot) for slot in assignment]
