"""Bisection search over target makespans (Alg. 1, lines 5–30).

The PTAS is a *dual approximation*: for a candidate makespan ``T`` the
rounded DP answers "can the long jobs be packed into at most ``m``
machines within ``T``?".  Bisection narrows ``[LB, UB]`` — feasible
targets shrink ``UB`` to ``T``, infeasible ones raise ``LB`` to ``T+1`` —
until ``LB == UB``.  Because the DP is exact on the *rounded* jobs and
rounding only shrinks processing times, feasibility is monotone in ``T``
and the final ``UB`` is a valid (rounded) packing target whose un-rounded
schedule is within the PTAS guarantee.

Termination: the initial width is at most ``max t`` (Eqs. 1–2) and halves
every iteration, so the loop runs ``O(log max t)`` times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.bounds import makespan_bounds
from repro.core.dp import DPProblem, DPResult
from repro.core.rounding import RoundedInstance, round_instance
from repro.model.instance import Instance

#: A solver takes the rounded problem of one iteration and the machine
#: budget ``m``, and must report ``opt=None`` when ``OPT(N) > m``.
DecisionSolver = Callable[[DPProblem, int], DPResult]


@dataclass(frozen=True)
class BisectionIteration:
    """Record of one probe of the bisection search."""

    target: int
    lower: int
    upper: int
    feasible: bool
    opt: int | None
    table_size: int
    num_long_jobs: int
    num_classes: int


@dataclass
class BisectionOutcome:
    """Final state of the search: the certified target and its packing."""

    final_target: int
    rounded: RoundedInstance
    dp_result: DPResult
    iterations: list[BisectionIteration] = field(default_factory=list)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)


def bisect_target_makespan(
    instance: Instance,
    k: int,
    solver: DecisionSolver,
    job_cap: int | None = None,
) -> BisectionOutcome:
    """Run the dual-approximation bisection and return the last feasible
    probe (whose target equals the final ``UB = LB``).

    ``solver`` is invoked once per probe; its ``DPResult`` must carry the
    machine configurations when feasible so the schedule can be
    reconstructed without re-solving.  ``job_cap`` (typically ``k - 1``)
    is threaded into every probe's :class:`DPProblem` — the guarantee fix
    of :mod:`repro.core.configurations`; the cap never cuts off a true
    schedule because each long job strictly exceeds ``T/k``.
    """
    m = instance.num_machines
    bounds = makespan_bounds(instance)
    lb, ub = bounds.lower, bounds.upper
    best: tuple[RoundedInstance, DPResult] | None = None
    trace: list[BisectionIteration] = []
    while lb < ub:
        target = (lb + ub) // 2
        rounded = round_instance(instance, target, k)
        problem = DPProblem(
            rounded.class_sizes, rounded.class_counts, target, job_cap=job_cap
        )
        result = solver(problem, m)
        feasible = result.opt is not None and result.opt <= m
        trace.append(
            BisectionIteration(
                target=target,
                lower=lb,
                upper=ub,
                feasible=feasible,
                opt=result.opt,
                table_size=problem.table_size,
                num_long_jobs=rounded.num_long_jobs,
                num_classes=rounded.num_classes,
            )
        )
        if feasible:
            ub = target
            best = (rounded, result)
        else:
            lb = target + 1
    if best is None or best[0].target != ub:
        # Either the interval was empty to begin with, or every probe
        # below the final UB was infeasible.  The final UB itself is
        # always feasible (an LPT schedule fits within Eq. 2's bound and
        # rounding only shrinks loads), so one more solve certifies it.
        rounded = round_instance(instance, ub, k)
        problem = DPProblem(
            rounded.class_sizes, rounded.class_counts, ub, job_cap=job_cap
        )
        result = solver(problem, m)
        if result.opt is None or result.opt > m:  # pragma: no cover - guard
            raise AssertionError(
                f"DP infeasible at the guaranteed-feasible target {ub}"
            )
        trace.append(
            BisectionIteration(
                target=ub,
                lower=lb,
                upper=ub,
                feasible=True,
                opt=result.opt,
                table_size=problem.table_size,
                num_long_jobs=rounded.num_long_jobs,
                num_classes=rounded.num_classes,
            )
        )
        best = (rounded, result)
    rounded, result = best
    return BisectionOutcome(
        final_target=rounded.target,
        rounded=rounded,
        dp_result=result,
        iterations=trace,
    )
