"""Bisection search over target makespans (Alg. 1, lines 5–30).

The PTAS is a *dual approximation*: for a candidate makespan ``T`` the
rounded DP answers "can the long jobs be packed into at most ``m``
machines within ``T``?".  Bisection narrows ``[LB, UB]`` — feasible
targets shrink ``UB`` to ``T``, infeasible ones raise ``LB`` to ``T+1`` —
until ``LB == UB``.  Because the DP is exact on the *rounded* jobs and
rounding only shrinks processing times, feasibility is monotone in ``T``
and the final ``UB`` is a valid (rounded) packing target whose un-rounded
schedule is within the PTAS guarantee.

Termination: the initial width is at most ``max t`` (Eqs. 1–2) and halves
every iteration, so the loop runs ``O(log max t)`` times.

Warm starts (deviation from the paper, ``warm_start=True``)
-----------------------------------------------------------
Two cheap accelerations shrink the work per solve without changing the
certified target (property-tested against the faithful search):

* **LPT-seeded upper bound.**  Eq. 2 is Graham's worst case; the actual
  LPT makespan is never larger and usually much closer to optimal, and
  any target ``>=`` it is feasible for the rounded DP (rounding only
  shrinks loads, and a machine of load ``<= T`` holds fewer than ``k``
  long jobs).  Seeding ``UB = min(Eq. 2, LPT)`` removes the top of the
  search interval — fewer probes, each the expensive part.
* **Rounding-bucket reuse.**  Consecutive probes whose targets share a
  rounding bucket — same quantum ``ceil(T/k^2)`` and same long/short
  split — produce identical class structure, so the previous probe's
  :class:`~repro.core.rounding.RoundedInstance` is reused with only the
  target swapped instead of re-scanning all ``n`` jobs.

Every probe threads the machine budget through to the solver as its
decision ``limit``, so early-exit engines (``frontier``, ``dominance``)
stop at depth ``m`` — the callable contract of :data:`DecisionSolver`.
Both accelerations certify an equally valid target: every ``T >= OPT``
is feasible for the rounded DP (rounding only shrinks loads), so any
bracketing interval converges to a feasible target ``<= OPT`` and the
``(1 + eps)`` guarantee holds unchanged.  Below ``OPT`` the rounding
bucket varies with ``T``, so the warm search may certify a *different*
(equally valid) target than the faithful one — property-tested in
``tests/test_bisection.py``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable

from repro.core.bounds import makespan_bounds
from repro.core.context import SolveContext, resolve_context
from repro.core.dp import DPProblem, DPResult
from repro.core.rounding import RoundedInstance, round_instance, rounding_unit
from repro.model.instance import Instance

#: Default context of the *standalone* bisection: the paper-faithful
#: search (no warm start) — callers coming through :func:`repro.core.ptas.ptas`
#: get warm starts from its own default context instead.
_FAITHFUL_CONTEXT = SolveContext(warm_start=False)

#: A solver takes the rounded problem of one iteration and the machine
#: budget ``m``, and must report ``opt=None`` when ``OPT(N) > m``.
DecisionSolver = Callable[[DPProblem, int], DPResult]


@dataclass(frozen=True)
class BisectionIteration:
    """Record of one probe of the bisection search."""

    target: int
    lower: int
    upper: int
    feasible: bool
    opt: int | None
    table_size: int
    num_long_jobs: int
    num_classes: int


@dataclass
class BisectionOutcome:
    """Final state of the search: the certified target and its packing."""

    final_target: int
    rounded: RoundedInstance
    dp_result: DPResult
    iterations: list[BisectionIteration] = field(default_factory=list)
    #: Probes whose rounding was reused from the previous probe (same
    #: rounding bucket) instead of recomputed; 0 for the faithful search.
    rounding_reuses: int = 0

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)


class _RoundingCache:
    """Per-search memo of the last probe's rounding.

    A new target reuses the cached :class:`RoundedInstance` (with only
    ``target`` replaced) when it lands in the same *rounding bucket*:
    identical quantum ``ceil(T/k^2)`` and identical long/short split.
    The split is checked in O(1) via the cached extreme processing times
    — every short job must stay short (``t*k <= T``) and every long job
    long (``t*k > T``).
    """

    def __init__(self, instance: Instance, k: int) -> None:
        self._instance = instance
        self._k = k
        self._rounded: RoundedInstance | None = None
        self._max_short = 0
        self._min_long: int | None = None
        self.reuses = 0

    def round(self, target: int) -> RoundedInstance:
        """Rounding for ``target``, reusing the previous bucket if valid."""
        k = self._k
        prev = self._rounded
        if (
            prev is not None
            and rounding_unit(target, k) == prev.unit
            and self._max_short * k <= target
            and (self._min_long is None or self._min_long * k > target)
        ):
            self.reuses += 1
            self._rounded = dataclasses.replace(prev, target=target)
            return self._rounded
        rounded = round_instance(self._instance, target, k)
        times = self._instance.processing_times
        self._rounded = rounded
        self._max_short = max((times[j] for j in rounded.short_jobs), default=0)
        long_times = [
            times[j] for members in rounded.class_members for j in members
        ]
        self._min_long = min(long_times) if long_times else None
        return rounded


def _initial_upper_bound(
    instance: Instance, warm_start: bool, ub_hint: int | None = None
) -> int:
    """Eq. 2, tightened by the actual LPT makespan when warm-starting.

    ``ub_hint`` (see :class:`repro.core.context.SolveContext.ub_hint`)
    tightens further: any *real* schedule's makespan is a feasible
    rounded-DP target (rounding only shrinks loads), so a caller that
    already holds one — a live schedule between re-solves — hands its
    makespan here and the search starts below both Eq. 2 and LPT.
    """
    upper = makespan_bounds(instance).upper
    if not warm_start:
        return upper
    from repro.algorithms.lpt import lpt

    upper = min(upper, lpt(instance).makespan)
    if ub_hint is not None:
        upper = min(upper, int(ub_hint))
    return upper


def bisect_target_makespan(
    instance: Instance,
    k: int,
    solver: DecisionSolver,
    job_cap: int | None = None,
    *,
    ctx: SolveContext | None = None,
    warm_start: bool | None = None,
    check_deadline: Callable[[], None] | None = None,
) -> BisectionOutcome:
    """Run the dual-approximation bisection and return the last feasible
    probe (whose target equals the final ``UB = LB``).

    ``solver`` is invoked once per probe; its ``DPResult`` must carry the
    machine configurations when feasible so the schedule can be
    reconstructed without re-solving.  ``job_cap`` (typically ``k - 1``)
    is threaded into every probe's :class:`DPProblem` — the guarantee fix
    of :mod:`repro.core.configurations`; the cap never cuts off a true
    schedule because each long job strictly exceeds ``T/k``.

    ``ctx`` (a :class:`~repro.core.context.SolveContext`) carries every
    cross-cutting concern: ``ctx.warm_start`` selects between the
    paper-faithful search (the standalone default here) and the
    LPT-seeded + rounding-reuse search (module docstring);
    ``ctx.check_deadline`` is invoked before every probe (the expensive
    unit of work) and cancels the solve by raising — typically
    :class:`repro.service.requests.DeadlineExceeded`; ``ctx.tracer``
    receives one ``probe`` span per iteration with a nested ``round``
    span (the solver adds ``enumerate``/``dp``/``level`` spans beneath).

    The bare ``warm_start=`` / ``check_deadline=`` kwargs are deprecated
    shims that build a context and warn; pass ``ctx=`` in new code.
    """
    ctx = resolve_context(
        ctx,
        warm_start=warm_start,
        check_deadline=check_deadline,
        default=_FAITHFUL_CONTEXT,
        caller="bisect_target_makespan",
    )
    tracer = ctx.tracer
    m = instance.num_machines
    lb = makespan_bounds(instance).lower
    ub = _initial_upper_bound(instance, ctx.warm_start, ctx.ub_hint)
    cache = _RoundingCache(instance, k)
    do_round = cache.round if ctx.warm_start else (
        lambda target: round_instance(instance, target, k)
    )

    def probe(target: int, lower: int, upper: int) -> tuple[RoundedInstance, DPResult, bool]:
        """One traced bisection probe: round, solve, record."""
        with tracer.span("probe", target=target, lower=lower, upper=upper) as sp:
            with tracer.span("round", target=target, k=k):
                rounded = do_round(target)
            problem = DPProblem(
                rounded.class_sizes, rounded.class_counts, target, job_cap=job_cap
            )
            result = solver(problem, m)
            feasible = result.opt is not None and result.opt <= m
            sp.set(
                feasible=feasible,
                opt=result.opt,
                table_size=problem.table_size,
                num_long_jobs=rounded.num_long_jobs,
                num_classes=rounded.num_classes,
            )
        tracer.count("probes")
        trace.append(
            BisectionIteration(
                target=target,
                lower=lower,
                upper=upper,
                feasible=feasible,
                opt=result.opt,
                table_size=problem.table_size,
                num_long_jobs=rounded.num_long_jobs,
                num_classes=rounded.num_classes,
            )
        )
        return rounded, result, feasible

    best: tuple[RoundedInstance, DPResult] | None = None
    trace: list[BisectionIteration] = []
    while lb < ub:
        ctx.check()
        target = (lb + ub) // 2
        rounded, result, feasible = probe(target, lb, ub)
        if feasible:
            ub = target
            best = (rounded, result)
        else:
            lb = target + 1
    if best is None or best[0].target != ub:
        # Either the interval was empty to begin with, or every probe
        # below the final UB was infeasible.  The final UB itself is
        # always feasible (a real schedule — LPT's, or any within Eq. 2's
        # bound — fits, and rounding only shrinks loads), so one more
        # solve certifies it.
        ctx.check()
        rounded, result, feasible = probe(ub, lb, ub)
        if not feasible:  # pragma: no cover - guard
            raise AssertionError(
                f"DP infeasible at the guaranteed-feasible target {ub}"
            )
        best = (rounded, result)
    tracer.count("rounding_reuses", cache.reuses)
    rounded, result = best
    return BisectionOutcome(
        final_target=rounded.target,
        rounded=rounded,
        dp_result=result,
        iterations=trace,
        rounding_reuses=cache.reuses,
    )
