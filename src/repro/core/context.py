"""The unified solve context: one object carrying every cross-cutting
concern through the solver stack.

Before this module, each cross-cutting feature grew its own keyword
argument on every function between the entry point and the code that
needed it (``warm_start=``, ``check_deadline=``, next a tracer, then a
metrics handle, …).  :class:`SolveContext` replaces that kwarg sprawl:
``ptas`` / ``parallel_ptas`` / ``bisect_target_makespan`` / the DP
engines all accept a single ``ctx=`` and pass it down unchanged.

The context bundles

* ``check_deadline`` — zero-argument cancellation hook, invoked between
  bisection probes (raises, e.g.
  :class:`repro.service.requests.DeadlineExceeded`, to abandon a solve);
* ``warm_start`` — LPT-seeded bisection bound + rounding-bucket reuse;
* ``tracer`` — the :mod:`repro.obs` span tracer (default: the no-op
  :data:`~repro.obs.trace.NULL_TRACER`, which costs nanoseconds);
* ``metrics`` — an optional metrics registry (duck-typed against
  :class:`repro.service.metrics.MetricsRegistry`);
* ``executor`` — an externally owned worker pool for the wavefront
  backends (the service reuses one pool across requests).

The legacy ``warm_start=`` / ``check_deadline=`` kwargs survive as thin
deprecation shims (:func:`resolve_context` builds a context from them
and emits :class:`DeprecationWarning`); new code passes ``ctx=`` only.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable

from repro.obs.trace import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.executor import Executor


@dataclass(frozen=True)
class SolveContext:
    """Immutable bundle of cross-cutting solve concerns.

    Construct once per solve (the service builds one per request via
    :func:`repro.service.registry.build_solve_context`) and hand the same
    object to every layer.  Derive variants with
    :func:`dataclasses.replace`.

    >>> from repro.core.context import SolveContext
    >>> ctx = SolveContext(warm_start=False)
    >>> ctx.check()          # no deadline installed: a no-op
    >>> ctx.tracer.enabled   # default tracer is the no-op singleton
    False
    """

    #: Cancellation hook invoked between bisection probes; signals by
    #: raising.  ``None`` means the solve cannot be cancelled.
    check_deadline: Callable[[], None] | None = None
    #: LPT-seeded upper bound + rounding-bucket reuse in the bisection
    #: (see :mod:`repro.core.bisection`); the certified target is equally
    #: valid either way.
    warm_start: bool = True
    #: Optional caller-supplied upper bound for the bisection: the
    #: makespan of a *real, feasible* schedule of the same instance
    #: (e.g. a live schedule's current makespan, see
    #: :mod:`repro.online.live`).  Honoured only when ``warm_start`` is
    #: on; tightens the initial ``UB`` to ``min(Eq. 2, LPT, ub_hint)``.
    #: A value below the instance's true optimum is a caller bug — it
    #: would break the bisection's feasibility invariant.
    ub_hint: int | None = None
    #: Span tracer (:class:`repro.obs.trace.Tracer` or the no-op
    #: singleton).  Never ``None`` — use :data:`NULL_TRACER` to disable.
    tracer: Any = NULL_TRACER
    #: Optional metrics registry (duck-typed; kept out of the type system
    #: to avoid a core → service import cycle).
    metrics: Any = None
    #: Externally owned executor for the pooled wavefront backends; the
    #: solver never closes an executor it received here.
    executor: "Executor | None" = None

    def check(self) -> None:
        """Invoke the deadline hook, if any (raises to cancel)."""
        if self.check_deadline is not None:
            self.check_deadline()

    def span(self, kind: str, **attrs: Any):
        """Open a tracer span (no-op context manager when untraced)."""
        return self.tracer.span(kind, **attrs)

    def count(self, name: str, n: int = 1) -> None:
        """Bump a tracer counter (no-op when untraced)."""
        self.tracer.count(name, n)

    def record_metric(self, name: str, n: int = 1) -> None:
        """Bump a counter on *both* sinks: the tracer (so traced runs
        carry it into the Chrome-trace export's ``otherData.counters``)
        and the metrics registry, when one is attached (so untraced
        service requests still surface it through ``op=stats``).  Used
        for the operational counters of the parallel machinery —
        per-worker utilization, speculative-probe wins/waste."""
        self.tracer.count(name, n)
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)


#: Shared all-defaults context (warm start on, no deadline, no tracing)
#: used wherever a ``ctx=None`` argument needs resolving.
DEFAULT_CONTEXT = SolveContext()


def _warn_legacy(caller: str, kwarg: str) -> None:
    """Emit the deprecation warning for one legacy kwarg."""
    warnings.warn(
        f"{caller}({kwarg}=...) is deprecated; pass "
        f"ctx=SolveContext({kwarg}=...) instead, or use the repro.solve() "
        "facade — the one blessed entry point (docs/api.md)",
        DeprecationWarning,
        stacklevel=4,
    )


def resolve_context(
    ctx: SolveContext | None = None,
    *,
    warm_start: bool | None = None,
    check_deadline: Callable[[], None] | None = None,
    default: SolveContext | None = None,
    caller: str = "solver",
) -> SolveContext:
    """Resolve the effective :class:`SolveContext` for an entry point.

    ``ctx`` wins when given (else ``default``, else
    :data:`DEFAULT_CONTEXT`).  The legacy ``warm_start=`` /
    ``check_deadline=`` kwargs are honoured as deprecation shims: each
    non-``None`` value emits a :class:`DeprecationWarning` naming
    *caller* and overrides the corresponding context field.
    """
    base = ctx if ctx is not None else (default if default is not None else DEFAULT_CONTEXT)
    updates: dict[str, Any] = {}
    if warm_start is not None:
        _warn_legacy(caller, "warm_start")
        updates["warm_start"] = warm_start
    if check_deadline is not None:
        _warn_legacy(caller, "check_deadline")
        updates["check_deadline"] = check_deadline
    return replace(base, **updates) if updates else base
