"""The configuration-IP view of the rounded packing problem.

The DP of Eq. 4 has a classical alternative: the Gilmore–Gomory
*configuration integer program*

    minimize   sum_c x_c
    subject to sum_c x_c * c  =  N    (componentwise)
               x_c integer >= 0,

one variable per machine configuration — pick how many machines run each
configuration so the chosen multiset covers the job-count vector
exactly.  Solved here with scipy's HiGHS, it provides a *third*
independent oracle for ``OPT(N)`` (after the DP engines and the
assignment MILP on the original jobs), and it is how column-generation
approaches to `P || Cmax` scale the same subproblem far beyond what the
table DP can touch.

Used by the test suite for cross-validation and exposed for users who
want exact rounded packings on instances whose DP table would not fit in
memory.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.context import DEFAULT_CONTEXT, SolveContext
from repro.core.dp import DPProblem, DPResult, DPStats, _enumerate_traced


def solve_config_ilp(
    problem: DPProblem,
    *,
    limit: int | None = None,
    track_schedule: bool = True,
    collect_stats: bool = False,
    time_limit: float | None = None,
    ctx: SolveContext | None = None,
) -> DPResult:
    """Solve ``OPT(N)`` via the configuration integer program.

    Same contract as the :mod:`repro.core.dp` engines (``engine`` name
    ``"config-ilp"``); raises ``RuntimeError`` if HiGHS fails to prove
    optimality within ``time_limit``.
    """
    ctx = ctx if ctx is not None else DEFAULT_CONTEXT
    if not problem.counts or not any(problem.counts):
        stats = (
            DPStats(
                sigma=problem.table_size,
                num_levels=1,
                level_sizes=(1,),
                num_configs=0,
                states_computed=0,
                config_scans=0,
            )
            if collect_stats
            else None
        )
        return DPResult(opt=0, engine="config-ilp", stats=stats)

    configs = _enumerate_traced(problem, ctx)
    num_vars = len(configs)
    if num_vars == 0:  # pragma: no cover - singleton configs always exist
        raise AssertionError("no feasible configurations")
    d = len(problem.counts)

    # Coverage matrix: rows are classes, columns are configurations.
    a = np.zeros((d, num_vars))
    for col, cfg in enumerate(configs.configs):
        for row, count in enumerate(cfg):
            a[row, col] = count
    n_vec = np.asarray(problem.counts, dtype=float)

    # Each machine uses at most as many configs as there are jobs.
    upper = float(problem.num_long_jobs)
    options: dict[str, object] = {"mip_rel_gap": 0.0}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    result = milp(
        c=np.ones(num_vars),
        constraints=[LinearConstraint(a, lb=n_vec, ub=n_vec)],
        integrality=np.ones(num_vars),
        bounds=Bounds(lb=np.zeros(num_vars), ub=np.full(num_vars, upper)),
        options=options,
    )
    if result.x is None or result.status != 0:
        raise RuntimeError(
            f"HiGHS failed on the configuration IP (status={result.status}: "
            f"{result.message})"
        )
    counts = np.rint(result.x).astype(int)
    opt = int(counts.sum())
    stats = None
    if collect_stats:
        stats = DPStats(
            sigma=problem.table_size,
            num_levels=problem.num_long_jobs + 1,
            level_sizes=(),
            num_configs=num_vars,
            states_computed=0,
            config_scans=0,
        )
    if limit is not None and opt > limit:
        return DPResult(opt=None, engine="config-ilp", stats=stats)
    machine_configs: tuple[tuple[int, ...], ...] = ()
    if track_schedule:
        chosen: list[tuple[int, ...]] = []
        for cfg, multiplicity in zip(configs.configs, counts):
            chosen.extend([cfg] * int(multiplicity))
        machine_configs = tuple(chosen)
    return DPResult(
        opt=opt, machine_configs=machine_configs, engine="config-ilp", stats=stats
    )
