"""Graham's list scheduling (LS) — the 2-approximation baseline.

Jobs are taken from a list in order; each is started on the machine that
becomes available first (equivalently, the machine with the smallest
current load, since all jobs are released at time zero).  Graham (1966)
showed the makespan is at most ``2 - 1/m`` times optimal, and Helmbold &
Mayr showed producing LS schedules is P-complete — the reason the paper
parallelizes the PTAS rather than the greedy heuristics.

A binary heap keyed by ``(load, machine)`` gives ``O(n log m)`` total
work; the machine-index tiebreak reproduces the deterministic behaviour
of the usual sequential implementation.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.model.instance import Instance
from repro.model.schedule import Schedule


def list_scheduling(
    instance: Instance, order: Sequence[int] | None = None
) -> Schedule:
    """Schedule jobs in ``order`` (default: input order) greedily onto the
    least-loaded machine.

    >>> inst = Instance([2, 3, 4, 6], num_machines=2)
    >>> list_scheduling(inst).machine_loads
    (6, 9)
    """
    n = instance.num_jobs
    if order is None:
        order = range(n)
    else:
        if sorted(order) != list(range(n)):
            raise ValueError("order must be a permutation of all job indices")
    t = instance.processing_times
    heap: list[tuple[int, int]] = [(0, i) for i in range(instance.num_machines)]
    heapq.heapify(heap)
    groups: list[list[int]] = [[] for _ in range(instance.num_machines)]
    for j in order:
        load, machine = heapq.heappop(heap)
        groups[machine].append(j)
        heapq.heappush(heap, (load + t[j], machine))
    return Schedule(instance, groups)


def list_scheduling_worst_case_ratio(num_machines: int) -> float:
    """Graham's tight bound ``2 - 1/m`` for LS."""
    if num_machines < 1:
        raise ValueError("num_machines must be >= 1")
    return 2.0 - 1.0 / num_machines
