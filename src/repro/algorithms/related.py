"""Baselines for ``Q || Cmax`` — uniformly related machines.

Speed-aware analogues of the identical-machine greedy baselines:

* :func:`q_list_scheduling` — earliest-completion-time (ECT) list
  scheduling: each job goes to the machine that would *finish* it
  first, i.e. the one minimizing ``(load_i + t) / s_i``.  With all
  speeds equal this degenerates to least-loaded and reproduces
  :func:`~repro.algorithms.list_scheduling.list_scheduling` byte for
  byte (same assignment, same tie-breaks).
* :func:`q_lpt` — ECT over jobs sorted by non-increasing processing
  requirement; the uniform-machine LPT of Gonzalez, Ibarra & Sahni.

Guarantees:

* :func:`q_list_worst_case_ratio` — ``1 + (m - 1) * s_max / S`` where
  ``S = sum(s)``.  Proof sketch (Graham's argument, speed-scaled): let
  the last job to finish, with requirement ``t``, end at the makespan
  ``C`` on machine ``i``.  When it started, every machine ``k`` was
  busy until at least ``C - t / s_i``, else ECT would have finished the
  job earlier there (it considers *all* machines).  Summing work:
  ``W >= sum_k s_k * (C - t/s_i) - (m - 1) * t * (s_k/s_i caps)``; the
  clean form is ``C * S <= W + (m - 1) * t_max`` and
  ``OPT >= max(W / S, t_max / s_max)``, giving
  ``C / OPT <= 1 + (m - 1) * t_max / (S * OPT)
  <= 1 + (m - 1) * s_max / S``.  With equal speeds it collapses to
  Graham's tight ``2 - 1/m``.
* :func:`q_lpt_worst_case_ratio` — for equal speeds, the Della Croce &
  Scatamacchia bound (arXiv:1801.05489) already shipped for the ``P``
  path; otherwise the Gonzalez–Ibarra–Sahni LPT bound
  ``2 - 2/(m + 1)`` for uniform machines, capped by the list bound
  (LPT is an ECT list schedule, so the list bound always applies too).
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.lpt import dcs_lpt_bound
from repro.model.qinstance import QInstance, QSchedule


def q_list_scheduling(
    instance: QInstance, order: Sequence[int] | None = None
) -> QSchedule:
    """Schedule jobs in ``order`` (default: input order) greedily onto
    the machine with the earliest completion time for that job.

    Comparisons are exact integer cross-multiplications
    (``(load_i + t) * s_k`` vs ``(load_k + t) * s_i``), so the result is
    deterministic; ties break toward the lowest machine index, matching
    the identical-machine implementation.

    >>> inst = QInstance([6, 4, 2], speeds=[2, 1])
    >>> q_list_scheduling(inst).assignment
    ((0, 2), (1,))
    """
    n = instance.num_jobs
    if order is None:
        order = range(n)
    else:
        if sorted(order) != list(range(n)):
            raise ValueError("order must be a permutation of all job indices")
    t = instance.processing_times
    s = instance.speeds
    m = instance.num_machines
    loads = [0] * m
    groups: list[list[int]] = [[] for _ in range(m)]
    for j in order:
        tj = t[j]
        best = 0
        # Minimize (loads[i] + tj) / s[i]; strict < keeps the first
        # (lowest-index) minimizer, mirroring the (load, machine) heap
        # tie-break of the P path.
        for i in range(1, m):
            if (loads[i] + tj) * s[best] < (loads[best] + tj) * s[i]:
                best = i
        loads[best] += tj
        groups[best].append(j)
    return QSchedule(instance, groups)


def q_lpt(instance: QInstance) -> QSchedule:
    """ECT list scheduling over jobs sorted by non-increasing
    processing requirement (ties by job index) — uniform-machine LPT.

    >>> inst = QInstance([2, 3, 4, 6], speeds=[1, 1])
    >>> q_lpt(inst).machine_loads
    (8, 7)
    """
    return q_list_scheduling(instance, instance.sorted_jobs_desc())


def q_list_worst_case_ratio(speeds: Sequence[int]) -> float:
    """``1 + (m - 1) * max(s) / sum(s)`` — ECT list scheduling bound on
    uniform machines; equals Graham's ``2 - 1/m`` when speeds are equal.

    >>> q_list_worst_case_ratio([1, 1, 1, 1])
    1.75
    >>> q_list_worst_case_ratio([3, 1])
    1.75
    >>> q_list_worst_case_ratio([5])
    1.0
    """
    spd = [int(s) for s in speeds]
    if not spd or any(s <= 0 for s in spd):
        raise ValueError("speeds must be a non-empty sequence of positive ints")
    m = len(spd)
    return 1.0 + (m - 1) * max(spd) / sum(spd)


def q_lpt_worst_case_ratio(speeds: Sequence[int]) -> float:
    """Guarantee for :func:`q_lpt` given the machine speed vector.

    Equal speeds fall back to the tightened identical-machine LPT bound
    (:func:`~repro.algorithms.lpt.dcs_lpt_bound`); genuinely uniform
    speeds use ``min(2 - 2/(m + 1), q_list_worst_case_ratio(speeds))``
    — the Gonzalez–Ibarra–Sahni LPT bound, never worse than the plain
    list bound.

    >>> q_lpt_worst_case_ratio([1, 1])
    1.1666666666666667
    >>> q_lpt_worst_case_ratio([2, 1])  # min(2 - 2/3, 1 + 2/3)
    1.3333333333333335
    """
    spd = [int(s) for s in speeds]
    if not spd or any(s <= 0 for s in spd):
        raise ValueError("speeds must be a non-empty sequence of positive ints")
    m = len(spd)
    if min(spd) == max(spd):
        return dcs_lpt_bound(m)
    return min(2.0 - 2.0 / (m + 1), q_list_worst_case_ratio(spd))
