"""MULTIFIT (Coffman, Garey & Johnson 1978) — bin-packing based baseline.

MULTIFIT searches for the smallest machine *capacity* ``C`` such that
first-fit-decreasing (FFD) bin packing places all jobs into at most ``m``
bins of capacity ``C``.  The capacity is bisected for a fixed number of
iterations ``k`` starting from Graham-style bounds; the classical
analysis gives a worst-case ratio of ``1.22 + 2^-k`` (later sharpened to
13/11).  The paper's related-work section describes MULTIFIT as the
technique the Hochbaum–Shmoys PTAS generalizes, so it is included both as
a baseline and as a didactic stepping stone.
"""

from __future__ import annotations

import math

from repro.model.instance import Instance
from repro.model.schedule import Schedule


def ffd_pack(instance: Instance, capacity: int) -> list[list[int]] | None:
    """First-fit-decreasing bin packing of all jobs into bins of size
    ``capacity``.

    Returns the bins (lists of job indices) or ``None`` when more than
    ``m`` bins would be needed.  Jobs longer than the capacity make the
    packing fail immediately.
    """
    t = instance.processing_times
    m = instance.num_machines
    bins: list[list[int]] = []
    space: list[int] = []
    for j in instance.sorted_jobs_desc():
        if t[j] > capacity:
            return None
        for b in range(len(bins)):
            if space[b] >= t[j]:
                bins[b].append(j)
                space[b] -= t[j]
                break
        else:
            if len(bins) == m:
                return None
            bins.append([j])
            space.append(capacity - t[j])
    return bins


def multifit(instance: Instance, iterations: int = 10) -> Schedule:
    """Binary search on the FFD capacity for ``iterations`` rounds.

    The initial interval is ``[CL, CU]`` with
    ``CL = max(avg load, max t)`` and ``CU = max(2 * avg load, max t)``
    (Coffman et al.'s bounds: FFD at capacity ``CU`` always succeeds).

    >>> inst = Instance([2, 3, 4, 6], num_machines=2)
    >>> multifit(inst).makespan
    8
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    avg = instance.total_work / instance.num_machines
    cl = max(math.ceil(avg), instance.max_time)
    cu = max(math.ceil(2 * avg), instance.max_time)
    best = ffd_pack(instance, cu)
    assert best is not None, "FFD must succeed at the upper capacity bound"
    best_capacity = cu
    for _ in range(iterations):
        if cl >= cu:
            break
        c = (cl + cu) // 2
        packed = ffd_pack(instance, c)
        if packed is not None:
            best, best_capacity = packed, c
            cu = c
        else:
            cl = c + 1
    groups = best + [[] for _ in range(instance.num_machines - len(best))]
    schedule = Schedule(instance, groups)
    assert schedule.makespan <= best_capacity
    return schedule


def multifit_worst_case_ratio(iterations: int) -> float:
    """The classical guarantee ``1.22 + 2^-k`` after ``k`` iterations."""
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    return 1.22 + 2.0 ** (-iterations)
