"""Local-search post-optimization of schedules.

A practical complement to the baselines: starting from any schedule
(typically LPT's), repeatedly apply the two classical neighborhood moves
until no move improves the makespan:

* **move** — relocate one job from a critical (maximum-load) machine to
  another machine, when that lowers the critical load without creating a
  new, equally high one;
* **swap** — exchange a job on a critical machine with a shorter job on
  another machine under the same acceptance rule.

Descent terminates: every accepted move strictly reduces the sorted
load-vector lexicographically, a well-founded order.  The result is a
schedule at least as good as the input — often optimal on the easy
families — making ``lpt + local_search`` a strong cheap baseline that
the PTAS still has to beat on the adversarial instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.instance import Instance
from repro.model.schedule import Schedule


@dataclass(frozen=True)
class LocalSearchResult:
    schedule: Schedule
    moves_applied: int
    swaps_applied: int

    @property
    def makespan(self) -> int:
        return self.schedule.makespan


def _critical_machines(loads: list[int]) -> list[int]:
    peak = max(loads)
    return [i for i, w in enumerate(loads) if w == peak]


def improve(schedule: Schedule, max_rounds: int = 10_000) -> LocalSearchResult:
    """Steepest-acceptable descent from ``schedule``.

    ``max_rounds`` caps the number of accepted moves (a safety net; the
    lexicographic argument already guarantees termination).
    """
    inst = schedule.instance
    t = inst.processing_times
    groups = [list(g) for g in schedule.assignment]
    loads = [sum(t[j] for j in g) for g in groups]
    moves = swaps = 0

    def try_move() -> bool:
        nonlocal moves
        peak = max(loads)
        for src in _critical_machines(loads):
            for j in list(groups[src]):
                for dst in range(len(groups)):
                    if dst == src:
                        continue
                    if loads[dst] + t[j] < peak:
                        groups[src].remove(j)
                        groups[dst].append(j)
                        loads[src] -= t[j]
                        loads[dst] += t[j]
                        moves += 1
                        return True
        return False

    def try_swap() -> bool:
        nonlocal swaps
        peak = max(loads)
        for src in _critical_machines(loads):
            for j in list(groups[src]):
                for dst in range(len(groups)):
                    if dst == src:
                        continue
                    for j2 in list(groups[dst]):
                        delta = t[j] - t[j2]
                        if delta <= 0:
                            continue
                        if (
                            loads[src] - delta < peak
                            and loads[dst] + delta < peak
                        ):
                            groups[src].remove(j)
                            groups[dst].remove(j2)
                            groups[src].append(j2)
                            groups[dst].append(j)
                            loads[src] -= delta
                            loads[dst] += delta
                            swaps += 1
                            return True
        return False

    for _ in range(max_rounds):
        if not (try_move() or try_swap()):
            break
    return LocalSearchResult(
        schedule=Schedule(inst, groups), moves_applied=moves, swaps_applied=swaps
    )


def lpt_with_local_search(instance: Instance) -> Schedule:
    """The combined cheap baseline: LPT then descent.

    >>> from repro.model.instance import Instance
    >>> inst = Instance([5, 4, 3, 3, 3], num_machines=2)
    >>> lpt_with_local_search(inst).makespan
    9
    """
    from repro.algorithms.lpt import lpt

    return improve(lpt(instance)).schedule
