"""Classical sequential approximation algorithms for ``P || Cmax``.

These are the baselines of the paper's evaluation (§V) plus the MULTIFIT
algorithm its related-work section discusses:

* :func:`~repro.algorithms.list_scheduling.list_scheduling` — Graham's
  list scheduling, 2-approximation.
* :func:`~repro.algorithms.lpt.lpt` — longest processing time first,
  4/3-approximation.
* :func:`~repro.algorithms.multifit.multifit` — Coffman–Garey–Johnson
  MULTIFIT via binary search over FFD bin packing, 1.22-approximation.

:mod:`repro.algorithms.related` extends the greedy pair to uniformly
related machines (``Q || Cmax``): :func:`q_list_scheduling` (earliest
completion time) and :func:`q_lpt`, with speed-aware worst-case ratios.
"""

from repro.algorithms.list_scheduling import list_scheduling
from repro.algorithms.local_search import improve, lpt_with_local_search
from repro.algorithms.lpt import lpt
from repro.algorithms.multifit import multifit
from repro.algorithms.related import (
    q_list_scheduling,
    q_list_worst_case_ratio,
    q_lpt,
    q_lpt_worst_case_ratio,
)

__all__ = [
    "list_scheduling",
    "lpt",
    "multifit",
    "improve",
    "lpt_with_local_search",
    "q_list_scheduling",
    "q_lpt",
    "q_list_worst_case_ratio",
    "q_lpt_worst_case_ratio",
]
