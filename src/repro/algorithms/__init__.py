"""Classical sequential approximation algorithms for ``P || Cmax``.

These are the baselines of the paper's evaluation (§V) plus the MULTIFIT
algorithm its related-work section discusses:

* :func:`~repro.algorithms.list_scheduling.list_scheduling` — Graham's
  list scheduling, 2-approximation.
* :func:`~repro.algorithms.lpt.lpt` — longest processing time first,
  4/3-approximation.
* :func:`~repro.algorithms.multifit.multifit` — Coffman–Garey–Johnson
  MULTIFIT via binary search over FFD bin packing, 1.22-approximation.
"""

from repro.algorithms.list_scheduling import list_scheduling
from repro.algorithms.local_search import improve, lpt_with_local_search
from repro.algorithms.lpt import lpt
from repro.algorithms.multifit import multifit

__all__ = [
    "list_scheduling",
    "lpt",
    "multifit",
    "improve",
    "lpt_with_local_search",
]
