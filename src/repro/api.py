"""The ``repro.solve`` facade — the one blessed entry point.

Every solver in the library can be reached three ways: its own function
(:func:`repro.ptas`, :func:`repro.lpt`, …), the service wire path
(:class:`repro.service.SolveRequest`), and this facade.  The facade is
the documented, stable surface: it takes a validated instance of *any*
supported problem variant (:class:`repro.model.Instance` for
``P || Cmax``, :class:`repro.model.QInstance` for ``Q || Cmax``),
resolves the engine through the same registry the service uses —
including its per-problem capability checks — and returns the same
:class:`repro.service.SolveResult` the service would have answered with
(makespan, assignment, a-priori guarantee, elapsed time).

Cross-cutting concerns (deadline hooks, warm starts, tracing, metrics,
shared executors) travel in a single optional
:class:`repro.core.context.SolveContext`; the scattered legacy kwargs
(``warm_start=`` / ``check_deadline=``) on individual solver functions
are deprecated in favour of this path.

>>> import repro
>>> result = repro.solve(repro.Instance([4, 3, 3, 2], 2), engine="lpt")
>>> result.makespan
6
>>> q = repro.solve(repro.QInstance([6, 4, 3, 2], speeds=(3, 1)), engine="lpt")
>>> q.makespan
4.0
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.model.instance import Instance
from repro.model.problem import problem_of_instance
from repro.model.qinstance import QInstance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import SolveContext
    from repro.service.requests import SolveResult

__all__ = ["solve"]


def solve(
    instance: Instance | QInstance,
    engine: str = "ptas",
    *,
    eps: float = 0.3,
    ctx: "SolveContext | None" = None,
    dp_engine: str = "dominance",
    workers: int | str = 4,
    backend: str = "thread",
    mode: str = "wavefront",
    time_limit: float | None = None,
    request_id: str = "",
) -> "SolveResult":
    """Solve *instance* with the registry engine named *engine*.

    Parameters
    ----------
    instance:
        A validated :class:`~repro.model.Instance` (``p_cmax``) or
        :class:`~repro.model.QInstance` (``q_cmax``); the problem
        variant is inferred from the type.
    engine:
        Registry engine name (:func:`repro.service.available_engines`).
        The (engine, problem) pair is capability-checked:
        :class:`repro.service.UnsupportedProblemError` lists the valid
        pairs when the engine cannot solve the instance's variant.
    eps:
        Relative error for the PTAS engines (ignored by baselines).
    ctx:
        Optional :class:`~repro.core.context.SolveContext` carrying
        deadline hook, warm-start policy, tracer, metrics, executor.
    dp_engine / workers / backend / mode / time_limit:
        Engine tuning knobs, identical to their
        :class:`~repro.service.SolveRequest` fields.
    request_id:
        Echoed in the result (useful when feeding results into the
        service's cache/store tooling).

    Returns
    -------
    SolveResult
        ``status="ok"`` with makespan (int for ``p_cmax``, float for
        ``q_cmax``), assignment, and the engine's a-priori guarantee.
        Use :meth:`~repro.service.SolveResult.schedule` to reconstruct
        the validated schedule object.

    Raises
    ------
    repro.service.UnknownEngineError
        Unknown engine name (message lists valid names).
    repro.service.UnsupportedProblemError
        Known engine, unsupported problem variant (message lists valid
        pairs).
    """
    # Imported lazily: `repro.solve` must not drag the whole service
    # stack in at `import repro` time.
    from repro.service.registry import solve_to_result
    from repro.service.requests import SolveRequest

    problem = problem_of_instance(instance)
    speeds = instance.speeds if isinstance(instance, QInstance) else ()
    request = SolveRequest(
        times=instance.processing_times,
        machines=instance.num_machines,
        problem=problem,
        speeds=speeds,
        engine=engine,
        eps=eps,
        dp_engine=dp_engine,
        workers=workers,
        backend=backend,
        mode=mode,
        time_limit=time_limit,
        request_id=request_id,
    )
    return solve_to_result(request, ctx)
