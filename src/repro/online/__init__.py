"""Online streaming scheduler: per-tenant live ``P || Cmax`` schedules.

The paper's PTAS answers one static instance; real service traffic is a
*stream* per tenant — jobs arrive and depart, and the schedule must stay
good continuously.  This package keeps one :class:`LiveSchedule` per
tenant and splits the work into two price classes:

* **incremental repair** — O(log m) least-loaded placement per arrival
  (exactly the step LPT performs), tracked against the tightened LPT
  bound of Della Croce & Scatamacchia (arXiv:1801.05489,
  :func:`repro.algorithms.lpt.dcs_lpt_bound`);
* **full re-solve** — a warm-started PTAS run (the live makespan seeds
  the bisection's upper bound via
  :class:`repro.core.context.SolveContext.ub_hint`, and the service's
  permutation-invariant cache/store key space is reused) whenever the
  tracked approximation ratio drifts past the configured threshold.

:class:`SessionManager` hosts the sessions behind the service's
``op=stream`` wire protocol and persists snapshots durably through the
result store; :mod:`repro.online.replay` is the seeded traffic-replay
harness behind ``benchmarks/bench_online.py``.  See ``docs/online.md``.
"""

from repro.online.events import StreamEvent
from repro.online.live import LiveSchedule
from repro.online.replay import ReplayConfig, ReplayReport, generate_events, run_replay
from repro.online.session import SessionManager

__all__ = [
    "LiveSchedule",
    "SessionManager",
    "StreamEvent",
    "ReplayConfig",
    "ReplayReport",
    "generate_events",
    "run_replay",
]
