"""Seeded traffic-replay harness for the online scheduler.

The harness answers the question the static benchmarks cannot: *how
much PTAS work does incremental repair actually save on live traffic,
and at what cost in schedule quality?*  It generates a reproducible
event trace (Poisson or bursty arrivals over the existing workload
families, random departures) and drives the same trace through two
modes:

* ``incremental`` — the production drift policy: O(log m) repair per
  event, full re-solve only when the tracked ratio crosses the
  threshold (:class:`repro.online.live.LiveSchedule` defaults);
* ``scratch`` — the recompute-from-scratch baseline: automatic
  re-solves disabled (``drift_threshold=inf``) and an explicit full
  PTAS re-solve forced after *every* event.

Both modes end with :meth:`~repro.online.live.LiveSchedule.settle`, so
the final schedules carry the same certified ``1 + eps`` quality and
the solve counts compare like for like.  Every sampled point also runs
:func:`repro.model.verify.verify_schedule` — a replay whose schedule
ever goes inconsistent fails loudly, not statistically.

``benchmarks/bench_online.py`` records these reports into the
``online`` section of ``BENCH_dp.json``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.model.verify import verify_schedule
from repro.online.events import StreamEvent
from repro.online.live import LiveSchedule
from repro.workloads.generator import make_instance

__all__ = ["ReplayConfig", "ReplayReport", "generate_events", "run_replay"]

_ARRIVALS = ("poisson", "burst")
_MODES = ("incremental", "scratch")


@dataclass(frozen=True)
class ReplayConfig:
    """One reproducible traffic scenario (seed-determined end to end).

    Processing times are drawn from the named workload *family* (the
    same distributions as the static benchmarks); *arrival* picks the
    batching shape — ``poisson`` draws each batch size from
    ``Poisson(rate)`` (floored at 1), ``burst`` sends a
    ``burst_size``-job batch every ``burst_every`` events and singletons
    in between.  Each event is a departure with probability
    *depart_prob* (when jobs are live), removing 1–3 random jobs.
    """

    family: str = "u_100"
    machines: int = 4
    eps: float = 0.2
    num_events: int = 60
    arrival: str = "poisson"
    rate: float = 2.0
    burst_size: int = 6
    burst_every: int = 8
    depart_prob: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival not in _ARRIVALS:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; valid: {_ARRIVALS}"
            )
        if self.machines < 1:
            raise ValueError(f"machines must be >= 1, got {self.machines}")
        if self.num_events < 1:
            raise ValueError(f"num_events must be >= 1, got {self.num_events}")
        if not 0.0 <= self.depart_prob < 1.0:
            raise ValueError(
                f"depart_prob must be in [0, 1), got {self.depart_prob}"
            )


def generate_events(config: ReplayConfig) -> list[StreamEvent]:
    """The scenario's event trace — same config, same trace, always.

    Job ids are ``j0, j1, ...`` in arrival order; times come from a
    family-drawn pool (cycled if a pinned-size family yields fewer than
    needed).  The first event is always an arrival.
    """
    rng = np.random.default_rng(config.seed)
    pool_size = config.num_events * max(
        config.burst_size, int(config.rate * 3) + 1, 4
    )
    pool = make_instance(
        config.family, config.machines, pool_size, seed=config.seed
    ).processing_times
    events: list[StreamEvent] = []
    live: list[str] = []
    next_id = 0
    cursor = 0
    for i in range(config.num_events):
        if i > 0 and live and rng.random() < config.depart_prob:
            k = int(rng.integers(1, min(3, len(live)) + 1))
            picks = rng.choice(len(live), size=k, replace=False)
            victims = tuple(live[int(p)] for p in sorted(picks))
            for victim in victims:
                live.remove(victim)
            events.append(StreamEvent("remove", job_ids=victims))
            continue
        if config.arrival == "burst":
            size = config.burst_size if i % config.burst_every == 0 else 1
        else:
            size = max(1, int(rng.poisson(config.rate)))
        jobs = []
        for _ in range(size):
            jobs.append((f"j{next_id}", int(pool[cursor % len(pool)])))
            next_id += 1
            cursor += 1
        live.extend(job_id for job_id, _ in jobs)
        events.append(StreamEvent("add", jobs=tuple(jobs)))
    return events


@dataclass
class ReplayReport:
    """What one (trace, mode) run did, JSON-safe via :meth:`to_dict`.

    ``full_solves`` counts actual PTAS solver executions
    (``resolves - cached_resolves``) — the quantity the bench's >= 5x
    saving gate compares.  ``ratio_within_guarantee`` asserts the
    quality half of the deal: at every re-solve point the post-solve
    tracked ratio was at most the engine's guarantee.
    """

    mode: str
    num_events: int
    resolves: int
    cached_resolves: int
    full_solves: int
    repairs: int
    final_makespan: int
    final_ratio: float
    final_jobs: int
    snapshots_verified: int
    ratio_within_guarantee: bool
    settled: bool
    quality: list[dict[str, Any]] = field(default_factory=list)
    resolve_points: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (what the benchmark records per run)."""
        return {
            "mode": self.mode,
            "num_events": self.num_events,
            "resolves": self.resolves,
            "cached_resolves": self.cached_resolves,
            "full_solves": self.full_solves,
            "repairs": self.repairs,
            "final_makespan": self.final_makespan,
            "final_ratio": self.final_ratio,
            "final_jobs": self.final_jobs,
            "snapshots_verified": self.snapshots_verified,
            "ratio_within_guarantee": self.ratio_within_guarantee,
            "settled": self.settled,
            "quality": self.quality,
            "resolve_points": self.resolve_points,
        }


def run_replay(
    events: list[StreamEvent],
    *,
    machines: int,
    eps: float = 0.2,
    mode: str = "incremental",
    engine: str = "ptas",
    dp_engine: str = "dominance",
    drift_threshold: float | None = None,
    cache: Any = None,
    metrics: Any = None,
    verify_every: int = 10,
    sample_every: int = 1,
    tenant: str = "replay",
) -> ReplayReport:
    """Drive one event trace through a live schedule in *mode*.

    Raises ``AssertionError`` if any periodic schedule verification
    fails — replay results are only comparable when every intermediate
    schedule is semantically sound.
    """
    if mode not in _MODES:
        raise ValueError(f"unknown replay mode {mode!r}; valid: {_MODES}")
    live = LiveSchedule(
        tenant,
        machines,
        eps=eps,
        engine=engine,
        dp_engine=dp_engine,
        drift_threshold=math.inf if mode == "scratch" else drift_threshold,
        cache=cache,
        metrics=metrics,
    )
    quality: list[dict[str, Any]] = []
    snapshots_verified = 0
    for i, event in enumerate(events):
        if event.kind == "add":
            live.add_jobs(event.jobs)
        else:
            live.remove_jobs(event.job_ids)
        if mode == "scratch":
            live.resolve()
        if sample_every and i % sample_every == 0:
            quality.append(
                {
                    "event": i,
                    "num_jobs": live.num_jobs,
                    "makespan": live.makespan,
                    "ratio": round(live.tracked_ratio(), 6),
                }
            )
        if verify_every and i % verify_every == 0 and live.num_jobs:
            verify_schedule(live.schedule()).raise_if_failed()
            snapshots_verified += 1
    settled = live.settle(1.0 + eps)
    if live.num_jobs:
        verify_schedule(live.schedule()).raise_if_failed()
        snapshots_verified += 1
    guarantee_ok = all(
        point["ratio_after"] <= point["guarantee"] + 1e-9
        for point in live.resolve_log
    )
    return ReplayReport(
        mode=mode,
        num_events=len(events),
        resolves=live.resolves,
        cached_resolves=live.cached_resolves,
        full_solves=live.resolves - live.cached_resolves,
        repairs=live.repairs,
        final_makespan=live.makespan,
        final_ratio=round(live.tracked_ratio(), 6),
        final_jobs=live.num_jobs,
        snapshots_verified=snapshots_verified,
        ratio_within_guarantee=guarantee_ok,
        settled=settled,
        quality=quality,
        resolve_points=list(live.resolve_log),
    )
