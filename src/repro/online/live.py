"""One tenant's live schedule: incremental repair + drift-triggered re-solves.

The invariant this module maintains (property-tested with hypothesis in
``tests/test_online.py``): **after every applied event, the tracked
approximation ratio is at most the drift threshold** — by default the
Della Croce–Scatamacchia LPT bound
(:func:`repro.algorithms.lpt.dcs_lpt_bound`), floored at the PTAS
guarantee ``1 + eps`` (a threshold below what a re-solve can certify
would re-solve on every event).  Whenever an event pushes the ratio past
the threshold, a full warm-started PTAS re-solve fires *inside* that
event, so callers never observe a drifted schedule.

The tracked ratio is ``makespan / max(trivial LB, certified LB)``:

* the *trivial* lower bound is ``max(ceil(total/m), max t)``
  (:meth:`repro.model.instance.Instance.trivial_lower_bound`);
* the *certified* lower bound is stamped at each re-solve: a PTAS
  makespan ``C`` with guarantee ``1 + eps`` proves ``OPT >= C/(1+eps)``.
  Arrivals keep it valid (adding jobs never shrinks the optimum);
  departures reset it (the optimum may drop), leaving the trivial bound.

Re-solves reuse everything the service already has: the
permutation-invariant :class:`repro.service.cache.ResultCache` key
space (a tenant whose multiset of times recurs — or matches another
tenant's — is answered from cache without solving), and the previous
round's knowledge through the bisection's ``ub_hint`` — the live
makespan is a real schedule's makespan, hence a feasible rounded-DP
target, so the search starts below both Eq. 2 and a fresh LPT run.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Any, Callable, Iterable

from repro.algorithms.lpt import dcs_lpt_bound
from repro.core.context import SolveContext
from repro.model.instance import Instance
from repro.model.schedule import Schedule
from repro.service.cache import ResultCache
from repro.service.registry import solve_to_result
from repro.service.requests import SolveRequest

__all__ = ["LiveSchedule"]

#: Tolerance for the drift comparison (ratios are float quotients).
_EPS = 1e-9

#: Snapshot format version (bumped on incompatible layout changes).
SNAPSHOT_VERSION = 1


class LiveSchedule:
    """A mutable schedule absorbing arrival/departure events for one tenant.

    Parameters
    ----------
    tenant:
        Opaque tenant id — namespaces the per-tenant metrics
        (``tenant.<id>.resolves/repairs/ratio``) and the durable
        snapshot name.
    machines:
        Number of identical machines ``m``.
    eps:
        PTAS relative error of the re-solve engine.
    engine / dp_engine:
        Registry engine for re-solves (``ptas`` by default) and its
        sequential DP engine.
    drift_threshold:
        Re-solve when the tracked ratio exceeds this.  ``None`` (the
        default) means :func:`~repro.algorithms.lpt.dcs_lpt_bound`; the
        effective threshold is always floored at ``1 + eps`` (the best a
        re-solve can certify), and ``math.inf`` disables automatic
        re-solves entirely (the replay harness's from-scratch baseline
        forces its own).
    cache:
        Optional :class:`~repro.service.cache.ResultCache` shared with
        the service — re-solves read and write the same
        permutation-invariant key space as one-shot requests.
    metrics:
        Optional metrics registry (duck-typed); per-event gauges land
        under ``tenant.<id>.*``.
    """

    def __init__(
        self,
        tenant: str,
        machines: int,
        *,
        eps: float = 0.2,
        engine: str = "ptas",
        dp_engine: str = "dominance",
        drift_threshold: float | None = None,
        cache: ResultCache | None = None,
        metrics: Any = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if machines < 1:
            raise ValueError(f"machines must be >= 1, got {machines}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if drift_threshold is not None and drift_threshold < 1.0:
            raise ValueError(
                f"drift_threshold must be >= 1, got {drift_threshold}"
            )
        self.tenant = tenant
        self.machines = machines
        self.eps = eps
        self.engine = engine
        self.dp_engine = dp_engine
        self.drift_threshold = drift_threshold
        self.cache = cache
        self.metrics = metrics
        self._clock = clock

        self._times: dict[str, int] = {}
        self._machine_of: dict[str, int] = {}
        self._loads: list[int] = [0] * machines
        self._heap: list[tuple[int, int]] = [(0, i) for i in range(machines)]
        #: ``OPT >= cert_lb``, certified by the last re-solve (0 = none).
        self._cert_lb = 0.0
        self.events = 0
        self.repairs = 0
        self.resolves = 0
        self.cached_resolves = 0
        #: One record per re-solve: the drift that fired it and the
        #: certified state after it — the bench's quality audit trail.
        self.resolve_log: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def num_jobs(self) -> int:
        return len(self._times)

    @property
    def makespan(self) -> int:
        return max(self._loads) if self._times else 0

    @property
    def machine_loads(self) -> tuple[int, ...]:
        return tuple(self._loads)

    def trivial_lower_bound(self) -> int:
        """``max(ceil(total/m), max t)`` over the live job set (0 if empty)."""
        if not self._times:
            return 0
        total = sum(self._times.values())
        return max(-(-total // self.machines), max(self._times.values()))

    def tracked_ratio(self) -> float:
        """``makespan / max(trivial LB, certified LB)`` (1.0 when empty)."""
        if not self._times:
            return 1.0
        lower = max(float(self.trivial_lower_bound()), self._cert_lb)
        return self.makespan / lower if lower > 0 else 1.0

    @property
    def threshold(self) -> float:
        """The effective drift threshold (see class docstring)."""
        base = (
            self.drift_threshold
            if self.drift_threshold is not None
            else dcs_lpt_bound(self.machines)
        )
        return max(base, 1.0 + self.eps)

    def instance(self) -> Instance:
        """The live job multiset as an :class:`Instance` (canonical job
        order: ids sorted lexicographically)."""
        if not self._times:
            raise ValueError("empty live schedule has no instance")
        order = sorted(self._times)
        return Instance([self._times[j] for j in order], self.machines)

    def schedule(self) -> Schedule:
        """The current assignment as a validated :class:`Schedule`."""
        instance = self.instance()  # raises when empty
        order = sorted(self._times)
        index_of = {job_id: i for i, job_id in enumerate(order)}
        groups: list[list[int]] = [[] for _ in range(self.machines)]
        for job_id, machine in self._machine_of.items():
            groups[machine].append(index_of[job_id])
        return Schedule(instance, tuple(tuple(sorted(g)) for g in groups))

    def job_machine(self, job_id: str) -> int:
        """The machine currently hosting *job_id*."""
        return self._machine_of[job_id]

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def add_jobs(self, jobs: Iterable[tuple[str, int]]) -> int:
        """Apply one arrival event: place each job on the least-loaded
        machine (O(log m) each, longest first within the batch — the LPT
        order), then run the drift policy.  Returns the number of
        re-solves the event triggered (0 or 1)."""
        batch = [(str(job_id), int(t)) for job_id, t in jobs]
        seen: set[str] = set()
        for job_id, t in batch:
            if t < 1:
                raise ValueError(
                    f"job {job_id!r}: processing time must be >= 1, got {t}"
                )
            if job_id in self._times:
                raise ValueError(f"job {job_id!r} already in live schedule")
            if job_id in seen:
                raise ValueError(f"job {job_id!r} duplicated within the batch")
            seen.add(job_id)
        for job_id, t in sorted(batch, key=lambda item: (-item[1], item[0])):
            machine = self._pop_least_loaded()
            self._times[job_id] = t
            self._machine_of[job_id] = machine
            self._loads[machine] += t
            heapq.heappush(self._heap, (self._loads[machine], machine))
            self.repairs += 1
        self.events += 1
        return self._after_event()

    def remove_jobs(self, job_ids: Iterable[str]) -> int:
        """Apply one departure event; the certified lower bound is
        invalidated (the optimum may shrink).  Returns the number of
        re-solves the event triggered (0 or 1)."""
        ids = [str(job_id) for job_id in job_ids]
        seen: set[str] = set()
        for job_id in ids:
            if job_id not in self._times:
                raise ValueError(f"job {job_id!r} not in live schedule")
            if job_id in seen:
                raise ValueError(f"job {job_id!r} duplicated within the batch")
            seen.add(job_id)
        for job_id in ids:
            machine = self._machine_of.pop(job_id)
            self._loads[machine] -= self._times.pop(job_id)
            heapq.heappush(self._heap, (self._loads[machine], machine))
        self._cert_lb = 0.0
        self.events += 1
        return self._after_event()

    def _pop_least_loaded(self) -> int:
        """The machine with the smallest current load (lazy-deletion heap)."""
        while True:
            load, machine = heapq.heappop(self._heap)
            if load == self._loads[machine]:
                return machine

    def _after_event(self) -> int:
        """Drift policy + metrics, shared by both event kinds."""
        fired = 0
        if self._times and self.tracked_ratio() > self.threshold + _EPS:
            self.resolve()
            fired = 1
        self._publish_metrics()
        return fired

    # ------------------------------------------------------------------
    # Full re-solve
    # ------------------------------------------------------------------
    def resolve(self) -> bool:
        """Run a full warm-started PTAS re-solve and adopt its schedule.

        Returns ``True`` if the answer came from the shared cache (no
        solver ran).  After a resolve the tracked ratio is at most the
        engine's guarantee — the certified lower bound is stamped from
        the fresh makespan.  No-op on an empty schedule.
        """
        if not self._times:
            return False
        ratio_before = self.tracked_ratio()
        order = sorted(self._times)
        request = SolveRequest(
            times=tuple(self._times[j] for j in order),
            machines=self.machines,
            engine=self.engine,
            eps=self.eps,
            dp_engine=self.dp_engine,
            request_id=f"{self.tenant}-resolve-{self.resolves + 1}",
        )
        result = self.cache.get(request) if self.cache is not None else None
        cached = result is not None
        if result is None:
            ctx = SolveContext(
                warm_start=True, ub_hint=self.makespan, metrics=self.metrics
            )
            result = solve_to_result(request, ctx, clock=self._clock)
            if self.cache is not None:
                self.cache.put(request, result)
        assert result.assignment is not None
        for machine, group in enumerate(result.assignment):
            for position in group:
                self._machine_of[order[position]] = machine
        self._loads = [0] * self.machines
        for job_id, machine in self._machine_of.items():
            self._loads[machine] += self._times[job_id]
        self._heap = [(load, i) for i, load in enumerate(self._loads)]
        heapq.heapify(self._heap)
        guarantee = result.guarantee if result.guarantee else 1.0 + self.eps
        self._cert_lb = result.makespan / guarantee
        self.resolves += 1
        self.cached_resolves += int(cached)
        self.resolve_log.append(
            {
                "event": self.events,
                "num_jobs": self.num_jobs,
                "ratio_before": round(ratio_before, 6),
                "ratio_after": round(self.tracked_ratio(), 6),
                "makespan": self.makespan,
                "guarantee": guarantee,
                "cached": cached,
            }
        )
        self._publish_metrics()
        return cached

    def settle(self, target_ratio: float | None = None) -> bool:
        """Force a final drift check at *target_ratio* (default: the
        PTAS guarantee ``1 + eps``) — used at the end of a replay so the
        finished schedule carries the same certified quality a
        from-scratch recomputation would.  Returns whether a re-solve
        ran."""
        target = target_ratio if target_ratio is not None else 1.0 + self.eps
        if self._times and self.tracked_ratio() > target + _EPS:
            self.resolve()
            return True
        return False

    # ------------------------------------------------------------------
    # Durable snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Full JSON-safe session state (round-trips via :meth:`restore`)."""
        return {
            "version": SNAPSHOT_VERSION,
            "tenant": self.tenant,
            "machines": self.machines,
            "eps": self.eps,
            "engine": self.engine,
            "dp_engine": self.dp_engine,
            "drift_threshold": self.drift_threshold,
            "jobs": dict(self._times),
            "assignment": dict(self._machine_of),
            "events": self.events,
            "repairs": self.repairs,
            "resolves": self.resolves,
            "cached_resolves": self.cached_resolves,
            "cert_lb": self._cert_lb,
            "makespan": self.makespan,
            "ratio": round(self.tracked_ratio(), 6),
            "loads": list(self._loads),
        }

    @classmethod
    def restore(
        cls,
        snapshot: dict[str, Any],
        *,
        cache: ResultCache | None = None,
        metrics: Any = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "LiveSchedule":
        """Rebuild a live schedule from a :meth:`snapshot` payload.

        The certified lower bound survives the round trip — state is
        restored exactly as persisted, so the bound's proof still holds.
        """
        version = snapshot.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported live-schedule snapshot version {version!r}"
            )
        threshold = snapshot.get("drift_threshold")
        live = cls(
            str(snapshot["tenant"]),
            int(snapshot["machines"]),
            eps=float(snapshot["eps"]),
            engine=str(snapshot.get("engine", "ptas")),
            dp_engine=str(snapshot.get("dp_engine", "dominance")),
            drift_threshold=None if threshold is None else float(threshold),
            cache=cache,
            metrics=metrics,
            clock=clock,
        )
        jobs = {str(j): int(t) for j, t in snapshot.get("jobs", {}).items()}
        assignment = {
            str(j): int(m) for j, m in snapshot.get("assignment", {}).items()
        }
        if set(jobs) != set(assignment):
            raise ValueError("snapshot jobs and assignment disagree")
        for job_id, machine in assignment.items():
            if not 0 <= machine < live.machines:
                raise ValueError(
                    f"snapshot assigns job {job_id!r} to machine {machine} "
                    f"of {live.machines}"
                )
        live._times = jobs
        live._machine_of = assignment
        live._loads = [0] * live.machines
        for job_id, machine in assignment.items():
            live._loads[machine] += jobs[job_id]
        live._heap = [(load, i) for i, load in enumerate(live._loads)]
        heapq.heapify(live._heap)
        live._cert_lb = float(snapshot.get("cert_lb", 0.0))
        live.events = int(snapshot.get("events", 0))
        live.repairs = int(snapshot.get("repairs", 0))
        live.resolves = int(snapshot.get("resolves", 0))
        live.cached_resolves = int(snapshot.get("cached_resolves", 0))
        live._publish_metrics()
        return live

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _publish_metrics(self) -> None:
        if self.metrics is None:
            return
        prefix = f"tenant.{self.tenant}"
        self.metrics.gauge(f"{prefix}.ratio").set(round(self.tracked_ratio(), 6))
        self.metrics.gauge(f"{prefix}.resolves").set(float(self.resolves))
        self.metrics.gauge(f"{prefix}.repairs").set(float(self.repairs))
        self.metrics.gauge(f"{prefix}.jobs").set(float(self.num_jobs))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LiveSchedule(tenant={self.tenant!r}, m={self.machines}, "
            f"jobs={self.num_jobs}, makespan={self.makespan}, "
            f"ratio={self.tracked_ratio():.4f}, resolves={self.resolves})"
        )


# Re-exported for callers that want the inf sentinel without importing math.
INF_THRESHOLD = math.inf
