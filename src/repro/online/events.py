"""The event model of the online scheduler.

One :class:`StreamEvent` is one batch mutation of a tenant's live
schedule — either an arrival batch (``kind="add"``, ``jobs`` holds
``(job_id, processing_time)`` pairs) or a departure batch
(``kind="remove"``, ``job_ids`` names the leavers).  Batches, not
single jobs, are the unit because real traffic arrives bursty and the
repair policy places a batch in LPT order (longest first), which is
strictly better than arrival order at equal cost.

Events serialize to/from JSON-safe dicts (the replay harness records
traces of them) and convert 1:1 into the service's
:class:`repro.service.requests.StreamRequest` wire type.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.requests import StreamRequest

__all__ = ["StreamEvent"]

_KINDS = ("add", "remove")


@dataclass(frozen=True)
class StreamEvent:
    """One arrival or departure batch (see module docstring)."""

    kind: str
    jobs: tuple[tuple[str, int], ...] = ()
    job_ids: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}; valid: {_KINDS}")
        object.__setattr__(
            self, "jobs", tuple((str(j), int(t)) for j, t in self.jobs)
        )
        object.__setattr__(self, "job_ids", tuple(str(j) for j in self.job_ids))
        if self.kind == "add" and not self.jobs:
            raise ValueError("an 'add' event needs at least one job")
        if self.kind == "remove" and not self.job_ids:
            raise ValueError("a 'remove' event needs at least one job id")

    def to_dict(self) -> dict:
        """JSON-safe form (the replay harness's trace record)."""
        return {
            "kind": self.kind,
            "jobs": [[j, t] for j, t in self.jobs],
            "job_ids": list(self.job_ids),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamEvent":
        return cls(
            kind=str(data["kind"]),
            jobs=tuple((j, t) for j, t in data.get("jobs", ())),
            job_ids=tuple(data.get("job_ids", ())),
        )

    def to_stream_request(self, tenant: str, **session_kwargs) -> StreamRequest:
        """The wire form of this event for *tenant* (``op=stream``)."""
        action = "add_jobs" if self.kind == "add" else "remove_jobs"
        return StreamRequest(
            action=action,
            tenant=tenant,
            jobs=self.jobs,
            job_ids=self.job_ids,
            **session_kwargs,
        )
