"""Per-tenant session hosting behind the ``op=stream`` wire protocol.

:class:`SessionManager` is the single entry point both deployment
shapes share: the single-process :class:`repro.service.server.SolveService`
holds one, and each sharded pool worker holds its own (a tenant is
pinned to one worker by :func:`repro.service.sharding.tenant_shard`, so
the two never race on the same session).  ``apply`` serializes events
*per tenant* — the ordering contract the protocol promises — behind a
short-held manager lock guarding only the session table, so one
tenant's drift-triggered re-solve never blocks another tenant's
events.

Durable snapshots ride the result store's content-addressed trace
archive under the name ``online:<tenant>`` — ``open_session`` restores
from it when present, ``snapshot`` and ``close`` rewrite it.  Errors in
an event (duplicate job id, unknown tenant, ...) come back as
``status="error"`` stream results; the session survives them.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.online.live import LiveSchedule
from repro.service.requests import STATUS_ERROR, StreamRequest, StreamResult

__all__ = ["SessionManager", "snapshot_name"]


def snapshot_name(tenant: str) -> str:
    """The store trace-archive name of *tenant*'s durable snapshot."""
    return f"online:{tenant}"


class SessionManager:
    """Owns the live schedules of every open tenant session.

    Parameters mirror what the hosting service already has: *store*
    (durable snapshots — optional, sessions are memory-only without it),
    *cache* (shared permutation-invariant result cache, so tenant
    re-solves and one-shot requests answer each other), *metrics*
    (per-tenant gauges).
    """

    def __init__(
        self,
        *,
        store: Any = None,
        cache: Any = None,
        metrics: Any = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.store = store
        self.cache = cache
        self.metrics = metrics
        self._clock = clock
        self._sessions: dict[str, LiveSchedule] = {}
        #: Guards the session/lock tables only — never held across an
        #: event (a drift-triggered re-solve can be seconds long).
        self._lock = threading.Lock()
        #: One lock per tenant ever seen, kept for the manager's
        #: lifetime so waiters and re-openers always contend on the
        #: same object (the tables themselves are tiny).
        self._tenant_locks: dict[str, threading.Lock] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_sessions(self) -> int:
        return len(self._sessions)

    def tenants(self) -> tuple[str, ...]:
        """Sorted ids of the currently open sessions."""
        with self._lock:
            return tuple(sorted(self._sessions))

    def get(self, tenant: str) -> LiveSchedule | None:
        """The live schedule of *tenant*, or ``None`` if not open."""
        with self._lock:
            return self._sessions.get(tenant)

    # ------------------------------------------------------------------
    # The single entry point
    # ------------------------------------------------------------------
    def apply(self, request: StreamRequest) -> StreamResult:
        """Apply one stream event and report the post-event state.

        Never raises for per-event problems — *any* exception an event
        provokes becomes a ``status="error"`` result so the connection,
        the session, and (in the pool) the hosting worker stay usable.
        """
        with self._tenant_lock(request.tenant):
            try:
                return self._dispatch(request)
            except ValueError as exc:
                return self._error(request, str(exc))
            except Exception as exc:  # noqa: BLE001 — wire boundary
                return self._error(request, f"{type(exc).__name__}: {exc}")

    def _tenant_lock(self, tenant: str) -> threading.Lock:
        with self._lock:
            return self._tenant_locks.setdefault(tenant, threading.Lock())

    def _dispatch(self, request: StreamRequest) -> StreamResult:
        action = request.action
        if request.problem != "p_cmax":
            # Live schedules are built on the identical-machine
            # incremental-repair machinery; other variants are one-shot
            # only for now.  Reject with the supported set, mirroring
            # the registry's capability errors.
            return self._error(
                request,
                f"live sessions do not support problem {request.problem!r}; "
                "supported problems: p_cmax",
            )
        if action == "open_session":
            return self._open(request)
        with self._lock:
            live = self._sessions.get(request.tenant)
        if live is None:
            return self._error(
                request, f"no open session for tenant {request.tenant!r}"
            )
        if action == "add_jobs":
            live.add_jobs(request.jobs)
            return self._state(request, live)
        if action == "remove_jobs":
            live.remove_jobs(request.job_ids)
            return self._state(request, live)
        if action == "snapshot":
            snap = live.snapshot()
            if request.persist:
                self._persist(request.tenant, snap)
            return self._state(request, live, snapshot=snap)
        if action == "close":
            if request.persist:
                self._persist(request.tenant, live.snapshot())
            result = self._state(request, live)
            with self._lock:
                self._sessions.pop(request.tenant, None)
            self._retire_metrics(request.tenant)
            return result
        raise ValueError(f"unhandled stream action {action!r}")

    def _open(self, request: StreamRequest) -> StreamResult:
        with self._lock:
            live = self._sessions.get(request.tenant)
        if live is not None:
            # Idempotent: reopening an open session reports its state.
            return self._state(request, live)
        restored = False
        snap = self._load_snapshot(request.tenant) if request.persist else None
        if snap is not None:
            live = LiveSchedule.restore(
                snap, cache=self.cache, metrics=self.metrics, clock=self._clock
            )
            restored = True
        else:
            live = LiveSchedule(
                request.tenant,
                request.machines,
                eps=request.eps,
                engine=request.engine,
                dp_engine=request.dp_engine,
                drift_threshold=request.drift_threshold,
                cache=self.cache,
                metrics=self.metrics,
                clock=self._clock,
            )
        with self._lock:
            self._sessions[request.tenant] = live
        return self._state(request, live, restored=restored)

    def _retire_metrics(self, tenant: str) -> None:
        """Drop the closed tenant's gauges so ``op=stats`` stops
        reporting them (best-effort — the registry is duck-typed)."""
        remove = getattr(self.metrics, "remove_prefix", None)
        if callable(remove):
            remove(f"tenant.{tenant}.")

    # ------------------------------------------------------------------
    # Durable snapshots (store trace archive)
    # ------------------------------------------------------------------
    def _persist(self, tenant: str, snap: dict) -> None:
        if self.store is not None:
            self.store.archive_trace(snapshot_name(tenant), snap)

    def _load_snapshot(self, tenant: str) -> dict | None:
        if self.store is None:
            return None
        name = snapshot_name(tenant)
        if name not in self.store.trace_names():
            return None
        return self.store.load_archived_trace(name)

    # ------------------------------------------------------------------
    # Result builders
    # ------------------------------------------------------------------
    @staticmethod
    def _state(
        request: StreamRequest,
        live: LiveSchedule,
        *,
        snapshot: dict | None = None,
        restored: bool = False,
    ) -> StreamResult:
        return StreamResult(
            request_id=request.request_id,
            tenant=request.tenant,
            action=request.action,
            makespan=live.makespan,
            ratio=round(live.tracked_ratio(), 6),
            resolves=live.resolves,
            repairs=live.repairs,
            num_jobs=live.num_jobs,
            restored=restored,
            snapshot=snapshot,
        )

    @staticmethod
    def _error(request: StreamRequest, message: str) -> StreamResult:
        return StreamResult(
            request_id=request.request_id,
            tenant=request.tenant,
            action=request.action,
            status=STATUS_ERROR,
            error=message,
        )
