"""repro — parallel approximation algorithms for ``P || Cmax``.

A production-grade reproduction of *"A Parallel Approximation Algorithm
for Scheduling Parallel Identical Machines"* (L. Ghalami & D. Grosu,
IPPS 2017): the Hochbaum–Shmoys PTAS, its wavefront-parallel dynamic
program for shared-memory machines, the classical baselines (LS, LPT,
MULTIFIT), exact solvers standing in for CPLEX, the paper's workload
generators, and a full experiment harness regenerating every figure and
table of the evaluation.

Quickstart
----------
>>> from repro import Instance, parallel_ptas, lpt, solve_exact
>>> inst = Instance([9, 8, 7, 6, 5, 5, 4, 3, 2, 1], num_machines=3)
>>> result = parallel_ptas(inst, eps=0.3, num_workers=4)
>>> result.makespan <= lpt(inst).makespan
True
>>> result.makespan <= 1.3 * solve_exact(inst, "brute").makespan
True
"""

from repro.algorithms import list_scheduling, lpt, multifit
from repro.core import PTASResult, parallel_ptas, ptas
from repro.exact import ExactResult, solve_exact
from repro.model import Instance, Schedule
from repro.workloads import make_instance, uniform_instance

__version__ = "1.0.0"

__all__ = [
    "Instance",
    "Schedule",
    "ptas",
    "parallel_ptas",
    "PTASResult",
    "list_scheduling",
    "lpt",
    "multifit",
    "solve_exact",
    "ExactResult",
    "make_instance",
    "uniform_instance",
    "__version__",
]
