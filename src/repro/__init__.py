"""repro — parallel approximation algorithms for machine scheduling.

A production-grade reproduction of *"A Parallel Approximation Algorithm
for Scheduling Parallel Identical Machines"* (L. Ghalami & D. Grosu,
IPPS 2017): the Hochbaum–Shmoys PTAS, its wavefront-parallel dynamic
program for shared-memory machines, the classical baselines (LS, LPT,
MULTIFIT), exact solvers standing in for CPLEX, the paper's workload
generators, and a full experiment harness regenerating every figure and
table of the evaluation.

The library is organised around first-class *problem variants*:

* ``p_cmax`` — identical machines (:class:`Instance` /
  :class:`Schedule`), the paper's problem, solvable by every engine;
* ``q_cmax`` — uniformly related machines (:class:`QInstance` /
  :class:`QSchedule`), with speed-aware list scheduling and LPT
  (:mod:`repro.algorithms.related`) as the proving workload.

Quickstart
----------
The one blessed entry point is :func:`repro.solve` — it infers the
problem variant from the instance type and dispatches through the same
engine registry the service uses:

>>> import repro
>>> inst = repro.Instance([9, 8, 7, 6, 5, 5, 4, 3, 2, 1], num_machines=3)
>>> repro.solve(inst, engine="ptas", eps=0.3).makespan <= 1.3 * 17
True
>>> q = repro.QInstance([6, 4, 3, 2], speeds=(3, 1))
>>> repro.solve(q, engine="lpt").makespan
4.0

Individual solver functions remain available for direct use:

>>> from repro import parallel_ptas, lpt, solve_exact
>>> result = parallel_ptas(inst, eps=0.3, num_workers=4)
>>> result.makespan <= lpt(inst).makespan
True
"""

from repro.algorithms import list_scheduling, lpt, multifit, q_list_scheduling, q_lpt
from repro.api import solve
from repro.core import PTASResult, parallel_ptas, ptas
from repro.exact import ExactResult, solve_exact
from repro.model import (
    Instance,
    QInstance,
    QSchedule,
    Schedule,
    available_problems,
    get_problem,
    problem_of_instance,
    verify_schedule,
)
from repro.workloads import make_instance, uniform_instance

__version__ = "1.0.0"

__all__ = [
    "Instance",
    "Schedule",
    "QInstance",
    "QSchedule",
    "solve",
    "ptas",
    "parallel_ptas",
    "PTASResult",
    "list_scheduling",
    "lpt",
    "multifit",
    "q_list_scheduling",
    "q_lpt",
    "solve_exact",
    "ExactResult",
    "available_problems",
    "get_problem",
    "problem_of_instance",
    "verify_schedule",
    "make_instance",
    "uniform_instance",
    "__version__",
]
