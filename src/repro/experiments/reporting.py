"""Plain-text rendering and CSV export of experiment results.

The paper presents its results as line plots (speedup vs cores), bar
charts (approximation ratios) and tables.  A terminal reproduction
renders the same data as aligned ASCII tables — one row per series point
— and optionally writes CSV next to them so plots can be regenerated with
any tool.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Sequence


def format_value(value: object, precision: int = 3) -> str:
    """Human formatting: floats get fixed precision, the rest ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e6 or (0 < abs(value) < 1e-3):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render an aligned text table.

    >>> print(ascii_table(["a", "b"], [[1, 2.5], [10, 0.25]]))
    a  | b
    ---+------
    1  | 2.500
    10 | 0.250
    """
    cells = [[format_value(v, precision) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    out.write("\n")
    out.write("-+-".join("-" * w for w in widths))
    for row in cells:
        out.write("\n")
        out.write(" | ".join(v.ljust(w) for v, w in zip(row, widths)).rstrip())
    return out.getvalue()


def write_csv(
    path: str | Path, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> Path:
    """Write rows as CSV; returns the path for chaining."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return p


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Render multiple named series over shared x values (one line-plot
    panel of the paper) as a table: one row per x, one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return ascii_table(headers, rows, precision=precision, title=title)
