"""Terminal line plots for speedup curves.

The paper's figures are line charts; :func:`line_plot` renders the same
series as a Unicode-free ASCII grid so the benchmark suite's saved
panels show *curves*, not just tables.  One glyph per series, points
marked at the sampled x positions, linear y axis with printed ticks.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_MARKS = "*o+x@%&$"


def line_plot(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
    title: str | None = None,
) -> str:
    """Render named series over shared x values as an ASCII chart.

    Points are plotted at their scaled positions; collisions print the
    later series' mark.  A legend maps marks to series names.
    """
    if not x_values:
        raise ValueError("x_values must be non-empty")
    if width < 10 or height < 4:
        raise ValueError("plot must be at least 10x4 characters")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(x_values)} xs"
            )
    all_y = [y for ys in series.values() for y in ys]
    if not all_y:
        raise ValueError("need at least one series")
    y_min = min(0.0, min(all_y))
    y_max = max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x_values), max(x_values)
    x_span = (x_max - x_min) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        col = round((x - x_min) / x_span * (width - 1))
        row = round((y - y_min) / (y_max - y_min) * (height - 1))
        return height - 1 - row, col

    for idx, (name, ys) in enumerate(series.items()):
        mark = _MARKS[idx % len(_MARKS)]
        # Connect consecutive points with linear interpolation.
        for (x0, y0), (x1, y1) in zip(
            zip(x_values, ys), zip(x_values[1:], ys[1:])
        ):
            steps = max(
                abs(cell(x1, y1)[1] - cell(x0, y0)[1]),
                abs(cell(x1, y1)[0] - cell(x0, y0)[0]),
                1,
            )
            for s in range(steps + 1):
                f = s / steps
                r, c = cell(x0 + f * (x1 - x0), y0 + f * (y1 - y0))
                grid[r][c] = mark
        for x, y in zip(x_values, ys):
            r, c = cell(x, y)
            grid[r][c] = mark

    lines: list[str] = []
    if title:
        lines.append(title)
    label_width = max(len(f"{y_max:.1f}"), len(f"{y_min:.1f}"))
    for r in range(height):
        y_at = y_max - (y_max - y_min) * r / (height - 1)
        tick = (
            f"{y_at:>{label_width}.1f}"
            if r in (0, height // 2, height - 1)
            else " " * label_width
        )
        lines.append(f"{tick} |{''.join(grid[r])}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_ticks = " " * (label_width + 2)
    positions = {0: f"{x_min:g}", width - 1: f"{x_max:g}"}
    tick_row = [" "] * width
    for pos, text in positions.items():
        start = min(pos, width - len(text))
        for i, ch in enumerate(text):
            tick_row[start + i] = ch
    lines.append(x_ticks + "".join(tick_row) + f"  {x_label}")
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    if y_label:
        lines.append(f"y: {y_label}")
    return "\n".join(lines)


def speedup_plot(
    cores: Sequence[int],
    series: Mapping[str, Sequence[float]],
    title: str,
) -> str:
    """Convenience wrapper with the figures' standard labels, including
    the ideal linear-speedup reference line."""
    with_ideal = {"ideal": [float(c) for c in cores], **series}
    return line_plot(
        list(map(float, cores)),
        with_ideal,
        x_label="cores",
        y_label="speedup",
        title=title,
    )


def grouped_bars(
    groups: Sequence[str],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 46,
    baseline: float = 0.0,
    title: str | None = None,
) -> str:
    """Horizontal grouped bar chart — the form of the paper's Fig. 5.

    One block per group (instance), one bar per series (algorithm), all
    scaled to the global maximum.  ``baseline`` subtracts a common offset
    before scaling (Fig. 5 effectively plots ``ratio - 1``: pass
    ``baseline=1.0`` so bar lengths show the excess over the optimum).
    """
    if not groups:
        raise ValueError("groups must be non-empty")
    for name, values in series.items():
        if len(values) != len(groups):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(groups)} groups"
            )
    peak = max(
        (v - baseline for values in series.values() for v in values),
        default=0.0,
    )
    if peak <= 0:
        peak = 1.0
    name_w = max(len(n) for n in series)
    lines: list[str] = []
    if title:
        lines.append(title)
    for g, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, values in series.items():
            span = max(0.0, values[g] - baseline)
            bar = "#" * round(span / peak * width)
            lines.append(f"  {name:<{name_w}} |{bar:<{width}}| {values[g]:.3f}")
    return "\n".join(lines)
