"""Full evaluation campaign — the paper's complete §V-A grid in one call.

The paper evaluates 24 instance *types* (2 machine counts x 3 job counts
x 4 distributions), 20 instances each: 480 runs.  :func:`run_campaign`
executes an arbitrary subset of that grid, producing:

* a flat list of :class:`~repro.experiments.harness.InstanceRecord`;
* per-type aggregates with bootstrap confidence intervals
  (:mod:`repro.analysis.stats`) and Amdahl/Karp–Flatt scaling
  diagnostics (:mod:`repro.analysis.scaling`);
* CSV exports (one row per instance per core count) for external
  plotting.

This is the module behind ``repro-pcmax experiment``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis.scaling import amdahl_fit, karp_flatt
from repro.analysis.stats import MeanCI, mean_and_ci
from repro.experiments.harness import ExperimentConfig, InstanceRecord, run_instance
from repro.experiments.reporting import ascii_table, write_csv
from repro.workloads.families import family
from repro.workloads.generator import generate_batch


@dataclass(frozen=True)
class TypeKey:
    """One instance type of the grid."""

    kind: str
    m: int
    n: int

    def label(self) -> str:
        """Human-readable type label for reports."""
        return f"{family(self.kind).label} m={self.m} n={self.n}"


@dataclass
class TypeAggregate:
    """Aggregated results of one instance type."""

    key: TypeKey
    records: list[InstanceRecord] = field(default_factory=list)

    def speedup_ci(self, cores: int) -> MeanCI:
        """Mean speedup vs the sequential PTAS, with bootstrap CI."""
        return mean_and_ci(
            [r.parallel_at(cores).speedup_vs_ptas for r in self.records]
        )

    def speedup_vs_ip_ci(self, cores: int) -> MeanCI:
        """Mean speedup vs the IP solver, with bootstrap CI."""
        return mean_and_ci([r.speedup_vs_ip(cores) for r in self.records])

    def scaling_diagnostics(self, cores: Sequence[int]) -> dict[str, float]:
        """Mean-speedup curve -> Amdahl fit + Karp-Flatt at max cores."""
        means = [self.speedup_ci(c).mean for c in cores]
        fit = amdahl_fit(list(cores), means)
        top = max(cores)
        return {
            "serial_fraction": fit.serial_fraction,
            "amdahl_max_speedup": fit.max_speedup,
            "fit_residual": fit.residual,
            "karp_flatt_at_max": karp_flatt(means[cores.index(top)], top),
        }


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    config: ExperimentConfig
    aggregates: list[TypeAggregate]

    def summary_rows(self) -> list[list[object]]:
        """One summary row per instance type (render/CSV share these)."""
        top = max(self.config.cores)
        rows: list[list[object]] = []
        for agg in self.aggregates:
            ci = agg.speedup_ci(top)
            diag = agg.scaling_diagnostics(self.config.cores)
            rows.append(
                [
                    agg.key.label(),
                    len(agg.records),
                    ci.mean,
                    ci.lower,
                    ci.upper,
                    diag["serial_fraction"],
                    diag["karp_flatt_at_max"],
                ]
            )
        return rows

    def render(self) -> str:
        """ASCII summary table of the campaign."""
        top = max(self.config.cores)
        return ascii_table(
            [
                "type",
                "runs",
                f"speedup@{top}",
                "ci lo",
                "ci hi",
                "amdahl f",
                "karp-flatt",
            ],
            self.summary_rows(),
            title="Campaign summary (speedup vs sequential PTAS)",
        )

    def export_csv(self, directory: str | Path) -> list[Path]:
        """Write per-run and summary CSVs; returns the paths."""
        directory = Path(directory)
        run_rows: list[list[object]] = []
        for agg in self.aggregates:
            for i, rec in enumerate(agg.records):
                for par in rec.parallel:
                    run_rows.append(
                        [
                            agg.key.kind,
                            agg.key.m,
                            agg.key.n,
                            i,
                            par.cores,
                            rec.sequential.seconds,
                            par.seconds,
                            par.speedup_vs_ptas,
                            rec.ip.seconds,
                            rec.speedup_vs_ip(par.cores),
                            rec.sequential.makespan,
                            rec.ip.makespan,
                            rec.lpt_run.makespan,
                            rec.ls_run.makespan,
                            rec.ip.optimal,
                        ]
                    )
        runs_path = write_csv(
            directory / "campaign_runs.csv",
            [
                "kind", "m", "n", "replicate", "cores",
                "ptas_seconds", "parallel_seconds", "speedup_vs_ptas",
                "ip_seconds", "speedup_vs_ip",
                "ptas_makespan", "ip_makespan", "lpt_makespan", "ls_makespan",
                "ip_optimal",
            ],
            run_rows,
        )
        summary_path = write_csv(
            directory / "campaign_summary.csv",
            [
                "type", "runs", "speedup_at_max", "ci_lo", "ci_hi",
                "amdahl_f", "karp_flatt",
            ],
            self.summary_rows(),
        )
        return [runs_path, summary_path]


def _run_one(args: tuple) -> tuple[int, InstanceRecord]:
    """Top-level worker for the process-parallel campaign (picklable)."""
    index, instance, cfg = args
    return index, run_instance(instance, cfg)


def run_campaign(
    grid: Sequence[tuple[str, int, int]],
    instances_per_type: int = 20,
    config: ExperimentConfig | None = None,
    base_seed: int = 0,
    parallel_workers: int = 1,
) -> CampaignResult:
    """Execute the grid.  ``grid`` entries are ``(kind, m, n)``; use
    :func:`repro.workloads.generator.family_of_types` for the paper's
    full 24-type grid.

    ``parallel_workers > 1`` fans the (independent) instance runs over a
    process pool — the campaign itself is embarrassingly parallel.  Use
    only on a machine with spare cores: concurrent runs contend for CPU
    and would distort each other's wall-clock measurements otherwise.
    """
    if instances_per_type < 1:
        raise ValueError("instances_per_type must be >= 1")
    if parallel_workers < 1:
        raise ValueError("parallel_workers must be >= 1")
    cfg = config or ExperimentConfig()
    aggregates: list[TypeAggregate] = []
    jobs: list[tuple[int, object, ExperimentConfig]] = []
    for type_index, (kind, m, n) in enumerate(grid):
        aggregates.append(TypeAggregate(TypeKey(kind, m, n)))
        for inst in generate_batch(kind, m, n, instances_per_type, base_seed):
            jobs.append((type_index, inst, cfg))
    if parallel_workers == 1:
        results = [_run_one(job) for job in jobs]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=parallel_workers) as pool:
            results = list(pool.map(_run_one, jobs))
    for type_index, record in results:
        aggregates[type_index].records.append(record)
    return CampaignResult(config=cfg, aggregates=aggregates)
