"""Tables I, II and III of the paper.

* **Table I** is the worked example of §III: the DP table for
  ``N = (2, 3)`` with rounded sizes 6 and 11 at target ``T = 30``
  (``eps = 0.3`` → ``k = 4``).  :func:`run_table1` recomputes it with the
  real DP engines and renders the grid, anti-diagonal levels included.

* **Tables II / III** list the instances that are best / worst for the
  parallel approximation algorithm *in terms of actual approximation
  ratio* relative to LPT.  The paper selects them out of its full
  instance pool; we reproduce the procedure: run the ratio experiment
  over the §V families (including the LPT-adversarial ``U(m, 2m-1)``
  with ``n = 2m+1`` and the narrow ``U(95, 105)``), rank instances by
  ``ratio(LPT) - ratio(parallel PTAS)``, and report the top (Table II)
  and bottom (Table III) six as I1..I6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.algorithms.list_scheduling import list_scheduling
from repro.algorithms.lpt import lpt
from repro.core.dp import DPProblem, solve_table
from repro.core.parallel_dp import build_level_index, parallel_dp
from repro.core.ptas import parallel_ptas
from repro.exact.ilp import ilp_solve
from repro.experiments.reporting import ascii_table
from repro.model.instance import Instance
from repro.workloads.generator import make_instance

# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------

#: The worked example of §III (rounded sizes 6 and 11, two and three jobs).
TABLE1_PROBLEM = DPProblem(class_sizes=(6, 11), counts=(2, 3), target=30)


@dataclass(frozen=True)
class Table1Result:
    """The recomputed DP table of the paper's example."""

    problem: DPProblem
    grid: tuple[tuple[int, ...], ...]  # grid[v1][v2] = OPT(v1, v2)
    level_sizes: tuple[int, ...]

    @property
    def opt(self) -> int:
        return self.grid[-1][-1]

    def render(self) -> str:
        """The DP grid plus the anti-diagonal widths, as ASCII tables."""
        n1, n2 = self.problem.counts
        headers = ["OPT(v1, v2)"] + [f"v2={j}" for j in range(n2 + 1)]
        rows = [
            [f"v1={i}"] + [self.grid[i][j] for j in range(n2 + 1)]
            for i in range(n1 + 1)
        ]
        table = ascii_table(headers, rows, title="Table I: DP table, N=(2,3), T=30")
        levels = ascii_table(
            ["anti-diagonal l"] + [str(l) for l in range(len(self.level_sizes))],
            [["q_l (parallel subproblems)"] + list(self.level_sizes)],
        )
        return table + "\n\n" + levels


def run_table1(num_workers: int = 4) -> Table1Result:
    """Recompute Table I with both the sequential table engine and the
    parallel wavefront, asserting they agree (the paper's Fig. 1 point:
    anti-diagonals can be processed in parallel without changing any
    entry)."""
    problem = TABLE1_PROBLEM
    seq = solve_table(problem, collect_stats=True)
    par = parallel_dp(problem, num_workers, "serial")
    if seq.opt != par.opt:  # pragma: no cover - engine disagreement guard
        raise AssertionError("sequential and parallel DP disagree on Table I")
    # Rebuild the full grid by re-running the faithful sweep and reading
    # the table back through the per-state recomputation.
    n1, n2 = problem.counts
    grid: list[tuple[int, ...]] = []
    # The table engine does not expose its internal list; recompute values
    # via sub-problems (cheap at this size and keeps the engine API slim).
    values: dict[tuple[int, int], int] = {}
    for v1 in range(n1 + 1):
        row = []
        for v2 in range(n2 + 1):
            sub = DPProblem(problem.class_sizes, (v1, v2), problem.target)
            res = solve_table(sub, track_schedule=False)
            assert res.opt is not None
            values[(v1, v2)] = res.opt
            row.append(res.opt)
        grid.append(tuple(row))
    assert seq.stats is not None
    return Table1Result(
        problem=problem, grid=tuple(grid), level_sizes=seq.stats.level_sizes
    )


# ---------------------------------------------------------------------------
# Tables II / III
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RatioRecord:
    """Approximation ratios of one instance (Fig. 5 bar group)."""

    instance_id: str
    family_label: str
    m: int
    n: int
    ratio_parallel: float
    ratio_lpt: float
    ratio_ls: float
    ip_optimal: bool

    @property
    def lpt_gap(self) -> float:
        """``ratio(LPT) - ratio(parallel PTAS)`` — positive when the PTAS
        beats LPT; the selection key of Tables II/III."""
        return self.ratio_lpt - self.ratio_parallel


@dataclass
class TableResult:
    """Tables II/III: selected instances with their ratios."""

    title: str
    records: list[RatioRecord]

    def render(self, title: str | None = None) -> str:
        """One row per selected instance with all three ratios."""
        headers = [
            "id",
            "type",
            "m",
            "n",
            "parallel PTAS",
            "LPT",
            "LS",
            "IP optimal",
        ]
        rows = [
            [
                r.instance_id,
                r.family_label,
                r.m,
                r.n,
                r.ratio_parallel,
                r.ratio_lpt,
                r.ratio_ls,
                r.ip_optimal,
            ]
            for r in self.records
        ]
        return ascii_table(headers, rows, title=title or self.title)


#: The instance-type pool of the ratio study: the four speedup families
#: at the paper's sizes, plus the two special families of §V-B.
RATIO_POOL: tuple[tuple[str, int, int], ...] = (
    ("u_2m", 10, 30),
    ("u_100", 10, 30),
    ("u_10", 10, 30),
    ("u_10n", 10, 30),
    ("u_2m", 10, 50),
    ("u_100", 10, 50),
    ("lpt_adversarial", 10, 21),
    ("lpt_adversarial", 20, 41),
    ("u_narrow", 10, 30),
    ("u_narrow", 20, 50),
)


def _reference_optimum(
    inst: Instance, ip_time_limit: float | None
) -> tuple[int, bool]:
    """Best available reference makespan for ratio computation.

    The paper's ratios divide by the CPLEX optimum.  Our branch-and-bound
    proves optimality quickly on most pool families and HiGHS covers the
    rest; when neither proves it within budget, the smaller incumbent is
    used and flagged, so consumers can soften their assertions exactly
    where the paper, too, had to trust a solver cut-off.
    """
    from repro.exact.branch_and_bound import branch_and_bound

    bnb = branch_and_bound(inst, node_budget=2_000_000)
    if bnb.optimal:
        return bnb.makespan, True
    ip = ilp_solve(inst, time_limit=ip_time_limit)
    if ip.optimal:
        return ip.makespan, True
    return min(bnb.makespan, ip.makespan), False


def _ratio_record(
    instance_id: str,
    kind: str,
    inst: Instance,
    eps: float,
    ip_time_limit: float | None,
) -> RatioRecord:
    from repro.workloads.families import family

    par = parallel_ptas(inst, eps, num_workers=4, backend="serial")
    lpt_ms = lpt(inst).makespan
    ls_ms = list_scheduling(inst).makespan
    opt, proven = _reference_optimum(inst, ip_time_limit)
    return RatioRecord(
        instance_id=instance_id,
        family_label=family(kind).label,
        m=inst.num_machines,
        n=inst.num_jobs,
        ratio_parallel=par.makespan / opt,
        ratio_lpt=lpt_ms / opt,
        ratio_ls=ls_ms / opt,
        ip_optimal=proven,
    )


def _ratio_pool_records(
    scale: str, base_seed: int, eps: float = 0.3
) -> list[RatioRecord]:
    per_type = 3 if scale == "paper" else 1
    time_limit = 30.0 if scale == "paper" else 10.0
    records: list[RatioRecord] = []
    counter = 0
    for kind, m, n in RATIO_POOL:
        for i in range(per_type):
            counter += 1
            inst = make_instance(kind, m, n, seed=base_seed + 1000 * counter + i)
            records.append(
                _ratio_record(f"I{counter}", kind, inst, eps, time_limit)
            )
    return records


def _select(
    records: Sequence[RatioRecord], best: bool, count: int = 6
) -> list[RatioRecord]:
    ordered = sorted(records, key=lambda r: r.lpt_gap, reverse=best)
    chosen = ordered[:count]
    return [
        RatioRecord(
            instance_id=f"I{i + 1}",
            family_label=r.family_label,
            m=r.m,
            n=r.n,
            ratio_parallel=r.ratio_parallel,
            ratio_lpt=r.ratio_lpt,
            ratio_ls=r.ratio_ls,
            ip_optimal=r.ip_optimal,
        )
        for i, r in enumerate(chosen)
    ]


def run_table2(scale: str = "smoke", base_seed: int = 0) -> TableResult:
    """Table II: the best-case instances (largest LPT-vs-PTAS gap)."""
    records = _ratio_pool_records(scale, base_seed)
    return TableResult(
        "Table II: best-case instances for the parallel PTAS",
        _select(records, best=True),
    )


def run_table3(scale: str = "smoke", base_seed: int = 0) -> TableResult:
    """Table III: the worst-case instances (smallest LPT-vs-PTAS gap)."""
    records = _ratio_pool_records(scale, base_seed)
    return TableResult(
        "Table III: worst-case instances for the parallel PTAS",
        _select(records, best=False),
    )


# ---------------------------------------------------------------------------
# Level-structure helper shared with the benchmarks
# ---------------------------------------------------------------------------

def level_histogram(problem: DPProblem) -> np.ndarray:
    """``q_l`` per anti-diagonal, computed from the level index — used by
    the wavefront ablation bench and cross-checked against
    ``DPStats.level_sizes`` in tests."""
    return np.array(build_level_index(problem).sizes, dtype=np.int64)
