"""Experiment harness regenerating every figure and table of the paper.

* :mod:`repro.experiments.metrics` — speedups, approximation ratios,
  aggregation over instance batches.
* :mod:`repro.experiments.harness` — runs all algorithms on one instance
  with wall-clock timing and simulated-multicore calibration.
* :mod:`repro.experiments.figures` — Figs. 2, 3, 4 (speedup/runtime
  panels) and Fig. 5 (approximation-ratio bars).
* :mod:`repro.experiments.tables` — Table I (the worked DP example) and
  Tables II/III (best/worst instances by approximation ratio).
* :mod:`repro.experiments.reporting` — ASCII tables and CSV export.

Every experiment accepts a ``scale`` knob: ``"smoke"`` (small, seconds —
used by the benchmark suite) and ``"paper"`` (the full §V-A setup: 20
instances per type).  See EXPERIMENTS.md for measured-vs-paper numbers.
"""

from repro.experiments.figures import (
    FigureResult,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
)
from repro.experiments.harness import ExperimentConfig, InstanceRecord, run_instance
from repro.experiments.tables import run_table1, run_table2, run_table3

__all__ = [
    "ExperimentConfig",
    "InstanceRecord",
    "run_instance",
    "FigureResult",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_table1",
    "run_table2",
    "run_table3",
]
