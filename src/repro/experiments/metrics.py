"""Metrics of the paper's evaluation (§V-B).

Two speedups and one quality metric:

* **speedup w.r.t. the sequential PTAS** — sequential PTAS wall time over
  parallel-algorithm time;
* **speedup w.r.t. IP** — exact-solver wall time over parallel-algorithm
  time;
* **actual approximation ratio** — an algorithm's makespan over the
  optimal makespan (from the IP solver).

Aggregation over a batch of instances is the arithmetic mean, as in the
paper ("the values of the speedup for each type of instance are the
averages over ... 20 instances").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def speedup(reference_seconds: float, measured_seconds: float) -> float:
    """``reference / measured`` with guards against zero timings."""
    if reference_seconds < 0 or measured_seconds < 0:
        raise ValueError("times must be non-negative")
    if measured_seconds == 0:
        return math.inf if reference_seconds > 0 else 1.0
    return reference_seconds / measured_seconds


def approximation_ratio(makespan: int, optimal_makespan: int) -> float:
    """``Cmax / OPT``; 1.0 means optimal.  Ratios below 1.0 are possible
    only when the reference solve was cut off before proving optimality —
    callers should surface the solver's ``optimal`` flag alongside."""
    if optimal_makespan <= 0:
        raise ValueError("optimal makespan must be positive")
    if makespan <= 0:
        raise ValueError("makespan must be positive")
    return makespan / optimal_makespan


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (rejects empty input loudly)."""
    vals = list(values)
    if not vals:
        raise ValueError("mean of an empty sequence")
    return sum(vals) / len(vals)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean — the fairer aggregate for ratios; reported next to
    the paper's arithmetic means in EXPERIMENTS.md."""
    vals = list(values)
    if not vals:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass(frozen=True)
class Summary:
    """Mean / min / max / count of one metric over a batch."""

    mean: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        if not values:
            raise ValueError("cannot summarize an empty batch")
        return cls(
            mean=mean(values),
            minimum=min(values),
            maximum=max(values),
            count=len(values),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3f} (min {self.minimum:.3f}, max {self.maximum:.3f}, n={self.count})"
