"""One-shot reproduction driver: regenerate every paper artifact.

``repro-pcmax reproduce --out results/`` runs, in order, Table I, the
Figure 1 dependency graph, Figures 2–5, Tables II/III, and the golden
regression, writing each rendered panel to the output directory together
with a provenance manifest.  This is the single command behind
EXPERIMENTS.md — what a reviewer runs to rebuild the evidence.

The heavy lifting stays in :mod:`repro.experiments.figures` /
``tables`` / ``golden``; this module only sequences them and handles
the filesystem, so it is unit-testable with stubbed runners.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.experiments.harness import ExperimentConfig
from repro.experiments.manifest import build_manifest, write_manifest


@dataclass
class StepResult:
    """Outcome of one reproduction step."""

    name: str
    seconds: float
    output_file: str | None


@dataclass
class ReproductionRun:
    """Everything the driver produced."""

    scale: str
    out_dir: Path
    steps: list[StepResult] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.steps)

    def render(self) -> str:
        """Human-readable run summary."""
        lines = [f"Reproduction run (scale={self.scale}) -> {self.out_dir}"]
        for step in self.steps:
            target = step.output_file or "-"
            lines.append(f"  {step.name:<22} {step.seconds:8.1f}s  {target}")
        lines.append(f"  {'total':<22} {self.total_seconds:8.1f}s")
        return "\n".join(lines)


def default_steps(scale: str) -> list[tuple[str, Callable[[], str]]]:
    """The standard step list; each callable returns rendered text."""
    from repro.core.depgraph import render_figure1
    from repro.experiments import figures, tables
    from repro.experiments.tables import TABLE1_PROBLEM

    return [
        ("figure1", lambda: render_figure1(TABLE1_PROBLEM)),
        ("table1", lambda: tables.run_table1().render()),
        ("figure2", lambda: figures.run_figure2(scale=scale).render()),
        ("figure3", lambda: figures.run_figure3(scale=scale).render()),
        ("figure4", lambda: figures.run_figure4(scale=scale).render()),
        ("figure5", lambda: figures.run_figure5(scale=scale).render()),
        ("table2", lambda: tables.run_table2(scale=scale).render()),
        ("table3", lambda: tables.run_table3(scale=scale).render()),
    ]


def reproduce_all(
    out_dir: str | Path,
    scale: str = "smoke",
    steps: list[tuple[str, Callable[[], str]]] | None = None,
    golden_path: str | Path | None = None,
) -> ReproductionRun:
    """Run every step, save panels, verify the golden, write a manifest."""
    if scale not in ("smoke", "paper"):
        raise ValueError(f"scale must be smoke or paper, got {scale!r}")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    run = ReproductionRun(scale=scale, out_dir=out)
    for name, fn in steps if steps is not None else default_steps(scale):
        t0 = time.perf_counter()
        text = fn()
        elapsed = time.perf_counter() - t0
        target = out / f"{name}.txt"
        target.write_text(text + "\n")
        run.steps.append(StepResult(name, elapsed, str(target)))

    if golden_path is not None:
        from repro.experiments.golden import diff_against

        t0 = time.perf_counter()
        problems = diff_against(golden_path)
        elapsed = time.perf_counter() - t0
        report = "golden: OK" if not problems else "\n".join(problems)
        (out / "golden_check.txt").write_text(report + "\n")
        run.steps.append(
            StepResult("golden-check", elapsed, str(out / "golden_check.txt"))
        )
        if problems:
            raise AssertionError(
                f"golden regression detected {len(problems)} drift(s); "
                f"see {out / 'golden_check.txt'}"
            )

    manifest = build_manifest(
        experiment="reproduce-all",
        grid=[],
        instances_per_type=20 if scale == "paper" else 2,
        base_seed=0,
        config=ExperimentConfig(),
        extra={"scale": scale, "steps": [s.name for s in run.steps]},
    )
    write_manifest(out, manifest)
    return run
