"""Experiment provenance manifests.

Every saved experiment artifact should be reconstructible from a small
record of *how it was produced*.  :func:`write_manifest` drops a
``manifest.json`` next to the exported data capturing the library
version, the experiment configuration, the instance grid and seeds, the
host interpreter, and a wall-clock timestamp; :func:`read_manifest`
loads and validates it.  The campaign CLI writes one automatically next
to its CSVs.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Sequence

from repro.experiments.harness import ExperimentConfig

FORMAT_NAME = "repro-pcmax-manifest"
FORMAT_VERSION = 1


def _config_to_dict(config: ExperimentConfig) -> dict[str, Any]:
    doc = dataclasses.asdict(config)
    doc["cost_model"] = dataclasses.asdict(config.cost_model)
    return doc


def build_manifest(
    *,
    experiment: str,
    grid: Sequence[tuple[str, int, int]],
    instances_per_type: int,
    base_seed: int,
    config: ExperimentConfig,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the manifest document (pure; no I/O)."""
    import repro

    doc: dict[str, Any] = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "experiment": experiment,
        "library_version": repro.__version__,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "timestamp_unix": time.time(),
        "grid": [list(entry) for entry in grid],
        "instances_per_type": instances_per_type,
        "base_seed": base_seed,
        "config": _config_to_dict(config),
    }
    if extra:
        doc["extra"] = dict(extra)
    return doc


def write_manifest(directory: str | Path, manifest: dict[str, Any]) -> Path:
    """Write ``manifest.json`` into ``directory``."""
    path = Path(directory) / "manifest.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def read_manifest(path: str | Path) -> dict[str, Any]:
    """Load and validate a manifest file."""
    p = Path(path)
    if p.is_dir():
        p = p / "manifest.json"
    try:
        doc = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{p}: not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != FORMAT_NAME:
        raise ValueError(f"{p}: not a {FORMAT_NAME} document")
    if doc.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{p}: manifest version {doc.get('version')} unsupported "
            f"(expected {FORMAT_VERSION})"
        )
    for key in ("experiment", "grid", "config", "base_seed"):
        if key not in doc:
            raise ValueError(f"{p}: manifest missing key {key!r}")
    return doc
