"""Golden-number regression for deterministic outputs.

Everything in this library except wall-clock time is deterministic:
seeded instances, every algorithm's makespan, the PTAS's certified
target, and the simulated machine's op counts and speedups.  A *golden
file* records those numbers for a fixed probe grid; the regression test
recomputes them and fails on any drift — catching unintended behavioral
changes (a tie-break flipped, a cost-model constant nudged, a rounding
boundary moved) that ordinary property tests cannot see.

Regenerate intentionally with::

    python -m repro.experiments.golden results/golden/smoke.json

after reviewing the diff.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any

from repro.algorithms.list_scheduling import list_scheduling
from repro.algorithms.lpt import lpt
from repro.algorithms.multifit import multifit
from repro.algorithms.related import (
    q_list_scheduling,
    q_lpt,
    q_lpt_worst_case_ratio,
    q_list_worst_case_ratio,
)
from repro.core.ptas import parallel_ptas, ptas
from repro.model.verify import verify_qschedule
from repro.workloads.generator import make_instance, make_qinstance

#: The probe grid: small, fast, and covering every family.
GOLDEN_GRID: tuple[tuple[str, int, int, int], ...] = (
    ("u_2m", 4, 12, 0),
    ("u_100", 4, 12, 1),
    ("u_10", 4, 12, 2),
    ("u_10n", 4, 12, 3),
    ("lpt_adversarial", 5, 11, 4),
    ("u_narrow", 4, 12, 5),
)

#: The ``Q || Cmax`` probe grid: (time family, m, n, seed, speed family).
#: Every speed family is covered, including ``unit`` — whose entries
#: must agree with the identical-machine baselines on the same times.
GOLDEN_Q_GRID: tuple[tuple[str, int, int, int, str], ...] = (
    ("u_10", 4, 12, 2, "unit"),
    ("u_100", 4, 12, 1, "u_1_4"),
    ("u_2m", 4, 12, 0, "one_fast"),
    ("u_10n", 4, 12, 3, "geometric"),
)

#: Simulated processor counts probed per instance.
GOLDEN_WORKERS = (4, 16)

FORMAT_NAME = "repro-pcmax-golden"


def compute_golden() -> dict[str, Any]:
    """Recompute the golden record for the probe grid."""
    import repro

    entries: list[dict[str, Any]] = []
    for kind, m, n, seed in GOLDEN_GRID:
        inst = make_instance(kind, m, n, seed=seed)
        seq = ptas(inst, 0.3, engine="table")
        entry: dict[str, Any] = {
            "kind": kind,
            "m": m,
            "n": n,
            "seed": seed,
            "processing_times": list(inst.processing_times),
            "lpt_makespan": lpt(inst).makespan,
            "ls_makespan": list_scheduling(inst).makespan,
            "multifit_makespan": multifit(inst).makespan,
            "ptas_makespan": seq.makespan,
            "ptas_final_target": seq.final_target,
            "ptas_bisection_probes": seq.num_bisection_iterations,
            "simulated_speedups": {},
        }
        for workers in GOLDEN_WORKERS:
            par = parallel_ptas(inst, 0.3, num_workers=workers)
            assert par.makespan == seq.makespan
            entry["simulated_speedups"][str(workers)] = round(
                par.simulated_speedup or 1.0, 9
            )
        entries.append(entry)
    return {
        "format": FORMAT_NAME,
        "library_version": repro.__version__,
        "eps": 0.3,
        "entries": entries,
        "q_entries": _compute_q_entries(),
    }


def _compute_q_entries() -> list[dict[str, Any]]:
    """The ``Q || Cmax`` golden section: baseline makespans plus the
    a-priori worst-case ratio, checked here against the trivial lower
    bound (a real schedule can only be closer to OPT than to the LB, so
    ``makespan <= ratio * LB`` must hold — and is re-checked on load)."""
    q_entries: list[dict[str, Any]] = []
    for kind, m, n, seed, speed_kind in GOLDEN_Q_GRID:
        inst = make_qinstance(kind, m, n, seed=seed, speed_family=speed_kind)
        lpt_sched = q_lpt(inst)
        ls_sched = q_list_scheduling(inst)
        for sched in (lpt_sched, ls_sched):
            report = verify_qschedule(sched, inst)
            assert report.ok, report.violations
        if speed_kind == "unit":
            # Unit speeds degenerate to P||Cmax: the Q baselines must
            # reproduce the identical-machine baselines exactly.
            ident = inst.to_identical()
            assert lpt_sched.assignment == lpt(ident).assignment
            assert ls_sched.assignment == list_scheduling(ident).assignment
        lb = inst.trivial_lower_bound()
        lpt_bound = q_lpt_worst_case_ratio(inst.speeds)
        ls_bound = q_list_worst_case_ratio(inst.speeds)
        assert lpt_sched.makespan <= lpt_bound * lb + 1e-9
        assert ls_sched.makespan <= ls_bound * lb + 1e-9
        q_entries.append(
            {
                "kind": kind,
                "m": m,
                "n": n,
                "seed": seed,
                "speed_family": speed_kind,
                "speeds": list(inst.speeds),
                "processing_times": list(inst.processing_times),
                "trivial_lower_bound": round(lb, 9),
                "q_lpt_makespan": round(lpt_sched.makespan, 9),
                "q_ls_makespan": round(ls_sched.makespan, 9),
                "q_lpt_bound": round(lpt_bound, 9),
                "q_ls_bound": round(ls_bound, 9),
            }
        )
    return q_entries


def save_golden(path: str | Path) -> Path:
    """Write the freshly computed golden record to ``path``."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(compute_golden(), indent=2, sort_keys=True) + "\n")
    return p


def load_golden(path: str | Path) -> dict[str, Any]:
    """Read a golden file, validating its format marker."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or doc.get("format") != FORMAT_NAME:
        raise ValueError(f"{path}: not a {FORMAT_NAME} document")
    return doc


def diff_against(path: str | Path) -> list[str]:
    """Compare current behavior to a stored golden; returns mismatch
    descriptions (empty = no drift)."""
    stored = load_golden(path)
    current = compute_golden()
    problems: list[str] = []
    stored_entries = {
        (e["kind"], e["m"], e["n"], e["seed"]): e for e in stored["entries"]
    }
    for entry in current["entries"]:
        key = (entry["kind"], entry["m"], entry["n"], entry["seed"])
        if key not in stored_entries:
            problems.append(f"{key}: missing from the stored golden")
            continue
        old = stored_entries[key]
        for field in sorted(entry):
            if entry[field] != old.get(field):
                problems.append(
                    f"{key}.{field}: golden {old.get(field)!r} != "
                    f"current {entry[field]!r}"
                )
    stored_q = {
        (e["kind"], e["m"], e["n"], e["seed"], e["speed_family"]): e
        for e in stored.get("q_entries", [])
    }
    for entry in current["q_entries"]:
        key = (
            entry["kind"],
            entry["m"],
            entry["n"],
            entry["seed"],
            entry["speed_family"],
        )
        if key not in stored_q:
            problems.append(f"q{key}: missing from the stored golden")
            continue
        old = stored_q[key]
        for field in sorted(entry):
            if entry[field] != old.get(field):
                problems.append(
                    f"q{key}.{field}: golden {old.get(field)!r} != "
                    f"current {entry[field]!r}"
                )
    return problems


if __name__ == "__main__":  # pragma: no cover - regeneration helper
    target = sys.argv[1] if len(sys.argv) > 1 else "results/golden/smoke.json"
    print(f"wrote {save_golden(target)}")
