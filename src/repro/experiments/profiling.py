"""Phase-level profiling of the PTAS.

The paper's justification for parallelizing *only* the DP (§III, last
paragraph) is that everything else is negligible.  This module measures
that claim on our implementation: an instrumented PTAS run that times
each phase — bounds, rounding, configuration enumeration, the DP itself,
and reconstruction — across all bisection iterations.

Used by ``benchmarks/test_phase_profile.py`` (which asserts the DP share
dominates on DP-heavy instances) and available to users via
:func:`profile_ptas`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.bounds import makespan_bounds
from repro.core.dp import DPProblem, solve
from repro.core.reconstruct import build_schedule
from repro.core.rounding import accuracy_parameter, round_instance
from repro.experiments.reporting import ascii_table
from repro.model.instance import Instance
from repro.model.schedule import Schedule

PHASES = ("bounds", "rounding", "configurations", "dp", "reconstruction")


@dataclass
class PhaseProfile:
    """Accumulated wall time per phase of one PTAS run."""

    seconds: dict[str, float] = field(default_factory=lambda: dict.fromkeys(PHASES, 0.0))
    dp_iterations: int = 0
    schedule: Schedule | None = None

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def share(self, phase: str) -> float:
        """Fraction of total time spent in ``phase``."""
        if phase not in self.seconds:
            raise KeyError(f"unknown phase {phase!r}; expected one of {PHASES}")
        if self.total == 0:
            return 0.0
        return self.seconds[phase] / self.total

    def render(self) -> str:
        """ASCII table of per-phase seconds and shares."""
        rows = [
            [phase, self.seconds[phase], self.share(phase)]
            for phase in PHASES
        ]
        rows.append(["total", self.total, 1.0])
        return ascii_table(
            ["phase", "seconds", "share"],
            rows,
            precision=4,
            title=f"PTAS phase profile ({self.dp_iterations} DP invocations)",
        )


def profile_ptas(
    instance: Instance, eps: float, engine: str = "table"
) -> PhaseProfile:
    """Run the PTAS with per-phase timing.

    Mirrors :func:`repro.core.ptas.ptas` exactly (same bisection, same
    engine semantics, same guarantee-fix job cap, same schedule) but
    threads a stopwatch through the phases.  Kept separate so the
    production path stays unpolluted by timing calls.
    """
    profile = PhaseProfile()

    def clocked(phase: str, fn, *args, **kwargs):
        t0 = time.perf_counter()
        out = fn(*args, **kwargs)
        profile.seconds[phase] += time.perf_counter() - t0
        return out

    k = accuracy_parameter(eps)
    job_cap = k - 1 if k >= 2 else None
    bounds = clocked("bounds", makespan_bounds, instance)
    lb, ub = bounds.lower, bounds.upper
    m = instance.num_machines
    best = None
    while lb < ub:
        target = (lb + ub) // 2
        rounded = clocked("rounding", round_instance, instance, target, k)
        problem = DPProblem(
            rounded.class_sizes, rounded.class_counts, target, job_cap=job_cap
        )
        clocked("configurations", problem.configurations)
        result = clocked(
            "dp", solve, problem, engine, limit=m, track_schedule=True
        )
        profile.dp_iterations += 1
        if result.opt is not None and result.opt <= m:
            ub = target
            best = (rounded, result)
        else:
            lb = target + 1
    if best is None or best[0].target != ub:
        rounded = clocked("rounding", round_instance, instance, ub, k)
        problem = DPProblem(
            rounded.class_sizes, rounded.class_counts, ub, job_cap=job_cap
        )
        result = clocked("dp", solve, problem, engine, limit=m, track_schedule=True)
        profile.dp_iterations += 1
        assert result.opt is not None and result.opt <= m
        best = (rounded, result)
    rounded, result = best
    profile.schedule = clocked(
        "reconstruction",
        build_schedule,
        instance,
        rounded,
        result.machine_configs,
    )
    return profile
