"""Per-instance experiment runner.

For one instance, :func:`run_instance` measures everything a figure or
table of the paper needs:

* wall-clock time and makespan of the **sequential PTAS** (faithful
  full-table engine, the comparison baseline of Figs. 2a/3a/4a);
* the **parallel approximation algorithm** at each requested core count,
  using the simulated multicore backend calibrated against the measured
  sequential time (DESIGN.md §6, substitution 2) — on a real multicore
  host the ``process`` backend can be requested instead;
* wall-clock time and makespan of the **IP solver** (HiGHS — the CPLEX
  stand-in of Figs. 2b/3b/4b), with a time limit so the hard families
  return an incumbent like a cut-off CPLEX run would;
* **LPT** and **LS** times and makespans (Fig. 5).

Timing discipline follows the hpc guides: a monotonic high-resolution
clock around the full call, no warmup for the long-running solvers, and
the cheap heuristics timed over enough repetitions to rise above clock
granularity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.algorithms.list_scheduling import list_scheduling
from repro.algorithms.lpt import lpt
from repro.core.ptas import parallel_ptas, ptas
from repro.exact.ilp import ilp_solve
from repro.model.instance import Instance
from repro.simcore.costmodel import CostModel


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments."""

    eps: float = 0.3
    cores: tuple[int, ...] = (2, 4, 8, 16)
    sequential_engine: str = "table"
    parallel_backend: str = "simulated"
    ip_time_limit: float | None = 30.0
    cost_model: CostModel = field(default_factory=CostModel)
    min_heuristic_reps: int = 5

    def __post_init__(self) -> None:
        if not self.cores:
            raise ValueError("cores must be non-empty")
        if any(c < 1 for c in self.cores):
            raise ValueError("core counts must be >= 1")


@dataclass(frozen=True)
class TimedRun:
    """One algorithm's measurement on one instance."""

    name: str
    makespan: int
    seconds: float
    optimal: bool | None = None  # exact solvers only


@dataclass(frozen=True)
class ParallelRun:
    """The parallel algorithm at one core count."""

    cores: int
    makespan: int
    seconds: float
    speedup_vs_ptas: float
    simulated: bool


@dataclass(frozen=True)
class InstanceRecord:
    """All measurements for one instance."""

    instance: Instance
    sequential: TimedRun
    parallel: tuple[ParallelRun, ...]
    ip: TimedRun
    lpt_run: TimedRun
    ls_run: TimedRun

    def parallel_at(self, cores: int) -> ParallelRun:
        """The parallel measurement at a given core count."""
        for run in self.parallel:
            if run.cores == cores:
                return run
        raise KeyError(f"no parallel run at {cores} cores")

    def speedup_vs_ip(self, cores: int) -> float:
        """IP wall time over the parallel algorithm's time at ``cores``."""
        run = self.parallel_at(cores)
        if run.seconds == 0:
            return float("inf")
        return self.ip.seconds / run.seconds

    def ratio(self, makespan: int) -> float:
        """Actual approximation ratio vs this record's IP makespan."""
        return makespan / self.ip.makespan


def _time_once(fn: Callable[[], object]) -> tuple[object, float]:
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _time_repeated(fn: Callable[[], object], min_reps: int) -> tuple[object, float]:
    """Average over repetitions so microsecond-scale heuristics are not
    measured as clock noise."""
    result, elapsed = _time_once(fn)
    reps = 1
    while elapsed < 1e-3 and reps < min_reps:
        _, e = _time_once(fn)
        elapsed += e
        reps += 1
    return result, elapsed / reps


def run_instance(
    instance: Instance, config: ExperimentConfig | None = None
) -> InstanceRecord:
    """Measure every algorithm of the evaluation on one instance."""
    cfg = config or ExperimentConfig()

    seq_result, seq_seconds = _time_once(
        lambda: ptas(instance, cfg.eps, engine=cfg.sequential_engine)
    )
    sequential = TimedRun("ptas", seq_result.makespan, seq_seconds)  # type: ignore[union-attr]

    parallel_runs: list[ParallelRun] = []
    for cores in cfg.cores:
        if cfg.parallel_backend == "simulated":
            par = parallel_ptas(
                instance,
                cfg.eps,
                num_workers=cores,
                backend="simulated",
                cost_model=cfg.cost_model,
            )
            assert par.machine is not None
            calibrated = par.machine.calibrate(seq_seconds)
            seconds = calibrated.parallel_seconds
            simulated = True
        else:
            par, seconds = _time_once(  # type: ignore[assignment]
                lambda c=cores: parallel_ptas(
                    instance, cfg.eps, num_workers=c, backend=cfg.parallel_backend
                )
            )
            simulated = False
        parallel_runs.append(
            ParallelRun(
                cores=cores,
                makespan=par.makespan,
                seconds=seconds,
                speedup_vs_ptas=(seq_seconds / seconds) if seconds > 0 else float("inf"),
                simulated=simulated,
            )
        )

    ip_result, ip_seconds = _time_once(
        lambda: ilp_solve(instance, time_limit=cfg.ip_time_limit)
    )
    ip = TimedRun("ip", ip_result.makespan, ip_seconds, optimal=ip_result.optimal)  # type: ignore[union-attr]

    lpt_sched, lpt_seconds = _time_repeated(
        lambda: lpt(instance), cfg.min_heuristic_reps
    )
    ls_sched, ls_seconds = _time_repeated(
        lambda: list_scheduling(instance), cfg.min_heuristic_reps
    )

    return InstanceRecord(
        instance=instance,
        sequential=sequential,
        parallel=tuple(parallel_runs),
        ip=ip,
        lpt_run=TimedRun("lpt", lpt_sched.makespan, lpt_seconds),  # type: ignore[union-attr]
        ls_run=TimedRun("ls", ls_sched.makespan, ls_seconds),  # type: ignore[union-attr]
    )
