"""Figures 2–5 of the paper, regenerated.

Each ``run_figureN`` function executes the corresponding experiment and
returns a :class:`FigureResult` holding the raw per-instance records plus
the aggregated series the paper plots; ``FigureResult.render()`` prints
the panels as ASCII tables.

Paper setup (§V):

* **Fig. 2** — ``m=20, n=100``; panels: (a) average speedup of the
  parallel algorithm vs the sequential PTAS over 2–16 cores, (b) average
  speedup vs IP, (c) average running times.
* **Fig. 3** — ``m=10, n=50`` (the best case for speedup vs IP).
* **Fig. 4** — ``m=10, n=30`` (the worst case; panels a and b only).
* **Fig. 5** — actual approximation ratios of the parallel algorithm,
  LPT and LS against the IP optimum on the best-case (Table II) and
  worst-case (Table III) instances.

Scaling: ``scale="paper"`` runs 20 instances per family as in §V-A;
``scale="smoke"`` runs 2 per family with a smaller IP time limit, sized
for CI and the benchmark suite.  Absolute times differ from the paper's
C++/CPLEX testbed, so EXPERIMENTS.md compares shapes (who wins, by what
factor, where speedups saturate), not seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.harness import ExperimentConfig, InstanceRecord, run_instance
from repro.experiments.metrics import mean
from repro.experiments.reporting import ascii_table, render_series
from repro.experiments.tables import TableResult, run_table2, run_table3
from repro.workloads.families import SPEEDUP_FAMILY_KEYS, family
from repro.workloads.generator import generate_batch

SCALES = ("smoke", "paper")


def _num_instances(scale: str) -> int:
    if scale == "paper":
        return 20
    if scale == "smoke":
        return 2
    raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")


def _config_for(scale: str, cores: Sequence[int]) -> ExperimentConfig:
    return ExperimentConfig(
        cores=tuple(cores),
        ip_time_limit=30.0 if scale == "paper" else 10.0,
    )


@dataclass
class FamilySeries:
    """Aggregated results of one instance family in one figure."""

    family_key: str
    label: str
    records: list[InstanceRecord] = field(default_factory=list)

    def mean_speedup_vs_ptas(self, cores: int) -> float:
        """Family-average speedup vs the sequential PTAS at ``cores``."""
        return mean(r.parallel_at(cores).speedup_vs_ptas for r in self.records)

    def mean_speedup_vs_ip(self, cores: int) -> float:
        """Family-average speedup vs the IP solver at ``cores``."""
        return mean(r.speedup_vs_ip(cores) for r in self.records)

    def mean_seconds(self, which: str, cores: int | None = None) -> float:
        """Family-average wall time of one algorithm (panel c data)."""
        if which == "parallel":
            assert cores is not None
            return mean(r.parallel_at(cores).seconds for r in self.records)
        if which == "ptas":
            return mean(r.sequential.seconds for r in self.records)
        if which == "ip":
            return mean(r.ip.seconds for r in self.records)
        if which == "lpt":
            return mean(r.lpt_run.seconds for r in self.records)
        if which == "ls":
            return mean(r.ls_run.seconds for r in self.records)
        raise ValueError(f"unknown timing {which!r}")


@dataclass
class FigureResult:
    """One regenerated figure: its speedup/runtime panels per family."""

    name: str
    description: str
    m: int
    n: int
    cores: tuple[int, ...]
    families: list[FamilySeries]
    include_runtime_panel: bool = True

    def speedup_vs_ptas_series(self) -> dict[str, list[float]]:
        """Panel (a): one speedup-vs-cores series per family."""
        return {
            fs.label: [fs.mean_speedup_vs_ptas(c) for c in self.cores]
            for fs in self.families
        }

    def speedup_vs_ip_series(self) -> dict[str, list[float]]:
        """Panel (b): one speedup-vs-IP series per family."""
        return {
            fs.label: [fs.mean_speedup_vs_ip(c) for c in self.cores]
            for fs in self.families
        }

    def runtime_rows(self) -> list[list[object]]:
        """Panel (c): average running times, one row per family."""
        max_cores = max(self.cores)
        rows: list[list[object]] = []
        for fs in self.families:
            rows.append(
                [
                    fs.label,
                    fs.mean_seconds("ip"),
                    fs.mean_seconds("ptas"),
                    fs.mean_seconds("parallel", max_cores),
                    fs.mean_seconds("lpt"),
                    fs.mean_seconds("ls"),
                ]
            )
        return rows

    def render(self) -> str:
        """All panels of the figure as ASCII tables and charts."""
        from repro.experiments.plots import speedup_plot

        parts = [
            f"== {self.name}: {self.description} (m={self.m}, n={self.n}) ==",
            render_series(
                "cores",
                list(self.cores),
                self.speedup_vs_ptas_series(),
                title="(a) average speedup vs sequential PTAS",
            ),
            speedup_plot(
                list(self.cores),
                self.speedup_vs_ptas_series(),
                title="(a) as a chart",
            ),
            render_series(
                "cores",
                list(self.cores),
                self.speedup_vs_ip_series(),
                title="(b) average speedup vs IP (HiGHS)",
            ),
        ]
        if self.include_runtime_panel:
            parts.append(
                ascii_table(
                    [
                        "family",
                        "IP [s]",
                        "PTAS [s]",
                        f"parallel@{max(self.cores)} [s]",
                        "LPT [s]",
                        "LS [s]",
                    ],
                    self.runtime_rows(),
                    precision=4,
                    title="(c) average running times",
                )
            )
        return "\n\n".join(parts)


def _run_speedup_figure(
    name: str,
    description: str,
    m: int,
    n: int,
    *,
    scale: str = "smoke",
    cores: Sequence[int] = (2, 4, 8, 16),
    base_seed: int = 0,
    include_runtime_panel: bool = True,
) -> FigureResult:
    count = _num_instances(scale)
    config = _config_for(scale, cores)
    families: list[FamilySeries] = []
    for key in SPEEDUP_FAMILY_KEYS:
        fam = family(key)
        series = FamilySeries(family_key=key, label=fam.label)
        for inst in generate_batch(key, m, n, count, base_seed=base_seed):
            series.records.append(run_instance(inst, config))
        families.append(series)
    return FigureResult(
        name=name,
        description=description,
        m=m,
        n=n,
        cores=tuple(cores),
        families=families,
        include_runtime_panel=include_runtime_panel,
    )


def run_figure2(
    scale: str = "smoke",
    cores: Sequence[int] = (2, 4, 8, 16),
    base_seed: int = 0,
) -> FigureResult:
    """Fig. 2: speedups and runtimes at ``m=20, n=100``."""
    return _run_speedup_figure(
        "Figure 2",
        "speedup and running time, four U-families",
        m=20,
        n=100,
        scale=scale,
        cores=cores,
        base_seed=base_seed,
    )


def run_figure3(
    scale: str = "smoke",
    cores: Sequence[int] = (2, 4, 8, 16),
    base_seed: int = 0,
) -> FigureResult:
    """Fig. 3: ``m=10, n=50`` — the paper's best case for speedup vs IP."""
    return _run_speedup_figure(
        "Figure 3",
        "speedup and running time, best case vs IP",
        m=10,
        n=50,
        scale=scale,
        cores=cores,
        base_seed=base_seed,
    )


def run_figure4(
    scale: str = "smoke",
    cores: Sequence[int] = (2, 4, 8, 16),
    base_seed: int = 0,
) -> FigureResult:
    """Fig. 4: ``m=10, n=30`` — the worst case vs IP (no runtime panel in
    the paper)."""
    return _run_speedup_figure(
        "Figure 4",
        "speedup, worst case vs IP",
        m=10,
        n=30,
        scale=scale,
        cores=cores,
        base_seed=base_seed,
        include_runtime_panel=False,
    )


@dataclass
class Figure5Result:
    """Fig. 5: approximation-ratio bars for best/worst instances."""

    best: TableResult
    worst: TableResult

    def _bars(self, table: TableResult, title: str) -> str:
        from repro.experiments.plots import grouped_bars

        return grouped_bars(
            [r.instance_id for r in table.records],
            {
                "parallel PTAS": [r.ratio_parallel for r in table.records],
                "LPT": [r.ratio_lpt for r in table.records],
                "LS": [r.ratio_ls for r in table.records],
            },
            baseline=1.0,
            title=title + "  (bar length = ratio - 1)",
        )

    def render(self) -> str:
        """Both ratio panels (best and worst instances), table + bars."""
        return "\n\n".join(
            [
                "== Figure 5: actual approximation ratios ==",
                self.best.render("(a) best-case instances (Table II)"),
                self._bars(self.best, "(a) as bars"),
                self.worst.render("(b) worst-case instances (Table III)"),
                self._bars(self.worst, "(b) as bars"),
            ]
        )


def run_figure5(scale: str = "smoke", base_seed: int = 0) -> Figure5Result:
    """Fig. 5: ratios of the parallel algorithm, LPT and LS vs the IP
    optimum on the best-case (Table II) and worst-case (Table III)
    instances."""
    return Figure5Result(
        best=run_table2(scale=scale, base_seed=base_seed),
        worst=run_table3(scale=scale, base_seed=base_seed),
    )
