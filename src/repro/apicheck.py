"""API-stability check: ``python -m repro.apicheck``.

The public surface of the library — every name each public package
exports via ``__all__``, with its kind and (for callables) its exact
signature — is pinned in ``docs/api-surface.txt``.  CI runs this module
on every push: any drift (a renamed kwarg, a removed export, a changed
default) fails the build until the pin is regenerated *intentionally*
with::

    python -m repro.apicheck --write

and the diff reviewed like any other golden file.  This is what makes
``repro.solve`` and friends a stable surface rather than a convention.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys
from pathlib import Path

#: The packages whose ``__all__`` constitutes the public API, in the
#: order they appear in the surface file.
PUBLIC_MODULES: tuple[str, ...] = (
    "repro",
    "repro.algorithms",
    "repro.model",
    "repro.qa",
    "repro.service",
    "repro.store",
    "repro.workloads",
)

DEFAULT_SURFACE = Path(__file__).resolve().parents[2] / "docs" / "api-surface.txt"

HEADER = (
    "# Public API surface — regenerate with `python -m repro.apicheck --write`\n"
    "# (CI fails when the live surface drifts from this pin.)\n"
)


def _describe(qualname: str, obj: object) -> str:
    """One deterministic line describing an exported object."""
    if inspect.isclass(obj):
        try:
            sig = str(inspect.signature(obj))
        except (ValueError, TypeError):
            sig = "(...)"
        return f"{qualname}: class {sig}"
    if inspect.isroutine(obj):
        try:
            sig = str(inspect.signature(obj))
        except (ValueError, TypeError):
            sig = "(...)"
        return f"{qualname}: function {sig}"
    if isinstance(obj, type(sys)):
        return f"{qualname}: module"
    if isinstance(obj, dict):
        # Registries: pin the key set, not the values (whose reprs can
        # embed memory addresses).
        return f"{qualname}: dict keys={sorted(map(str, obj))}"
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return f"{qualname}: {type(obj).__name__} = {obj!r}"
    if isinstance(obj, (tuple, list)) and all(
        isinstance(x, (str, int, float, bool)) for x in obj
    ):
        return f"{qualname}: {type(obj).__name__} = {obj!r}"
    return f"{qualname}: {type(obj).__name__}"


def compute_surface() -> str:
    """Render the live public surface as the pinned text format."""
    lines: list[str] = [HEADER.rstrip("\n")]
    for modname in PUBLIC_MODULES:
        module = importlib.import_module(modname)
        exported = getattr(module, "__all__", None)
        if exported is None:
            raise RuntimeError(f"{modname} has no __all__; cannot pin its surface")
        lines.append("")
        lines.append(f"[{modname}]")
        for name in sorted(exported):
            lines.append(_describe(f"{modname}.{name}", getattr(module, name)))
    return "\n".join(lines) + "\n"


def diff_surface(pinned: str, live: str) -> list[str]:
    """Line-level diff between the pinned and live surfaces (unified-ish,
    deterministic; empty list = no drift)."""
    pinned_lines = {
        line for line in pinned.splitlines() if line and not line.startswith("#")
    }
    live_lines = {
        line for line in live.splitlines() if line and not line.startswith("#")
    }
    problems = [f"- {line}" for line in sorted(pinned_lines - live_lines)]
    problems += [f"+ {line}" for line in sorted(live_lines - pinned_lines)]
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: check (default) or ``--write`` the surface pin."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.apicheck",
        description="Check the public API surface against docs/api-surface.txt",
    )
    parser.add_argument(
        "--surface",
        default=str(DEFAULT_SURFACE),
        help="path of the pinned surface file",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="regenerate the pin from the live surface instead of checking",
    )
    args = parser.parse_args(argv)
    live = compute_surface()
    path = Path(args.surface)
    if args.write:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(live)
        print(f"wrote {path}")
        return 0
    if not path.exists():
        print(f"error: {path} does not exist; run with --write to create it")
        return 1
    problems = diff_surface(path.read_text(), live)
    if problems:
        print(f"API surface drift against {path}:")
        for line in problems:
            print(f"  {line}")
        print(
            "If intentional, regenerate with "
            "`python -m repro.apicheck --write` and review the diff."
        )
        return 1
    print(f"OK: public API surface matches {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
