"""repro.service — a long-lived scheduling service over the solver library.

The subsystem turns the one-shot solvers into an asyncio service:

* :mod:`repro.service.requests` — the wire types (:class:`SolveRequest`,
  :class:`SolveResult`) with JSON (de)serialization and deadline helpers.
* :mod:`repro.service.registry` — one source of truth mapping engine
  names to solver callables with declared capabilities; shared by the
  CLI and the server.
* :mod:`repro.service.cache` — canonical-form result cache (permutation
  invariant, LRU + TTL, hit/miss counters).
* :mod:`repro.service.admission` — bounded queue and load shedding
  driven by a :mod:`repro.simcore.costmodel` work estimate.
* :mod:`repro.service.metrics` — counters / gauges / histograms plus the
  DP configuration-cache statistics.
* :mod:`repro.service.server` — the asyncio JSON-lines front-end with
  micro-batching, executor dispatch, and deadline-triggered degradation
  to LPT.
* :mod:`repro.service.sharding` — canonical-key shard routing for the
  multi-process pool.
* :mod:`repro.service.worker` / :mod:`repro.service.supervisor` — the
  sharded solver pool (``repro-pcmax serve --pool-workers N``): N worker
  processes behind the same front-end, crash-respawned, each owning one
  shard of the key space — see ``docs/scaling.md``.

Durability is layered underneath by :mod:`repro.store` (opt-in via
``repro-pcmax serve --store DIR``): the cache gains a disk tier, every
admitted request is write-ahead journaled, and a crashed server replays
its unanswered work on restart — see ``docs/persistence.md``.

See ``docs/service.md`` for the architecture and protocol reference.
"""

from repro.service.admission import AdmissionController, AdmissionDecision
from repro.service.cache import (
    ResultCache,
    canonical_key,
    canonicalize_result,
    localize_result,
)
from repro.service.metrics import MetricsRegistry, dp_cache_stats
from repro.service.registry import (
    EngineSpec,
    UnknownEngineError,
    UnsupportedProblemError,
    available_engines,
    engine_problem_pairs,
    fallback_result,
    get_engine,
)
from repro.service.requests import (
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOLS,
    DeadlineExceeded,
    SolveRequest,
    SolveResult,
    StreamRequest,
    StreamResult,
)
from repro.service.server import SolveService, serve, stream_events, submit
from repro.service.sharding import (
    shard_index,
    shard_key,
    shard_of_request,
    tenant_shard,
)
from repro.service.supervisor import PooledSolveService, SupervisorPool

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ResultCache",
    "canonical_key",
    "canonicalize_result",
    "localize_result",
    "MetricsRegistry",
    "dp_cache_stats",
    "EngineSpec",
    "UnknownEngineError",
    "UnsupportedProblemError",
    "available_engines",
    "engine_problem_pairs",
    "fallback_result",
    "get_engine",
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOLS",
    "DeadlineExceeded",
    "SolveRequest",
    "SolveResult",
    "StreamRequest",
    "StreamResult",
    "SolveService",
    "serve",
    "stream_events",
    "submit",
    "shard_index",
    "shard_key",
    "shard_of_request",
    "tenant_shard",
    "PooledSolveService",
    "SupervisorPool",
]
