"""Admission control: bounded queue + cost-aware load shedding.

A service in front of an exponential-in-``1/eps`` solver must refuse
work it cannot finish, and refuse it *early* — queueing a doomed request
only adds latency for everyone behind it.  The controller tracks two
quantities and sheds load when either would overflow:

* **queue depth** — requests admitted but not yet finished (queued or
  in-flight), bounded by ``max_queue_depth``;
* **in-flight work** — the sum of each admitted request's estimated cost
  in abstract *operations* (the unit of
  :class:`repro.simcore.costmodel.CostModel`), bounded by
  ``max_inflight_ops``.

Rejections are the 429 pattern: the caller gets ``status="rejected"``
with a ``retry_after`` hint derived from the in-flight backlog and the
calibrated ``seconds_per_op`` (how the cost model converts operations to
wall-clock).  :func:`estimate_ops` is a deliberately coarse admission
proxy — monotone in ``n``, ``m`` and ``k = ceil(1/eps)``, shaped by the
cost model's per-state constants — not a runtime prediction.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

from repro.service.registry import canonical_engine_name, get_engine
from repro.service.requests import SolveRequest
from repro.simcore.costmodel import DEFAULT_COST_MODEL, CostModel

#: Engines whose work is a cheap sort + greedy pass, not a DP.
_CHEAP_ENGINES = frozenset({"lpt", "ls", "multifit"})


def estimate_ops(
    request: SolveRequest, cost_model: CostModel = DEFAULT_COST_MODEL
) -> float:
    """Coarse cost estimate of *request* in cost-model operations.

    The PTAS engines pay ``O(log max_t)`` bisection probes, each a DP
    whose per-state work the cost model prices at
    ``state_cost(config_scans)`` with roughly ``k`` scans per state; the
    state count is proxied by ``(n + 1) * k^2`` (jobs times classes).
    Baselines are priced as a sort plus a greedy pass.  Exact engines get
    the PTAS price times a safety factor — they are the ones a loaded
    service should shed first.
    """
    n = max(1, request.num_jobs)
    m = max(1, request.machines)
    name = canonical_engine_name(request.engine)
    sort_ops = n * max(1.0, math.log2(n)) + n + m
    if name in _CHEAP_ENGINES:
        return sort_ops
    k = max(1, math.ceil(1.0 / request.eps))
    max_t = max(request.times) if request.times else 1
    probes = 1.0 + math.log2(max(2, max_t))
    states = (n + 1) * k * k
    dp_ops = probes * states * cost_model.state_cost(k) + sort_ops
    spec = get_engine(name)
    if spec.exact:
        return 50.0 * dp_ops
    return dp_ops


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of :meth:`AdmissionController.try_admit`.

    ``admitted=True`` carries the ``ops`` charge that must be handed back
    via :meth:`AdmissionController.release`; ``admitted=False`` carries
    the rejection ``reason`` and a ``retry_after`` hint in seconds.
    """

    admitted: bool
    ops: float = 0.0
    reason: str | None = None
    retry_after: float | None = None


class AdmissionController:
    """Thread-safe bounded-queue/bounded-work admission gate."""

    def __init__(
        self,
        max_queue_depth: int = 64,
        max_inflight_ops: float = 5e8,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        seconds_per_op: float = 2e-7,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if max_inflight_ops <= 0:
            raise ValueError("max_inflight_ops must be positive")
        if seconds_per_op <= 0:
            raise ValueError("seconds_per_op must be positive")
        self.max_queue_depth = max_queue_depth
        self.max_inflight_ops = max_inflight_ops
        self.cost_model = cost_model
        self.seconds_per_op = seconds_per_op
        self._lock = threading.Lock()
        self._depth = 0
        self._inflight_ops = 0.0
        self.admitted_total = 0
        self.rejected_total = 0

    @property
    def queue_depth(self) -> int:
        return self._depth

    @property
    def inflight_ops(self) -> float:
        return self._inflight_ops

    def _retry_after(self) -> float:
        """Seconds until roughly half the in-flight backlog has drained."""
        backlog = self._inflight_ops * self.seconds_per_op / 2.0
        return max(0.05, min(30.0, backlog))

    def try_admit(self, request: SolveRequest) -> AdmissionDecision:
        """Admit *request* or shed it; never blocks."""
        ops = estimate_ops(request, self.cost_model)
        with self._lock:
            if self._depth >= self.max_queue_depth:
                self.rejected_total += 1
                return AdmissionDecision(
                    admitted=False,
                    reason=f"queue full ({self._depth}/{self.max_queue_depth})",
                    retry_after=self._retry_after(),
                )
            # A single huge request may exceed the budget on an idle
            # service; admit it then (depth still bounds concurrency) so
            # the limit sheds *additional* work rather than starving.
            if self._depth > 0 and self._inflight_ops + ops > self.max_inflight_ops:
                self.rejected_total += 1
                return AdmissionDecision(
                    admitted=False,
                    reason=(
                        f"in-flight work {self._inflight_ops + ops:.0f} ops "
                        f"would exceed budget {self.max_inflight_ops:.0f}"
                    ),
                    retry_after=self._retry_after(),
                )
            self._depth += 1
            self._inflight_ops += ops
            self.admitted_total += 1
            return AdmissionDecision(admitted=True, ops=ops)

    def release(self, decision: AdmissionDecision) -> None:
        """Return an admitted decision's charge (idempotence is the
        caller's job — call exactly once per admitted request)."""
        if not decision.admitted:
            return
        with self._lock:
            self._depth = max(0, self._depth - 1)
            self._inflight_ops = max(0.0, self._inflight_ops - decision.ops)

    def stats(self) -> dict[str, float | int]:
        """Depth/work levels and admit/reject totals for metrics."""
        with self._lock:
            return {
                "queue_depth": self._depth,
                "inflight_ops": self._inflight_ops,
                "admitted_total": self.admitted_total,
                "rejected_total": self.rejected_total,
                "max_queue_depth": self.max_queue_depth,
                "max_inflight_ops": self.max_inflight_ops,
            }
