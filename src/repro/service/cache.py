"""Canonical-form result cache.

``P || Cmax`` is permutation-invariant: the makespan of an instance
depends only on the *multiset* of processing times.  The cache therefore
keys on the sort-normalized job vector plus ``(m, engine, eps)``, so a
request whose times are any permutation of a previously solved instance
is served instantly.

To return a *valid schedule for the caller's job numbering* (not just a
makespan), entries store the assignment in canonical coordinates —
machine groups of *positions in the sorted job order* — and translate on
the way in and out:

* ``put``: job index ``j`` of the request maps to its position in the
  request's stable sort order;
* ``get``: canonical position ``p`` maps to the *new* request's job at
  the same sorted position (same processing time, since the multisets
  match), so the returned assignment has identical machine loads.

Eviction is LRU bounded by ``max_entries`` plus an optional TTL; hits,
misses, evictions and expirations are counted for
:mod:`repro.service.metrics`.  The cache is lock-protected — the server
touches it from the event loop but batch workers and tests may not.

With a :class:`repro.store.ResultStore` attached the cache becomes
two-tiered: memory hit → disk hit → miss.  ``put`` writes through to the
store (canonical coordinates, so the store's address space is exactly
this cache's key space) and a disk hit is promoted back into the memory
tier.  Both tiers' hit/miss/eviction/expiry counters surface in
:meth:`ResultCache.stats` — the disk tier's under a ``disk_`` prefix.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import replace
from typing import TYPE_CHECKING, Callable

from repro.service.registry import canonical_engine_name
from repro.service.requests import SolveRequest, SolveResult

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.store.resultstore import ResultStore

CacheKey = tuple[tuple[int, ...], int, str, float]


def _sort_order(times: tuple[int, ...]) -> list[int]:
    """Job indices in the stable canonical order (by time, ties by index)."""
    return sorted(range(len(times)), key=lambda j: (times[j], j))


def canonical_key(request: SolveRequest) -> CacheKey:
    """The permutation-invariant identity of a request's *answer*.

    Two requests share a key iff they describe the same multiset of
    times, machine count, engine and ``eps`` — everything that can change
    the returned schedule's loads.  Tuning knobs (workers, backend,
    dp_engine) deliberately do not participate: they change how fast the
    answer is computed, never what a valid answer is.
    """
    return (
        tuple(sorted(request.times)),
        request.machines,
        canonical_engine_name(request.engine),
        round(request.eps, 12),
    )


def _to_canonical(
    times: tuple[int, ...], assignment: tuple[tuple[int, ...], ...]
) -> tuple[tuple[int, ...], ...]:
    """Re-express an assignment over job indices as one over sorted positions."""
    position_of = {j: p for p, j in enumerate(_sort_order(times))}
    return tuple(
        tuple(sorted(position_of[j] for j in grp)) for grp in assignment
    )


def _from_canonical(
    times: tuple[int, ...], canonical: tuple[tuple[int, ...], ...]
) -> tuple[tuple[int, ...], ...]:
    """Instantiate a canonical assignment for a concrete job numbering."""
    order = _sort_order(times)
    return tuple(tuple(order[p] for p in grp) for grp in canonical)


def canonicalize_result(request: SolveRequest, result: SolveResult) -> SolveResult:
    """*result* stripped to its permutation-invariant canonical form.

    The assignment is re-expressed over sorted positions and every
    caller-specific field (request id, elapsed wall time, cached flag)
    is zeroed — the representation both the memory tier and the durable
    :class:`repro.store.ResultStore` persist, and the one whose
    serialized bytes the crash-recovery test compares.
    """
    canonical = (
        _to_canonical(request.times, result.assignment)
        if result.assignment is not None
        else None
    )
    return replace(
        result, request_id="", assignment=canonical, cached=False, elapsed=0.0
    )


def localize_result(request: SolveRequest, stored: SolveResult) -> SolveResult:
    """Translate a canonical *stored* result to *request*'s job numbering
    (inverse of :func:`canonicalize_result`; tagged as a cache hit)."""
    assignment = (
        _from_canonical(request.times, stored.assignment)
        if stored.assignment is not None
        else None
    )
    return replace(
        stored,
        request_id=request.request_id,
        assignment=assignment,
        cached=True,
    )


class ResultCache:
    """LRU + TTL cache of solve results in canonical coordinates.

    Parameters
    ----------
    max_entries:
        LRU bound; 0 disables caching entirely.
    ttl:
        Seconds an entry stays valid, or ``None`` for no expiry.
    clock:
        Injectable monotonic clock (tests freeze it).
    store:
        Optional durable tier (:class:`repro.store.ResultStore`): misses
        fall through to disk, stores write through to disk.
    """

    def __init__(
        self,
        max_entries: int = 1024,
        ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        store: "ResultStore | None" = None,
    ) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None)")
        self.max_entries = max_entries
        self.ttl = ttl
        self.store = store
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[CacheKey, tuple[float, SolveResult]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, request: SolveRequest) -> SolveResult | None:
        """The cached result translated to *request*'s job numbering, or
        ``None``.  A hit is tagged ``cached=True`` and echoes the
        request's own id.  On a memory miss the durable tier (if any) is
        consulted, and a disk hit is promoted back into memory."""
        if self.max_entries == 0 and self.store is None:
            return None
        key = canonical_key(request)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry[0]):
                del self._entries[key]
                self.expirations += 1
                entry = None
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return localize_result(request, entry[1])
            self.misses += 1
        if self.store is None:
            return None
        stored = self.store.get(key)  # counts its own hit/miss
        if stored is None:
            return None
        self._remember(key, stored)
        return localize_result(request, stored)

    def put(self, request: SolveRequest, result: SolveResult) -> bool:
        """Store *result* for *request*'s canonical key.

        Only clean, full-fidelity answers are cached: degraded (deadline
        fallback) and non-``ok`` results are refused, since re-running
        them may produce the real answer.  With a durable tier attached
        the canonical form is also written through to disk (an I/O error
        there degrades to memory-only, it never fails the request).
        Returns whether it was stored in at least one tier.
        """
        if (self.max_entries == 0 and self.store is None) or not result.ok:
            return False
        if result.degraded:
            return False
        stored = canonicalize_result(request, result)
        key = canonical_key(request)
        self._remember(key, stored)
        if self.store is not None:
            try:
                self.store.put(key, stored)
            except OSError:
                pass  # durable tier unavailable; memory tier still serves
        return True

    def _remember(self, key: CacheKey, stored: SolveResult) -> None:
        """Insert a canonical result into the memory tier (LRU evicting)."""
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = (self._clock(), stored)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def _expired(self, stored_at: float) -> bool:
        return self.ttl is not None and self._clock() - stored_at > self.ttl

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction/expiration counters plus the current size.

        With a durable tier attached, its counters ride along under a
        ``disk_`` prefix (``disk_hits``, ``disk_evictions``, …) so
        ``op=stats`` exposes both tiers side by side."""
        with self._lock:
            out = {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "currsize": len(self._entries),
                "maxsize": self.max_entries,
            }
        if self.store is not None:
            for key, value in self.store.stats().items():
                out[f"disk_{key}"] = value
        return out
