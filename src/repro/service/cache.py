"""Canonical-form result cache.

Both problem variants are permutation-invariant: the makespan of an
instance depends only on the *multiset* of processing times (and, on
uniformly related machines, the *multiset* of speeds).  The cache
therefore keys on a problem tag plus the sort-normalized job vector,
the sorted speed vector, and ``(m, engine, eps)``, so a request whose
times (or machines) are any permutation of a previously solved instance
is served instantly — and two different problem variants can never
collide, because the tag namespaces every key, including ``p_cmax``.

To return a *valid schedule for the caller's job numbering* (not just a
makespan), entries store the assignment in canonical coordinates —
machine groups of *positions in the sorted job order* — and translate on
the way in and out:

* ``put``: job index ``j`` of the request maps to its position in the
  request's stable sort order;
* ``get``: canonical position ``p`` maps to the *new* request's job at
  the same sorted position (same processing time, since the multisets
  match), so the returned assignment has identical machine loads.

Eviction is LRU bounded by ``max_entries`` plus an optional TTL; hits,
misses, evictions and expirations are counted for
:mod:`repro.service.metrics`.  The cache is lock-protected — the server
touches it from the event loop but batch workers and tests may not.

With a :class:`repro.store.ResultStore` attached the cache becomes
two-tiered: memory hit → disk hit → miss.  ``put`` writes through to the
store (canonical coordinates, so the store's address space is exactly
this cache's key space) and a disk hit is promoted back into the memory
tier.  Both tiers' hit/miss/eviction/expiry counters surface in
:meth:`ResultCache.stats` — the disk tier's under a ``disk_`` prefix.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import replace
from typing import TYPE_CHECKING, Callable

from repro.model.problem import P_CMAX, Q_CMAX
from repro.service.registry import canonical_engine_name
from repro.service.requests import SolveRequest, SolveResult

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.store.resultstore import ResultStore

#: ``(problem, sorted times, sorted speeds, machines, engine, eps)``.
#: The problem tag namespaces every key (even ``p_cmax``) so variants can
#: never collide; ``speeds`` is the sorted multiset for ``q_cmax`` and
#: always ``()`` for ``p_cmax``.
CacheKey = tuple[str, tuple[int, ...], tuple[int, ...], int, str, float]


def _sort_order(times: tuple[int, ...]) -> list[int]:
    """Job indices in the stable canonical order (by time, ties by index)."""
    return sorted(range(len(times)), key=lambda j: (times[j], j))


def _machine_order(speeds: tuple[int, ...]) -> list[int]:
    """Machine indices in the stable canonical order (by speed, ties by
    index).  Identical machines are interchangeable; uniform ones are
    only interchangeable within a speed class, so canonical machine
    coordinates are positions in this order."""
    return sorted(range(len(speeds)), key=lambda i: (speeds[i], i))


def canonical_problem_key(request: SolveRequest) -> tuple[str, tuple[int, ...]]:
    """The ``(problem, sorted speeds)`` part of the canonical identity.

    A ``q_cmax`` request whose machines all run at speed 1 *is* the
    identical-machine instance — it normalizes to the ``p_cmax``
    namespace (empty speed vector) so the two paths share answers
    byte for byte.  Any other speed vector keeps its own namespace
    (even all-equal speeds ``> 1`` scale completion times, so their
    stored makespans differ from the ``P`` entry's).
    """
    if request.problem == Q_CMAX and set(request.speeds) != {1}:
        return Q_CMAX, tuple(sorted(request.speeds))
    return P_CMAX, ()


def canonical_key(request: SolveRequest) -> CacheKey:
    """The permutation-invariant identity of a request's *answer*.

    Two requests share a key iff they describe the same problem variant,
    multiset of times (and of speeds, for ``q_cmax``), machine count,
    engine and ``eps`` — everything that can change the returned
    schedule's loads.  Tuning knobs (workers, backend, dp_engine)
    deliberately do not participate: they change how fast the answer is
    computed, never what a valid answer is.
    """
    problem, speeds = canonical_problem_key(request)
    return (
        problem,
        tuple(sorted(request.times)),
        speeds,
        request.machines,
        canonical_engine_name(request.engine),
        round(request.eps, 12),
    )


def _to_canonical(
    request: SolveRequest, assignment: tuple[tuple[int, ...], ...]
) -> tuple[tuple[int, ...], ...]:
    """Re-express an assignment over job indices as one over sorted
    positions; for ``q_cmax`` the machine rows are also permuted into
    the canonical (sorted-speed) machine order."""
    times = request.times
    position_of = {j: p for p, j in enumerate(_sort_order(times))}
    groups = tuple(
        tuple(sorted(position_of[j] for j in grp)) for grp in assignment
    )
    problem, speeds = canonical_problem_key(request)
    if problem == Q_CMAX:
        order = _machine_order(request.speeds)
        groups = tuple(groups[i] for i in order)
    return groups


def _from_canonical(
    request: SolveRequest, canonical: tuple[tuple[int, ...], ...]
) -> tuple[tuple[int, ...], ...]:
    """Instantiate a canonical assignment for a concrete job numbering
    (and, for ``q_cmax``, a concrete machine/speed ordering)."""
    order = _sort_order(request.times)
    groups = tuple(tuple(order[p] for p in grp) for grp in canonical)
    problem, speeds = canonical_problem_key(request)
    if problem == Q_CMAX:
        machine_order = _machine_order(request.speeds)
        rows: list[tuple[int, ...]] = [()] * len(machine_order)
        for p, machine in enumerate(machine_order):
            rows[machine] = groups[p]
        groups = tuple(rows)
    return groups


def canonicalize_result(request: SolveRequest, result: SolveResult) -> SolveResult:
    """*result* stripped to its permutation-invariant canonical form.

    The assignment is re-expressed over sorted positions (and canonical
    machine order under speeds) and every caller-specific field (request
    id, elapsed wall time, cached flag) is zeroed — the representation
    both the memory tier and the durable :class:`repro.store.ResultStore`
    persist, and the one whose serialized bytes the crash-recovery test
    compares.  A makespan that lands in the ``p_cmax`` namespace is an
    integer load; unit-speed ``q_cmax`` floats are folded back to int so
    the shared entry is byte-identical either way it was produced.
    """
    canonical = (
        _to_canonical(request, result.assignment)
        if result.assignment is not None
        else None
    )
    makespan = result.makespan
    problem, _ = canonical_problem_key(request)
    if (
        problem == P_CMAX
        and isinstance(makespan, float)
        and makespan.is_integer()
    ):
        makespan = int(makespan)
    return replace(
        result,
        request_id="",
        assignment=canonical,
        makespan=makespan,
        cached=False,
        elapsed=0.0,
    )


def localize_result(request: SolveRequest, stored: SolveResult) -> SolveResult:
    """Translate a canonical *stored* result to *request*'s job numbering
    (inverse of :func:`canonicalize_result`; tagged as a cache hit)."""
    assignment = (
        _from_canonical(request, stored.assignment)
        if stored.assignment is not None
        else None
    )
    return replace(
        stored,
        request_id=request.request_id,
        assignment=assignment,
        cached=True,
    )


class ResultCache:
    """LRU + TTL cache of solve results in canonical coordinates.

    Parameters
    ----------
    max_entries:
        LRU bound; 0 disables caching entirely.
    ttl:
        Seconds an entry stays valid, or ``None`` for no expiry.
    clock:
        Injectable monotonic clock (tests freeze it).
    store:
        Optional durable tier (:class:`repro.store.ResultStore`): misses
        fall through to disk, stores write through to disk.
    """

    def __init__(
        self,
        max_entries: int = 1024,
        ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        store: "ResultStore | None" = None,
    ) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None)")
        self.max_entries = max_entries
        self.ttl = ttl
        self.store = store
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[CacheKey, tuple[float, SolveResult]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, request: SolveRequest) -> SolveResult | None:
        """The cached result translated to *request*'s job numbering, or
        ``None``.  A hit is tagged ``cached=True`` and echoes the
        request's own id.  On a memory miss the durable tier (if any) is
        consulted, and a disk hit is promoted back into memory."""
        if self.max_entries == 0 and self.store is None:
            return None
        key = canonical_key(request)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry[0]):
                del self._entries[key]
                self.expirations += 1
                entry = None
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return localize_result(request, entry[1])
            self.misses += 1
        if self.store is None:
            return None
        stored = self.store.get(key)  # counts its own hit/miss
        if stored is None:
            return None
        self._remember(key, stored)
        return localize_result(request, stored)

    def put(self, request: SolveRequest, result: SolveResult) -> bool:
        """Store *result* for *request*'s canonical key.

        Only clean, full-fidelity answers are cached: degraded (deadline
        fallback) and non-``ok`` results are refused, since re-running
        them may produce the real answer.  With a durable tier attached
        the canonical form is also written through to disk (an I/O error
        there degrades to memory-only, it never fails the request).
        Returns whether it was stored in at least one tier.
        """
        if (self.max_entries == 0 and self.store is None) or not result.ok:
            return False
        if result.degraded:
            return False
        stored = canonicalize_result(request, result)
        key = canonical_key(request)
        self._remember(key, stored)
        if self.store is not None:
            try:
                self.store.put(key, stored)
            except OSError:
                pass  # durable tier unavailable; memory tier still serves
        return True

    def _remember(self, key: CacheKey, stored: SolveResult) -> None:
        """Insert a canonical result into the memory tier (LRU evicting)."""
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = (self._clock(), stored)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def _expired(self, stored_at: float) -> bool:
        return self.ttl is not None and self._clock() - stored_at > self.ttl

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction/expiration counters plus the current size.

        With a durable tier attached, its counters ride along under a
        ``disk_`` prefix (``disk_hits``, ``disk_evictions``, …) so
        ``op=stats`` exposes both tiers side by side."""
        with self._lock:
            out = {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "currsize": len(self._entries),
                "maxsize": self.max_entries,
            }
        if self.store is not None:
            for key, value in self.store.stats().items():
                out[f"disk_{key}"] = value
        return out
