"""Lightweight service metrics: counters, gauges, histograms.

No external dependency — the registry is a dict of named instruments
with a thread-safe ``snapshot()`` (the payload of the service's
``{"op": "stats"}`` query) and a one-line ``render_line()`` for the
periodic log.  Histograms keep exact count/sum/min/max plus a bounded
reservoir of recent observations for approximate percentiles, so memory
stays O(1) per instrument under sustained traffic.

The module also exposes the solver library's own cache telemetry:
:func:`dp_cache_stats` reads ``cache_info()`` from the memoized
machine-configuration enumeration
(:func:`repro.core.configurations._enumerate_cached`) — the hottest
shared cache in the DP path — so the service (and ``bench-dp``) can
report it alongside the request-level counters.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable


class Counter:
    """Monotonically increasing count."""

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (>= 0) to the count."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that can go up and down (queue depth, pool utilization)."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by *delta*."""
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Exact count/sum/min/max + reservoir percentiles of recent values."""

    def __init__(self, reservoir_size: int = 512) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self._lock = threading.Lock()
        self._recent: deque[float] = deque(maxlen=reservoir_size)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        v = float(value)
        with self._lock:
            self.count += 1
            self.total += v
            self.min = v if self.min is None else min(self.min, v)
            self.max = v if self.max is None else max(self.max, v)
            self._recent.append(v)

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def percentile(self, p: float) -> float | None:
        """Approximate percentile (0..100) over the recent reservoir."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            values = sorted(self._recent)
        if not values:
            return None
        rank = min(len(values) - 1, max(0, round(p / 100 * (len(values) - 1))))
        return values[rank]

    def summary(self) -> dict[str, float | int | None]:
        """count/sum/mean/min/max plus reservoir p50/p99."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named instruments, created on first use.

    >>> reg = MetricsRegistry()
    >>> reg.counter("requests_total").inc()
    >>> reg.histogram("latency_seconds").observe(0.25)
    >>> reg.snapshot()["counters"]["requests_total"]
    1
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter named *name*, created on first use."""
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        """The gauge named *name*, created on first use."""
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        """The histogram named *name*, created on first use."""
        with self._lock:
            return self._histograms.setdefault(name, Histogram())

    def set_many(self, prefix: str, values: dict[str, float]) -> None:
        """Mirror a dict of values as ``prefix.key`` gauges (used for the
        DP configuration-cache stats and cache counters)."""
        for key, value in values.items():
            self.gauge(f"{prefix}.{key}").set(value)

    def remove_prefix(self, prefix: str) -> int:
        """Drop every instrument whose name starts with *prefix*.

        Used when the entity the instruments describe goes away (e.g. a
        tenant's live-schedule session closes) so ``op=stats`` stops
        reporting its stale values.  Returns the number removed.
        """
        removed = 0
        with self._lock:
            for table in (self._counters, self._gauges, self._histograms):
                stale = [name for name in table if name.startswith(prefix)]
                for name in stale:
                    del table[name]
                removed += len(stale)
        return removed

    def snapshot(self) -> dict:
        """A JSON-safe dump of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: c.value for k, c in sorted(counters.items())},
            "gauges": {k: g.value for k, g in sorted(gauges.items())},
            "histograms": {k: h.summary() for k, h in sorted(histograms.items())},
        }

    def render_line(self, include: Iterable[str] | None = None) -> str:
        """One ``key=value`` log line (the periodic service heartbeat)."""
        snap = self.snapshot()
        parts: list[str] = []
        for name, value in snap["counters"].items():
            parts.append(f"{name}={value}")
        for name, value in snap["gauges"].items():
            parts.append(f"{name}={value:g}")
        for name, summary in snap["histograms"].items():
            mean = summary["mean"]
            parts.append(
                f"{name}.count={summary['count']}"
                + (f" {name}.mean={mean:.6f}" if mean is not None else "")
            )
        if include is not None:
            wanted = tuple(include)
            parts = [p for p in parts if p.startswith(wanted)]
        return "metrics: " + " ".join(parts) if parts else "metrics: (empty)"


def dp_cache_stats() -> dict[str, int]:
    """Hit/miss/size statistics of the memoized machine-configuration
    enumeration shared by every DP engine (see
    :mod:`repro.core.configurations`)."""
    from repro.core.configurations import _enumerate_cached

    info = _enumerate_cached.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "currsize": info.currsize,
        "maxsize": info.maxsize or 0,
    }


def record_dp_cache(registry: MetricsRegistry) -> dict[str, int]:
    """Publish :func:`dp_cache_stats` into *registry* as gauges under
    ``dp_config_cache.*`` and return the raw stats."""
    stats = dp_cache_stats()
    registry.set_many("dp_config_cache", {k: float(v) for k, v in stats.items()})
    return stats


def record_stats_source(
    registry: MetricsRegistry, prefix: str, source
) -> dict:
    """Publish any object exposing ``stats() -> dict[str, number]`` as
    ``<prefix>.*`` gauges and return the raw stats.

    Used by the service for the durable store (``store.*``) and the
    write-ahead journal (``journal.*``) so their counters appear in
    ``op=stats`` without this module importing :mod:`repro.store`.
    """
    stats = source.stats()
    registry.set_many(prefix, {k: float(v) for k, v in stats.items()})
    return stats


def _merge_histogram_summaries(
    into: dict[str, float | int | None], summary: dict
) -> None:
    """Fold one worker's histogram summary into a pooled one.

    Only count/sum/min/max merge exactly across processes; percentiles
    do not compose from summaries, so pooled p50/p99 stay ``None`` (the
    per-worker entries keep theirs).
    """
    into["count"] = int(into["count"]) + int(summary.get("count") or 0)
    into["sum"] = float(into["sum"]) + float(summary.get("sum") or 0.0)
    for field, pick in (("min", min), ("max", max)):
        value = summary.get(field)
        if value is None:
            continue
        current = into[field]
        into[field] = value if current is None else pick(current, value)


def aggregate_pool_stats(
    own: dict, workers: dict[int, dict | None]
) -> dict:
    """Merge the supervisor's snapshot with per-worker snapshots into
    one ``op=stats`` payload.

    Every worker instrument appears twice: namespaced as
    ``worker.<i>.<name>`` (so a hot shard is visible), and summed into a
    ``pool.<name>`` total (counters and gauges add; histograms merge
    count/sum/min/max, with pooled percentiles ``None`` since reservoirs
    don't compose across processes).  A worker whose snapshot is
    ``None`` (unreachable when polled) contributes a
    ``worker.<i>.unreachable`` gauge instead, and the count of such
    workers lands in the ``pool.workers_unreachable`` gauge.

    ``tenant.<id>.*`` gauges (the live-schedule session instruments of
    :mod:`repro.online`) are the exception to namespacing: a tenant is
    pinned to exactly one worker, so its gauges are lifted to the top
    level verbatim — ``op=stats`` reports ``tenant.acme.ratio``, not
    ``worker.3.tenant.acme.ratio``, whichever worker hosts the session.
    """
    counters: dict[str, int] = dict(own.get("counters", {}))
    gauges: dict[str, float] = dict(own.get("gauges", {}))
    histograms: dict[str, dict] = dict(own.get("histograms", {}))
    pooled_counters: dict[str, int] = {}
    pooled_gauges: dict[str, float] = {}
    pooled_histograms: dict[str, dict] = {}
    unreachable = 0
    for worker_id in sorted(workers):
        snap = workers[worker_id]
        if snap is None:
            unreachable += 1
            gauges[f"worker.{worker_id}.unreachable"] = 1.0
            continue
        for name, value in snap.get("counters", {}).items():
            counters[f"worker.{worker_id}.{name}"] = value
            pooled_counters[name] = pooled_counters.get(name, 0) + int(value)
        for name, value in snap.get("gauges", {}).items():
            if name.startswith("tenant."):
                gauges[name] = float(value)
                continue
            gauges[f"worker.{worker_id}.{name}"] = value
            pooled_gauges[name] = pooled_gauges.get(name, 0.0) + float(value)
        for name, summary in snap.get("histograms", {}).items():
            histograms[f"worker.{worker_id}.{name}"] = summary
            merged = pooled_histograms.setdefault(
                name,
                {
                    "count": 0,
                    "sum": 0.0,
                    "mean": None,
                    "min": None,
                    "max": None,
                    "p50": None,
                    "p99": None,
                },
            )
            _merge_histogram_summaries(merged, summary)
    for name, value in pooled_counters.items():
        counters[f"pool.{name}"] = value
    for name, value in pooled_gauges.items():
        gauges[f"pool.{name}"] = value
    for name, merged in pooled_histograms.items():
        count = int(merged["count"])
        merged["mean"] = float(merged["sum"]) / count if count else None
        histograms[f"pool.{name}"] = merged
    gauges["pool.workers_unreachable"] = float(unreachable)
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }
