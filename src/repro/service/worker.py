"""Solver worker process of the sharded pool.

One worker owns one shard of the canonical key space: it runs the
registry engines for every request the supervisor routes to it, with
its *own* memory result cache (duplicates of its shard hit warm), its
own writer-tagged view of the shared durable store (one writer per
segment file), and its own write-ahead journal (``journal-w<i>.jsonl``
— begin is fsync'd before the solve starts, in this process, so the
crash-consistency guarantee never crosses a process boundary).

Protocol: length-prefixed frames of UTF-8 JSON over the inherited
duplex pipe — ``multiprocessing.Connection.send_bytes`` /
``recv_bytes`` provide the 4-byte length prefix; the payload is always
JSON, never pickle, so a malicious or corrupt peer can at worst produce
a ``ValueError``.

Supervisor → worker frames::

    {"kind": "solve",  "id": str, "request": {...}, "deadline": s|null}
    {"kind": "stream", "id": str, "request": {...}}   # live-schedule event
    {"kind": "cancel", "id": str}          # per-request cancellation
    {"kind": "ping",   "id": str}
    {"kind": "stats",  "id": str}
    {"kind": "shutdown"}

Worker → supervisor frames::

    {"kind": "ready",  "worker": i, "pid": ...}
    {"kind": "result", "id": str, "result": {...}}
    {"kind": "stream_result", "id": str, "result": {...}}
    {"kind": "pong",   "id": str, "pid": ..., "solves": ...}
    {"kind": "stats",  "id": str, "stats": {counters, gauges, histograms}}

Stream events (``op=stream``) ride the same serial solve lane as
solves: the supervisor pins each tenant to one worker
(:func:`repro.service.sharding.tenant_shard`), and the FIFO job queue
then guarantees a tenant's events apply in arrival order.  The worker's
:class:`repro.online.session.SessionManager` shares the worker's result
cache and store, so drift-triggered re-solves hit the same warm state
as routed one-shot requests, and session snapshots persist durably next
to the results.

Threading: a daemon reader thread drains incoming frames so ``cancel``
/ ``ping`` / ``stats`` are handled *while* a solve is running; solves
themselves execute one at a time on the main thread (a shard is a
serial lane — cross-shard parallelism is the pool's job).  Cancellation
rides the same ``check_deadline`` hook the deadline uses: the PTAS
bisection polls it between probes, so a cancelled solve aborts
mid-flight and the worker degrades to LPT.  Engines that never poll
(the exact solvers) cannot be cancelled; the supervisor degrades on its
side and drops the eventual late reply.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import threading
import time
from typing import Any

from repro.core.context import SolveContext
from repro.obs import Tracer, publish_phase_summary, trace_to_payload
from repro.online.session import SessionManager
from repro.service.cache import ResultCache, canonical_key
from repro.service.metrics import (
    MetricsRegistry,
    record_dp_cache,
    record_stats_source,
)
from repro.service.registry import (
    UnknownEngineError,
    canonical_engine_name,
    fallback_result,
    get_engine,
    solve_to_result,
)
from repro.service.requests import (
    STATUS_ERROR,
    DeadlineExceeded,
    SolveRequest,
    SolveResult,
    StreamRequest,
    StreamResult,
)

__all__ = ["send_frame", "recv_frame", "worker_main"]


# ---------------------------------------------------------------------------
# Frame protocol
# ---------------------------------------------------------------------------

def send_frame(conn, payload: dict[str, Any]) -> None:
    """Write one length-prefixed JSON frame to *conn*."""
    conn.send_bytes(json.dumps(payload, separators=(",", ":")).encode("utf-8"))


def recv_frame(conn) -> dict[str, Any]:
    """Read one length-prefixed JSON frame from *conn*.

    Raises :class:`EOFError` when the peer is gone and
    :class:`ValueError` on a non-JSON-object payload.
    """
    data = conn.recv_bytes()
    payload = json.loads(data.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(f"frame must be a JSON object, got {type(payload).__name__}")
    return payload


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------

class _Worker:
    """State and loops of one worker process (see module docstring)."""

    def __init__(self, conn, worker_id: int, config: dict[str, Any]) -> None:
        self.conn = conn
        self.worker_id = worker_id
        self.metrics = MetricsRegistry()
        self._clock = time.monotonic
        self._write_lock = threading.Lock()  # reader + main thread both reply
        self._cancel_lock = threading.Lock()
        self._cancelled: set[str] = set()
        self._jobs: "queue.Queue[dict[str, Any] | None]" = queue.Queue()
        self.archive_traces = bool(config.get("archive_traces", False))

        store_root = config.get("store_root")
        self.store = None
        self.journal = None
        if store_root:
            from repro.store import ResultStore, WriteAheadJournal, worker_journal_name

            self.store = ResultStore(
                store_root,
                ttl=config.get("store_ttl"),
                writer_tag=f"w{worker_id}",
            )
            self.journal = WriteAheadJournal(
                store_root, name=worker_journal_name(worker_id)
            )
        self.cache = ResultCache(
            max_entries=int(config.get("cache_size", 1024)),
            ttl=config.get("cache_ttl"),
            store=self.store,
        )
        self.sessions = SessionManager(
            store=self.store, cache=self.cache, metrics=self.metrics
        )

    # -- plumbing --------------------------------------------------------
    def _reply(self, payload: dict[str, Any]) -> None:
        with self._write_lock:
            send_frame(self.conn, payload)

    def _is_cancelled(self, request_id: str) -> bool:
        with self._cancel_lock:
            return request_id in self._cancelled

    # -- reader thread ---------------------------------------------------
    def _read_loop(self) -> None:
        """Drain incoming frames; control frames are answered inline so
        they never queue behind a long solve."""
        while True:
            try:
                msg = recv_frame(self.conn)
            except (EOFError, OSError):
                # Supervisor is gone: finish nothing, exit cleanly.
                self._jobs.put(None)
                return
            except ValueError:
                continue  # unparseable frame: drop, keep serving
            kind = msg.get("kind")
            if kind in ("solve", "stream"):
                # Both run on the main thread's serial lane — stream
                # events of a pinned tenant stay in arrival order.
                self._jobs.put(msg)
            elif kind == "cancel":
                with self._cancel_lock:
                    self._cancelled.add(str(msg.get("id")))
                self.metrics.counter("cancellations").inc()
            elif kind == "ping":
                self._reply(
                    {
                        "kind": "pong",
                        "id": msg.get("id"),
                        "pid": os.getpid(),
                        "solves": self.metrics.counter("solves_total").value,
                    }
                )
            elif kind == "stats":
                self._reply(
                    {"kind": "stats", "id": msg.get("id"), "stats": self.stats()}
                )
            elif kind == "shutdown":
                self._jobs.put(None)
                return

    # -- stats -----------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """This worker's metrics snapshot (cache, store, journal, DP
        cache, trace phases) — merged pool-wide by the supervisor."""
        self.metrics.set_many(
            "result_cache", {k: float(v) for k, v in self.cache.stats().items()}
        )
        if self.store is not None:
            record_stats_source(self.metrics, "store", self.store)
        if self.journal is not None:
            record_stats_source(self.metrics, "journal", self.journal)
        record_dp_cache(self.metrics)
        self.metrics.gauge("worker_pid").set(float(os.getpid()))
        self.metrics.gauge("stream_sessions").set(float(self.sessions.num_sessions))
        return self.metrics.snapshot()

    # -- solve path ------------------------------------------------------
    def _degrade(self, request: SolveRequest) -> SolveResult:
        self.metrics.counter("degradations_total").inc()
        return fallback_result(request)

    def _check_hook(self, request_id: str, deadline_at: float | None):
        def check() -> None:
            if self._is_cancelled(request_id):
                raise DeadlineExceeded(f"request {request_id} cancelled")
            if deadline_at is not None and self._clock() > deadline_at:
                raise DeadlineExceeded(f"deadline passed at t={deadline_at:.6f}")

        return check

    def _solve(self, msg: dict[str, Any]) -> None:
        rid = str(msg.get("id"))
        if self._is_cancelled(rid):
            # The supervisor already answered the client (deadline or
            # crash-degrade); solving now would be pure waste.
            with self._cancel_lock:
                self._cancelled.discard(rid)
            return
        try:
            request = SolveRequest.from_dict(msg["request"])
            get_engine(request.engine, problem=request.problem)
        except (KeyError, ValueError, TypeError, UnknownEngineError) as exc:
            self.metrics.counter("errors_total").inc()
            self._reply(
                {
                    "kind": "result",
                    "id": rid,
                    "result": SolveResult(
                        request_id=str(msg.get("request", {}).get("request_id", "")),
                        status=STATUS_ERROR,
                        error=str(exc),
                    ).to_dict(),
                }
            )
            return

        t0 = self._clock()
        self.metrics.counter(f"requests.problem.{request.problem}").inc()
        hit = self.cache.get(request)
        if hit is not None:
            self.metrics.counter("cache_hits").inc()
            self._reply({"kind": "result", "id": rid, "result": hit.to_dict()})
            return
        self.metrics.counter("cache_misses").inc()

        deadline = msg.get("deadline")
        deadline_at = None if deadline is None else t0 + float(deadline)
        entry = self.journal.begin(request) if self.journal is not None else None
        tracer = Tracer()
        ctx = SolveContext(
            check_deadline=self._check_hook(rid, deadline_at),
            tracer=tracer,
            metrics=self.metrics,
        )
        try:
            result = solve_to_result(request, ctx, clock=self._clock)
        except DeadlineExceeded:
            result = self._degrade(request)
        except Exception as exc:  # noqa: BLE001 - a bad solve must not kill the shard
            self.metrics.counter("errors_total").inc()
            if entry is not None:
                self.journal.abort(entry)
                entry = None
            result = SolveResult(
                request_id=request.request_id,
                status=STATUS_ERROR,
                engine=canonical_engine_name(request.engine),
                error=f"{type(exc).__name__}: {exc}",
            )
        publish_phase_summary(tracer, self.metrics)
        if result.ok and not result.degraded:
            self.cache.put(request, result)  # write-through to the store
            self._archive_trace(request, tracer)
        if entry is not None:
            self.journal.commit(entry)
        self.metrics.counter("solves_total").inc()
        self.metrics.histogram("solve_seconds").observe(self._clock() - t0)
        with self._cancel_lock:
            self._cancelled.discard(rid)
        self._reply({"kind": "result", "id": rid, "result": result.to_dict()})

    def _stream(self, msg: dict[str, Any]) -> None:
        """Apply one live-schedule event on the serial lane."""
        rid = str(msg.get("id"))
        self.metrics.counter("stream_events_total").inc()
        try:
            request = StreamRequest.from_dict(msg["request"])
        except (KeyError, ValueError, TypeError) as exc:
            self.metrics.counter("errors_total").inc()
            result = StreamResult(status=STATUS_ERROR, error=str(exc))
        else:
            try:
                result = self.sessions.apply(request)
            except Exception as exc:  # noqa: BLE001 — the worker must
                # survive any event (apply itself contains per-event
                # failures; this is the last line of defense).
                result = StreamResult(
                    request_id=request.request_id,
                    tenant=request.tenant,
                    action=request.action,
                    status=STATUS_ERROR,
                    error=f"{type(exc).__name__}: {exc}",
                )
            if not result.ok:
                self.metrics.counter("stream_errors").inc()
        self._reply(
            {"kind": "stream_result", "id": rid, "result": result.to_dict()}
        )

    def _archive_trace(self, request: SolveRequest, tracer: Tracer) -> None:
        if self.store is None or not self.archive_traces:
            return
        name = request.request_id or str(canonical_key(request))
        try:
            self.store.archive_trace(str(name), trace_to_payload(tracer))
            self.metrics.counter("traces_archived").inc()
        except OSError:
            pass  # archival is best-effort

    # -- lifecycle -------------------------------------------------------
    def run(self) -> None:
        reader = threading.Thread(
            target=self._read_loop, name=f"pool-w{self.worker_id}-reader", daemon=True
        )
        reader.start()
        self._reply(
            {"kind": "ready", "worker": self.worker_id, "pid": os.getpid()}
        )
        try:
            while True:
                msg = self._jobs.get()
                if msg is None:
                    break
                if msg.get("kind") == "stream":
                    self._stream(msg)
                else:
                    self._solve(msg)
        finally:
            if self.journal is not None:
                self.journal.close()
            if self.store is not None:
                self.store.close()
            try:
                self.conn.close()
            except OSError:
                pass


def worker_main(conn, worker_id: int, config: dict[str, Any]) -> None:
    """Process entry point (the ``target`` of the supervisor's spawn).

    SIGINT is ignored — a Ctrl-C at the terminal hits the whole process
    group, and shutdown must flow through the supervisor (a ``shutdown``
    frame or pipe EOF) so the journal and store close cleanly.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread / exotic
        pass
    _Worker(conn, worker_id, config).run()
